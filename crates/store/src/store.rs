//! The `ResultStore` proper: request parsing outside the enclave, dictionary
//! access inside it (§IV-B).
//!
//! The dictionary is lock-sharded: the tag's leading byte routes each
//! request to one of [`StoreConfig::shards`] partitions, each owning its
//! own [`MetadataDict`], meta-heap accounting, and eviction budget. Shards
//! serve independent requests in parallel — the three global mutexes the
//! original single-dict store funnelled every connection through are gone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use speed_enclave::{BlobId, Enclave, EnclaveError, Platform, UntrustedMemory};
use speed_telemetry::{names, Counter, Gauge, Histogram};
use speed_wire::{
    AppId, BatchItem, BatchItemResult, BatchStatus, CompTag, FilterBody, GetResponseBody,
    Message, MetricsFormat, NegativeFilter, PutResponseBody, Record, RingBody,
    ShardStatsBody, StatsBody, SyncEntry,
};

use crate::backend::{MemoryBackend, RecoveryReport, StoreBackend};
use crate::dict::MetadataDict;
use crate::quota::{QuotaDecision, QuotaPolicy, ShardedQuota};
use crate::StoreError;

/// Code identity of the store enclave (what remote parties attest against).
pub const STORE_ENCLAVE_CODE: &[u8] = b"speed-result-store-enclave-v1";

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// A poisoned store mutex only means some request died mid-flight; every
/// critical section below leaves the dictionary/quota/heap in a consistent
/// state before it can panic, so later requests must keep being served
/// instead of propagating the panic to every future caller.
fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Who may use the store — the "controlled deduplication" extension the
/// paper sketches in §III-D ("to ensure that only authorized applications
/// can access ResultStore, it requires an additional authorization
/// mechanism").
#[derive(Clone, Debug, Default)]
pub enum AccessControl {
    /// Any application may GET and PUT (the paper's prototype default).
    #[default]
    Open,
    /// Only the listed application ids may GET or PUT; everyone else gets
    /// a protocol error.
    Allowlist(std::collections::HashSet<u64>),
}

impl AccessControl {
    fn permits(&self, app: AppId) -> bool {
        match self {
            AccessControl::Open => true,
            AccessControl::Allowlist(allowed) => allowed.contains(&app.0),
        }
    }
}

/// Configuration for a [`ResultStore`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Maximum number of dictionary entries before LRU eviction. Split
    /// evenly across shards (each shard evicts against its own slice).
    pub max_entries: usize,
    /// Maximum total ciphertext bytes before LRU eviction, split evenly
    /// across shards like `max_entries`.
    pub max_stored_bytes: u64,
    /// Per-application quota policy.
    pub quota: QuotaPolicy,
    /// Which applications may use the store.
    pub access: AccessControl,
    /// Entry time-to-live in logical milliseconds (each request advances
    /// the logical clock by 1 ms); `None` disables expiry.
    pub ttl_ms: Option<u64>,
    /// Number of lock partitions of the metadata dictionary (at least 1).
    /// Requests route by the tag's leading byte; more shards mean more
    /// concurrent dictionary traffic at the cost of coarser per-shard
    /// eviction budgets.
    pub shards: usize,
}

/// Default shard count: enough partitions that 8–16 concurrent clients
/// rarely collide, while keeping per-shard budget slices coarse.
pub const DEFAULT_SHARDS: usize = 8;

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_entries: 1_000_000,
            max_stored_bytes: 8 * 1024 * 1024 * 1024,
            quota: QuotaPolicy::default(),
            access: AccessControl::Open,
            ttl_ms: None,
            shards: DEFAULT_SHARDS,
        }
    }
}

impl StoreConfig {
    /// A small-capacity config for eviction tests. Uses a single shard so
    /// `max_entries`/`max_stored_bytes` behave as exact global budgets with
    /// store-wide LRU order.
    pub fn with_capacity(max_entries: usize, max_stored_bytes: u64) -> Self {
        StoreConfig {
            max_entries,
            max_stored_bytes,
            quota: QuotaPolicy::unlimited(),
            access: AccessControl::Open,
            ttl_ms: None,
            shards: 1,
        }
    }

    /// The same config with a different shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

#[derive(Debug, Default)]
struct Counters {
    gets: AtomicU64,
    hits: AtomicU64,
    puts: AtomicU64,
    rejected_puts: AtomicU64,
}

/// Process-wide telemetry handles for one [`ResultStore`]. Event counters
/// are incremented live alongside the per-store [`Counters`] (which stay
/// authoritative for [`ResultStore::stats`]); derived values — entry
/// counts, byte totals, per-shard counters — are pushed into the registry
/// by [`ResultStore::sync_telemetry`] just before a snapshot is rendered.
#[derive(Debug)]
struct StoreTelemetry {
    gets: Counter,
    hits: Counter,
    puts: Counter,
    rejected_puts: Counter,
    evictions: Counter,
    entries: Gauge,
    stored_bytes: Gauge,
    request_duration: Histogram,
    filter_requests: Counter,
    filter_inserts: Counter,
    filter_incomplete: Counter,
    filter_rebuilds: Counter,
    filter_batch_skips: Counter,
    shards: Vec<ShardTelemetry>,
}

/// Per-shard registry series, labelled `shard="<index>"`.
#[derive(Debug)]
struct ShardTelemetry {
    entries: Gauge,
    stored_bytes: Gauge,
    evictions: Counter,
    lock_contention: Counter,
    busy_ns: Counter,
}

impl StoreTelemetry {
    fn from_global(shard_count: usize) -> Self {
        let registry = speed_telemetry::global();
        let shards = (0..shard_count)
            .map(|index| {
                let label = index.to_string();
                let labels: &[(&str, &str)] = &[("shard", label.as_str())];
                ShardTelemetry {
                    entries: registry.gauge_with(
                        names::STORE_SHARD_ENTRIES,
                        "Dictionary entries held by this shard",
                        labels,
                    ),
                    stored_bytes: registry.gauge_with(
                        names::STORE_SHARD_STORED_BYTES,
                        "Ciphertext bytes referenced by this shard's entries",
                        labels,
                    ),
                    evictions: registry.counter_with(
                        names::STORE_SHARD_EVICTIONS_TOTAL,
                        "LRU evictions performed by this shard",
                        labels,
                    ),
                    lock_contention: registry.counter_with(
                        names::STORE_SHARD_LOCK_CONTENTION_TOTAL,
                        "Dictionary lock acquisitions that had to block on this shard",
                        labels,
                    ),
                    busy_ns: registry.counter_with(
                        names::STORE_SHARD_BUSY_NS_TOTAL,
                        "Nanoseconds this shard's dictionary lock was held",
                        labels,
                    ),
                }
            })
            .collect();
        StoreTelemetry {
            gets: registry
                .counter(names::STORE_GETS_TOTAL, "GET requests served by the store"),
            hits: registry
                .counter(names::STORE_HITS_TOTAL, "GET requests that found a live entry"),
            puts: registry
                .counter(names::STORE_PUTS_TOTAL, "PUT requests served by the store"),
            rejected_puts: registry.counter(
                names::STORE_REJECTED_PUTS_TOTAL,
                "PUT requests rejected by quota or enclave memory pressure",
            ),
            evictions: registry.counter(
                names::STORE_EVICTIONS_TOTAL,
                "Entries evicted under the LRU capacity policy, all shards",
            ),
            entries: registry.gauge(
                names::STORE_ENTRIES,
                "Dictionary entries currently held, all shards",
            ),
            stored_bytes: registry.gauge(
                names::STORE_STORED_BYTES,
                "Ciphertext bytes currently referenced, all shards",
            ),
            request_duration: registry.histogram(
                names::STORE_REQUEST_DURATION_NS,
                "Wall-clock service time of one store protocol message",
            ),
            filter_requests: registry.counter(
                names::STORE_FILTER_REQUESTS_TOTAL,
                "FILTER_REQUEST messages served (negative-filter snapshots shipped)",
            ),
            filter_inserts: registry.counter(
                names::STORE_FILTER_INSERTS_TOTAL,
                "Prefilter tags inserted into per-shard negative filters",
            ),
            filter_incomplete: registry.counter(
                names::STORE_FILTER_INCOMPLETE_TOTAL,
                "Insertions without a prefilter tag that degraded a shard filter \
                 to incomplete",
            ),
            filter_rebuilds: registry.counter(
                names::STORE_FILTER_REBUILDS_TOTAL,
                "Negative-filter rebuilds from the dictionary index",
            ),
            filter_batch_skips: registry.counter(
                names::STORE_FILTER_BATCH_SKIPS_TOTAL,
                "Prefiltered batch GETs answered not-found straight from the \
                 shard's negative filter",
            ),
            shards,
        }
    }
}

/// Page-pooled EPC accounting for dictionary metadata: entries are tens of
/// bytes, so the enclave heap commits pages as byte usage crosses page
/// boundaries instead of a page per entry. Each shard accounts its own
/// slice of the enclave heap.
#[derive(Debug, Default)]
struct MetaHeap {
    bytes: usize,
    committed: usize,
}

impl MetaHeap {
    fn reserve(&mut self, enclave: &Enclave, bytes: usize) -> Result<(), EnclaveError> {
        let new_bytes = self.bytes + bytes;
        let needed =
            new_bytes.div_ceil(speed_enclave::PAGE_SIZE) * speed_enclave::PAGE_SIZE;
        if needed > self.committed {
            enclave.commit_memory(needed - self.committed)?;
            self.committed = needed;
        }
        self.bytes = new_bytes;
        Ok(())
    }

    fn release(&mut self, enclave: &Enclave, bytes: usize) {
        self.bytes = self.bytes.saturating_sub(bytes);
        let needed =
            self.bytes.div_ceil(speed_enclave::PAGE_SIZE) * speed_enclave::PAGE_SIZE;
        if needed < self.committed {
            let _ = enclave.release_memory(self.committed - needed);
            self.committed = needed;
        }
    }
}

/// A dictionary guard that attributes its hold time to the shard's
/// `busy_ns` counter on drop — the shard's serial service time, reported
/// in [`ShardStatsBody`] and consumed by the `shard_bench` concurrency
/// model.
struct Timed<'a, G> {
    inner: G,
    start: Instant,
    busy: &'a AtomicU64,
}

impl<G> std::ops::Deref for Timed<'_, G>
where
    G: std::ops::Deref,
{
    type Target = G::Target;

    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

impl<G> std::ops::DerefMut for Timed<'_, G>
where
    G: std::ops::DerefMut,
{
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.inner
    }
}

impl<G> Drop for Timed<'_, G> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        self.busy.fetch_add(elapsed, Ordering::Relaxed);
    }
}

/// One lock partition: its own dictionary, meta-heap slice, negative
/// filter, and counters.
#[derive(Debug)]
struct Shard {
    dict: RwLock<MetadataDict>,
    meta_heap: Mutex<MetaHeap>,
    /// Negative-lookup filter over the prefilter tags of this shard's live
    /// entries. Bits are only set, never cleared, while entries live
    /// (eviction/expiry leave stale bits — false positives only); any insert
    /// without a known prefilter marks it incomplete.
    filter: Mutex<NegativeFilter>,
    evictions: AtomicU64,
    contention: AtomicU64,
    busy_ns: AtomicU64,
}

impl Shard {
    fn new(filter_capacity: usize) -> Self {
        Shard {
            dict: RwLock::new(MetadataDict::new()),
            meta_heap: Mutex::new(MetaHeap::default()),
            filter: Mutex::new(NegativeFilter::with_capacity(filter_capacity as u64)),
            evictions: AtomicU64::new(0),
            contention: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        }
    }

    /// Shared (read) dictionary access with contention + busy accounting.
    fn dict_read(&self) -> Timed<'_, RwLockReadGuard<'_, MetadataDict>> {
        let guard = match self.dict.try_read() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                self.dict.read().unwrap_or_else(std::sync::PoisonError::into_inner)
            }
        };
        Timed { inner: guard, start: Instant::now(), busy: &self.busy_ns }
    }

    /// Exclusive (write) dictionary access with contention + busy
    /// accounting.
    fn dict_write(&self) -> Timed<'_, RwLockWriteGuard<'_, MetadataDict>> {
        let guard = match self.dict.try_write() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                self.dict.write().unwrap_or_else(std::sync::PoisonError::into_inner)
            }
        };
        Timed { inner: guard, start: Instant::now(), busy: &self.busy_ns }
    }

    /// Dictionary access for monitoring paths that must not skew the
    /// contention/busy counters they report.
    fn dict_observe(&self) -> RwLockReadGuard<'_, MetadataDict> {
        self.dict.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Host-side plan for one batch item, built before the batch ECALL: quota
/// decisions and bulk ciphertext placement happen outside the enclave, so
/// the single ECALL only touches dictionary metadata.
enum BatchPlan {
    Get {
        tag: CompTag,
        now_ms: u64,
    },
    Put {
        tag: CompTag,
        challenge: Vec<u8>,
        wrapped_key: [u8; 16],
        nonce: [u8; 12],
        blob: BlobId,
        boxed_len: u64,
        now_ms: u64,
        /// Client-supplied prefilter tag (`None` for legacy PUT items, which
        /// degrade the shard's negative filter to incomplete on insert).
        prefilter: Option<u64>,
    },
    /// Denied host-side (quota); never enters the enclave.
    Denied {
        reason: String,
    },
    /// A prefiltered GET the shard's negative filter proved absent,
    /// answered host-side without any dictionary-lock work in the ECALL.
    FilteredMiss,
}

impl BatchPlan {
    fn tag(&self) -> Option<&CompTag> {
        match self {
            BatchPlan::Get { tag, .. } | BatchPlan::Put { tag, .. } => Some(tag),
            BatchPlan::Denied { .. } | BatchPlan::FilteredMiss => None,
        }
    }
}

/// Per-item outcome of the batch ECALL, resolved to a wire result (and any
/// required blob/quota cleanup) back on the host side.
enum BatchOutcome {
    GetHit { challenge: Vec<u8>, wrapped_key: [u8; 16], nonce: [u8; 12], blob: BlobId },
    GetMiss,
    GetExpired(crate::DictEntry),
    PutInserted,
    PutDuplicate { orphan: BlobId },
    PutFailed(String),
    Denied(String),
}

/// The encrypted result store.
///
/// Thread-safe: the TCP front end serves concurrent connections against one
/// shared instance, and requests to different shards proceed in parallel.
#[derive(Debug)]
pub struct ResultStore {
    enclave: Arc<Enclave>,
    untrusted: Arc<UntrustedMemory>,
    shards: Box<[Shard]>,
    /// Per-shard entry budget (`config.max_entries` split across shards).
    shard_max_entries: usize,
    /// Per-shard byte budget (`config.max_stored_bytes` split likewise).
    shard_max_bytes: u64,
    quota: ShardedQuota,
    config: StoreConfig,
    counters: Counters,
    telemetry: StoreTelemetry,
    logical_ms: AtomicU64,
    /// Bumped on every negative-filter mutation; shipped in
    /// [`FilterBody::epoch`] so clients can tell how stale their copy is.
    filter_epoch: AtomicU64,
    /// Durability backend under the dictionary ([`MemoryBackend`] unless
    /// the store was built with [`ResultStore::open`]).
    backend: Arc<dyn StoreBackend>,
    /// Cleared while recovered entries are re-imported on open so the
    /// replay itself is not logged back into the WAL.
    backend_logging: AtomicBool,
    /// The cluster membership view this node advertises to `RING_REQUEST`
    /// clients. Empty (version 0) on standalone nodes; set at startup by
    /// `speedctl serve --node-id/--peers` or [`ResultStore::set_topology`].
    topology: RwLock<RingBody>,
}

impl ResultStore {
    /// Creates a store whose enclave runs on `platform`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Enclave`] if the platform cannot host the
    /// store enclave.
    pub fn new(platform: &Platform, config: StoreConfig) -> Result<Self, StoreError> {
        let enclave = platform.create_enclave(STORE_ENCLAVE_CODE)?;
        let shard_count = config.shards.max(1);
        let shard_max_entries = config.max_entries.div_ceil(shard_count).max(1);
        let shards: Box<[Shard]> =
            (0..shard_count).map(|_| Shard::new(shard_max_entries)).collect();
        Ok(ResultStore {
            enclave,
            untrusted: Arc::clone(platform.untrusted()),
            shard_max_entries,
            shard_max_bytes: config.max_stored_bytes.div_ceil(shard_count as u64).max(1),
            quota: ShardedQuota::new(config.quota, shard_count),
            shards,
            config,
            counters: Counters::default(),
            telemetry: StoreTelemetry::from_global(shard_count),
            logical_ms: AtomicU64::new(0),
            filter_epoch: AtomicU64::new(0),
            backend: Arc::new(MemoryBackend),
            backend_logging: AtomicBool::new(true),
            topology: RwLock::new(RingBody::default()),
        })
    }

    /// Creates a store on a durability `backend`, recovering whatever the
    /// backend persisted before (checkpoint + WAL replay for
    /// [`crate::LogBackend`]; nothing for [`MemoryBackend`]). Returns the
    /// store plus a [`RecoveryReport`] describing the recovery pass.
    ///
    /// # Errors
    ///
    /// - [`StoreError::Enclave`] if the platform cannot host the enclave.
    /// - Any error [`StoreBackend::open`] can return (backend directory
    ///   unusable). Unreadable prior *state* degrades to a fresh start and
    ///   is reported, never an error.
    pub fn open(
        platform: &Arc<Platform>,
        config: StoreConfig,
        backend: Arc<dyn StoreBackend>,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let mut store = Self::new(platform.as_ref(), config)?;
        store.backend = Arc::clone(&backend);
        let recovery = backend.open(platform, &store.enclave)?;
        // Importing the recovered entries replays them through the normal
        // PUT path; suppress backend logging so recovery is not re-logged.
        store.backend_logging.store(false, Ordering::Relaxed);
        store.import_entries(recovery.entries);
        store.backend_logging.store(true, Ordering::Relaxed);
        // Recovered entries carry no prefilter tags, so the import left the
        // filters incomplete; rebuild them from the index so empty shards
        // regain their (vacuously complete) absence proofs.
        store.rebuild_filters();
        Ok((store, recovery.report))
    }

    /// The durability backend the store runs on.
    pub fn backend(&self) -> &Arc<dyn StoreBackend> {
        &self.backend
    }

    /// Whether mutations must be mirrored into the backend right now.
    fn durable(&self) -> bool {
        self.backend.is_durable() && self.backend_logging.load(Ordering::Relaxed)
    }

    /// Writes a checkpoint of the current store state through the backend,
    /// bounding future WAL replay. No-op on non-durable backends.
    ///
    /// # Errors
    ///
    /// Any error [`StoreBackend::checkpoint`] can return; the WAL is
    /// untouched on failure and the store keeps running.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        if !self.backend.is_durable() {
            return Ok(());
        }
        let sections = self.export_shards();
        self.backend.checkpoint(&sections)
    }

    /// Runs at most one due maintenance step: a checkpoint when enough
    /// records accumulated since the last one, else one compaction pass
    /// when a sealed segment is mostly dead. Failures are swallowed — both
    /// operations are retried on a later request and neither affects data
    /// already acknowledged.
    fn maintain(&self) {
        if !self.durable() {
            return;
        }
        if self.backend.wants_checkpoint() {
            let _ = self.checkpoint();
        } else if self.backend.wants_compaction() {
            let _ = self.backend.compact();
        }
    }

    /// The store's enclave (for attestation by clients).
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// Number of dictionary lock partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Installs the cluster membership view this node advertises to
    /// `RING_REQUEST` clients (see `docs/CLUSTER.md`). A view whose
    /// version is not newer than the current one is ignored, so stale
    /// gossip cannot roll the topology back.
    pub fn set_topology(&self, body: RingBody) -> bool {
        let mut topology = self.topology.write().expect("topology lock poisoned");
        if !topology.nodes.is_empty() && body.version <= topology.version {
            return false;
        }
        *topology = body;
        true
    }

    /// The cluster membership view this node currently advertises
    /// (default/empty with version 0 on standalone nodes).
    pub fn topology(&self) -> RingBody {
        self.topology.read().expect("topology lock poisoned").clone()
    }

    /// The shard `tag` routes to: its leading byte modulo the shard count.
    /// Tags are SHA-256 outputs, so the prefix is uniform across shards.
    pub fn shard_for_tag(&self, tag: &CompTag) -> usize {
        usize::from(tag.as_bytes()[0]) % self.shards.len()
    }

    fn shard(&self, tag: &CompTag) -> &Shard {
        &self.shards[self.shard_for_tag(tag)]
    }

    /// Handles one protocol message, returning the response message.
    ///
    /// Mirrors the paper's flow: preliminary parsing happens outside the
    /// enclave (the caller decoded the message), then the request is
    /// delegated to a `GET` or `PUT` ECALL that marshals data across the
    /// boundary and touches the in-enclave dictionary shard the tag routes
    /// to.
    pub fn handle(&self, message: Message) -> Message {
        let _request_span = self.telemetry.request_duration.start_span();
        match message {
            Message::GetRequest { app, tag } => {
                if !self.config.access.permits(app) {
                    return Message::Error(format!("app {} not authorized", app.0));
                }
                Message::GetResponse(self.handle_get(app, tag))
            }
            Message::PutRequest { app, tag, record } => {
                if !self.config.access.permits(app) {
                    return Message::Error(format!("app {} not authorized", app.0));
                }
                let response =
                    Message::PutResponse(self.handle_put(app, tag, record, None));
                self.maintain();
                response
            }
            Message::PutPrefiltered { app, tag, prefilter, record } => {
                if !self.config.access.permits(app) {
                    return Message::Error(format!("app {} not authorized", app.0));
                }
                let response = Message::PutResponse(self.handle_put(
                    app,
                    tag,
                    record,
                    Some(prefilter),
                ));
                self.maintain();
                response
            }
            Message::FilterRequest => {
                self.telemetry.filter_requests.inc();
                Message::FilterResponse(self.filter_snapshot())
            }
            Message::BatchRequest { app, items } => {
                if !self.config.access.permits(app) {
                    return Message::Error(format!("app {} not authorized", app.0));
                }
                let response = Message::BatchResponse(self.handle_batch(app, items));
                self.maintain();
                response
            }
            Message::StatsRequest => Message::StatsResponse(self.stats()),
            Message::MetricsRequest { format } => {
                self.sync_telemetry();
                let snapshot = speed_telemetry::global().snapshot();
                Message::MetricsResponse(match format {
                    MetricsFormat::Prometheus => snapshot.render_prometheus(),
                    MetricsFormat::Jsonl => snapshot.render_jsonl(),
                })
            }
            Message::RingRequest => Message::RingResponse(self.topology()),
            Message::SyncPull { min_hits } => {
                Message::SyncBatch(self.export_popular(min_hits))
            }
            Message::SyncBatch(entries) => {
                let mut accepted = 0u64;
                for entry in entries {
                    if self
                        .handle_put(AppId(u64::MAX), entry.tag, entry.record, None)
                        .accepted
                    {
                        accepted += 1;
                    }
                }
                self.maintain();
                Message::PutResponse(PutResponseBody {
                    accepted: true,
                    reason: Some(format!("merged {accepted} entries")),
                })
            }
            other => Message::Error(format!("unexpected message: {other:?}")),
        }
    }

    fn handle_get(&self, _app: AppId, tag: CompTag) -> GetResponseBody {
        self.counters.gets.fetch_add(1, Ordering::Relaxed);
        self.telemetry.gets.inc();
        let now_ms = self.tick();
        let shard = self.shard(&tag);
        // GET ECALL: tag goes in (32 B), metadata comes out.
        let (meta, expired) = self.enclave.ecall_with_bytes("store_get", 32, 128, || {
            if let Some(ttl) = self.config.ttl_ms {
                // Expiry may remove the entry, so TTL-enabled lookups take
                // the shard's write lock.
                let mut dict = shard.dict_write();
                let is_expired = dict
                    .peek(&tag)
                    .is_some_and(|entry| now_ms.saturating_sub(entry.created_ms) >= ttl);
                if is_expired {
                    return (None, dict.remove(&tag));
                }
                (dict.get(&tag).map(Self::entry_meta), None)
            } else {
                // Pure lookup: hit counting is interior-mutable, so shard
                // readers share the lock.
                let dict = shard.dict_read();
                (dict.get(&tag).map(Self::entry_meta), None)
            }
        });
        if let Some(entry) = expired {
            self.untrusted.remove(entry.blob);
            self.quota.release(entry.owner, u64::from(entry.boxed_len));
            self.release_entry_memory(shard, &entry);
            if self.durable() {
                // Best-effort: a lost expiry record only resurrects an
                // already-expired entry on restart, where TTL re-expires it.
                let _ =
                    self.backend.record_delete(&tag).and_then(|()| self.backend.flush());
            }
        }
        match meta {
            Some((challenge, wrapped_key, nonce, blob, boxed_len)) => {
                // The ciphertext itself is read from untrusted memory by the
                // host side — no boundary crossing for the bulk bytes.
                match self.untrusted.load(blob) {
                    Some(boxed_result) => {
                        self.counters.hits.fetch_add(1, Ordering::Relaxed);
                        self.telemetry.hits.inc();
                        GetResponseBody {
                            found: true,
                            record: Some(Record {
                                challenge,
                                wrapped_key,
                                nonce,
                                boxed_result,
                            }),
                        }
                    }
                    None => {
                        // Blob vanished (hostile deletion outside the
                        // enclave). Drop the dangling metadata and miss.
                        let _ = boxed_len;
                        self.enclave.ecall("store_drop_dangling", || {
                            let mut dict = shard.dict_write();
                            if let Some(entry) = dict.remove(&tag) {
                                drop(dict);
                                self.release_entry_memory(shard, &entry);
                            }
                        });
                        if self.durable() {
                            let _ = self
                                .backend
                                .record_delete(&tag)
                                .and_then(|()| self.backend.flush());
                        }
                        GetResponseBody { found: false, record: None }
                    }
                }
            }
            None => GetResponseBody { found: false, record: None },
        }
    }

    #[allow(clippy::type_complexity)] // the GET ECALL's marshalled tuple
    fn entry_meta(
        entry: &crate::DictEntry,
    ) -> (Vec<u8>, [u8; 16], [u8; 12], BlobId, u32) {
        (
            entry.challenge.clone(),
            entry.wrapped_key,
            entry.nonce,
            entry.blob,
            entry.boxed_len,
        )
    }

    fn handle_put(
        &self,
        app: AppId,
        tag: CompTag,
        record: Record,
        prefilter: Option<u64>,
    ) -> PutResponseBody {
        self.counters.puts.fetch_add(1, Ordering::Relaxed);
        self.telemetry.puts.inc();
        let now_ms = self.tick();
        let boxed_len = record.boxed_result.len() as u64;

        // Degraded durability rejects writes up front: the store must not
        // acknowledge a PUT it cannot make crash-safe. GETs are unaffected.
        if let Some(reason) = self.backend.read_only() {
            self.counters.rejected_puts.fetch_add(1, Ordering::Relaxed);
            self.telemetry.rejected_puts.inc();
            return PutResponseBody {
                accepted: false,
                reason: Some(format!("store is read-only: {reason}")),
            };
        }

        let decision = self.quota.check_put(app, boxed_len, now_ms);
        if let QuotaDecision::Deny(reason) = decision {
            self.counters.rejected_puts.fetch_add(1, Ordering::Relaxed);
            self.telemetry.rejected_puts.inc();
            return PutResponseBody { accepted: false, reason: Some(reason) };
        }

        // Bulk ciphertext goes straight to untrusted memory.
        let blob = self.untrusted.store(record.boxed_result);
        let shard = self.shard(&tag);

        // PUT ECALL: metadata (challenge, [k], nonce, pointer) crosses the
        // boundary into the tag's dictionary shard.
        let meta_len = record.challenge.len() + 16 + 12 + 8;
        let result: Result<Option<speed_enclave::BlobId>, EnclaveError> =
            self.enclave.ecall_with_bytes("store_put", meta_len, 1, || {
                let mut dict = shard.dict_write();
                let entry_footprint = 32 + record.challenge.len() + 120;
                lock_recover(&shard.meta_heap).reserve(&self.enclave, entry_footprint)?;
                let rejected = dict.insert(
                    tag,
                    record.challenge.clone(),
                    record.wrapped_key,
                    record.nonce,
                    blob,
                    boxed_len as u32,
                    app,
                    now_ms,
                    prefilter,
                );
                if rejected.is_some() {
                    // Entry already existed; give back the memory we took.
                    lock_recover(&shard.meta_heap)
                        .release(&self.enclave, entry_footprint);
                }
                Ok(rejected)
            });

        match result {
            Ok(None) => {
                if self.durable() {
                    // WAL-then-ack: the record must be durable before the
                    // client hears "accepted". The ciphertext is read back
                    // from untrusted memory (it was stored a moment ago)
                    // rather than cloned up front.
                    let logged = match self.untrusted.load(blob) {
                        Some(boxed_result) => {
                            let entry = SyncEntry {
                                tag,
                                record: Record {
                                    challenge: record.challenge.clone(),
                                    wrapped_key: record.wrapped_key,
                                    nonce: record.nonce,
                                    boxed_result,
                                },
                                hits: 0,
                            };
                            self.backend
                                .record_put(&entry)
                                .and_then(|()| self.backend.flush())
                        }
                        None => Ok(()), // blob raced away; nothing to record
                    };
                    if let Err(e) = logged {
                        // Roll the insert back: an acknowledged PUT must
                        // survive a crash, so an un-durable one is rejected.
                        self.enclave.ecall("store_put_rollback", || {
                            let removed = shard.dict_write().remove(&tag);
                            if let Some(entry) = removed {
                                self.release_entry_memory(shard, &entry);
                            }
                        });
                        self.untrusted.remove(blob);
                        self.quota.release(app, boxed_len);
                        self.counters.rejected_puts.fetch_add(1, Ordering::Relaxed);
                        self.telemetry.rejected_puts.inc();
                        return PutResponseBody {
                            accepted: false,
                            reason: Some(e.to_string()),
                        };
                    }
                }
                self.note_filter_insert(shard, prefilter);
                self.enforce_capacity(shard);
                PutResponseBody { accepted: true, reason: None }
            }
            Ok(Some(orphan_blob)) => {
                // Duplicate tag: first writer won; free the new blob and
                // refund quota.
                self.untrusted.remove(orphan_blob);
                self.quota.release(app, boxed_len);
                if self.durable() {
                    // A deduplicated PUT is one more reference to the
                    // surviving entry; the count must be durable too.
                    if let Err(e) =
                        self.backend.record_ref(&tag).and_then(|()| self.backend.flush())
                    {
                        self.counters.rejected_puts.fetch_add(1, Ordering::Relaxed);
                        self.telemetry.rejected_puts.inc();
                        return PutResponseBody {
                            accepted: false,
                            reason: Some(e.to_string()),
                        };
                    }
                }
                PutResponseBody {
                    accepted: true,
                    reason: Some("duplicate: existing entry kept".into()),
                }
            }
            Err(e) => {
                self.untrusted.remove(blob);
                self.quota.release(app, boxed_len);
                self.counters.rejected_puts.fetch_add(1, Ordering::Relaxed);
                self.telemetry.rejected_puts.inc();
                PutResponseBody { accepted: false, reason: Some(e.to_string()) }
            }
        }
    }

    /// Handles a batched request: every dictionary operation in the batch
    /// runs inside a single `store_batch` ECALL, so a batch of N items
    /// costs one enclave transition on the store side instead of N.
    ///
    /// Items are grouped by target shard inside the ECALL, each shard
    /// locked once and settled in request order (a tag always routes to one
    /// shard, so a PUT followed by a GET of the same tag still hits within
    /// the batch). Results are returned in request order. A quota denial or
    /// enclave memory failure rejects only the affected item, never the
    /// batch.
    pub fn handle_batch(
        &self,
        app: AppId,
        items: Vec<BatchItem>,
    ) -> Vec<BatchItemResult> {
        if items.is_empty() {
            return Vec::new();
        }

        // Phase A (host): quota checks and bulk ciphertext straight to
        // untrusted memory; only metadata will cross the boundary.
        let mut plans = Vec::with_capacity(items.len());
        let mut args_len = 0usize;
        let mut ret_len = 0usize;
        // Tags written by earlier items of THIS batch: the filter probe
        // below reads state from before the batch mutates, so a
        // prefiltered GET behind an intra-batch PUT of the same tag must
        // take the real dictionary path.
        let mut batch_put_tags: std::collections::HashSet<CompTag> =
            std::collections::HashSet::new();
        for item in items {
            let now_ms = self.tick();
            match item {
                BatchItem::Get { tag } => {
                    self.counters.gets.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.gets.inc();
                    args_len += 32;
                    ret_len += 128;
                    plans.push(BatchPlan::Get { tag, now_ms });
                }
                BatchItem::GetPrefiltered { tag, prefilter } => {
                    self.counters.gets.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.gets.inc();
                    // Filter-aware batch GET planning: a complete shard
                    // filter that does not contain the prefilter tag proves
                    // the tag is absent (the filter never yields a false
                    // negative), so the item is settled right here — it
                    // never joins a shard group inside the batch ECALL and
                    // costs no dictionary-lock time.
                    let proven_absent = !batch_put_tags.contains(&tag) && {
                        let filter = lock_recover(&self.shard(&tag).filter);
                        filter.is_complete() && !filter.may_contain(prefilter)
                    };
                    if proven_absent {
                        self.telemetry.filter_batch_skips.inc();
                        plans.push(BatchPlan::FilteredMiss);
                    } else {
                        args_len += 32;
                        ret_len += 128;
                        plans.push(BatchPlan::Get { tag, now_ms });
                    }
                }
                BatchItem::Put { .. } | BatchItem::PutPrefiltered { .. } => {
                    let (tag, record, prefilter) = match item {
                        BatchItem::Put { tag, record } => (tag, record, None),
                        BatchItem::PutPrefiltered { tag, prefilter, record } => {
                            (tag, record, Some(prefilter))
                        }
                        BatchItem::Get { .. } | BatchItem::GetPrefiltered { .. } => {
                            unreachable!("matched above")
                        }
                    };
                    self.counters.puts.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.puts.inc();
                    // Conservative: recorded even if the PUT is denied below
                    // (skipping the shortcut never changes an answer).
                    batch_put_tags.insert(tag);
                    if let Some(reason) = self.backend.read_only() {
                        self.counters.rejected_puts.fetch_add(1, Ordering::Relaxed);
                        self.telemetry.rejected_puts.inc();
                        plans.push(BatchPlan::Denied {
                            reason: format!("store is read-only: {reason}"),
                        });
                        continue;
                    }
                    let boxed_len = record.boxed_result.len() as u64;
                    let decision = self.quota.check_put(app, boxed_len, now_ms);
                    if let QuotaDecision::Deny(reason) = decision {
                        self.counters.rejected_puts.fetch_add(1, Ordering::Relaxed);
                        self.telemetry.rejected_puts.inc();
                        plans.push(BatchPlan::Denied { reason });
                        continue;
                    }
                    args_len += record.challenge.len() + 16 + 12 + 8;
                    ret_len += 1;
                    let blob = self.untrusted.store(record.boxed_result);
                    plans.push(BatchPlan::Put {
                        tag,
                        challenge: record.challenge,
                        wrapped_key: record.wrapped_key,
                        nonce: record.nonce,
                        blob,
                        boxed_len,
                        now_ms,
                        prefilter,
                    });
                }
            }
        }

        // Phase B: ONE ECALL for the whole batch. Items are grouped by
        // shard; each shard's lock is taken once, and per-item
        // enclave-memory failures are recorded instead of aborting the
        // remaining items.
        let outcomes =
            self.enclave.ecall_with_bytes("store_batch", args_len, ret_len, || {
                let mut outcomes: Vec<Option<BatchOutcome>> =
                    plans.iter().map(|_| None).collect();
                let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
                for (index, plan) in plans.iter().enumerate() {
                    match plan.tag() {
                        Some(tag) => by_shard[self.shard_for_tag(tag)].push(index),
                        None => match plan {
                            BatchPlan::Denied { reason } => {
                                outcomes[index] =
                                    Some(BatchOutcome::Denied(reason.clone()));
                            }
                            BatchPlan::FilteredMiss => {
                                outcomes[index] = Some(BatchOutcome::GetMiss);
                            }
                            BatchPlan::Get { .. } | BatchPlan::Put { .. } => {
                                unreachable!("tagged plans route to a shard")
                            }
                        },
                    }
                }
                for (shard_index, indices) in by_shard.iter().enumerate() {
                    if indices.is_empty() {
                        continue;
                    }
                    let shard = &self.shards[shard_index];
                    // Pure-GET groups without TTL share the shard read
                    // lock; anything that can mutate takes the write lock.
                    let needs_write = self.config.ttl_ms.is_some()
                        || indices
                            .iter()
                            .any(|&i| matches!(plans[i], BatchPlan::Put { .. }));
                    if needs_write {
                        let mut dict = shard.dict_write();
                        for &index in indices {
                            outcomes[index] = Some(self.settle_item(
                                app,
                                &plans[index],
                                shard,
                                &mut dict,
                            ));
                        }
                    } else {
                        let dict = shard.dict_read();
                        for &index in indices {
                            outcomes[index] =
                                Some(Self::settle_get(&plans[index], &dict));
                        }
                    }
                }
                outcomes
                    .into_iter()
                    .map(|outcome| outcome.expect("every batch item settled"))
                    .collect::<Vec<_>>()
            });

        // Phase C (host): load hit blobs, clean up expired/duplicate/failed
        // items, mirror mutations into the durable backend, and enforce
        // capacity once per inserted-into shard. WAL records are appended
        // per item but fsynced once for the whole batch (group commit)
        // before the results are returned.
        let durable = self.durable();
        let mut results = Vec::with_capacity(outcomes.len());
        let mut dangling: Vec<CompTag> = Vec::new();
        let mut inserted_shards = vec![false; self.shards.len()];
        // Inserted PUTs whose WAL record awaits the final flush: the result
        // index plus everything needed to roll the item back if it fails.
        let mut pending_puts: Vec<(usize, CompTag, BlobId, u64)> = Vec::new();
        let mut wal_touched = false;
        for (outcome, plan) in outcomes.into_iter().zip(plans) {
            match outcome {
                BatchOutcome::Denied(reason) => {
                    results.push(BatchItemResult::rejected(reason));
                }
                BatchOutcome::GetMiss => results.push(BatchItemResult::not_found()),
                BatchOutcome::GetExpired(entry) => {
                    self.untrusted.remove(entry.blob);
                    self.quota.release(entry.owner, u64::from(entry.boxed_len));
                    if let Some(tag) = plan.tag() {
                        self.release_entry_memory(self.shard(tag), &entry);
                        if durable && self.backend.record_delete(tag).is_ok() {
                            wal_touched = true;
                        }
                    }
                    results.push(BatchItemResult::not_found());
                }
                BatchOutcome::GetHit { challenge, wrapped_key, nonce, blob } => {
                    match self.untrusted.load(blob) {
                        Some(boxed_result) => {
                            self.counters.hits.fetch_add(1, Ordering::Relaxed);
                            self.telemetry.hits.inc();
                            results.push(BatchItemResult::found(Record {
                                challenge,
                                wrapped_key,
                                nonce,
                                boxed_result,
                            }));
                        }
                        None => {
                            // Hostile blob deletion; drop the metadata in one
                            // follow-up ECALL shared by all dangling items.
                            if let BatchPlan::Get { tag, .. } = plan {
                                dangling.push(tag);
                            }
                            results.push(BatchItemResult::not_found());
                        }
                    }
                }
                BatchOutcome::PutInserted => {
                    if durable {
                        if let BatchPlan::Put {
                            tag,
                            challenge,
                            wrapped_key,
                            nonce,
                            blob,
                            boxed_len,
                            ..
                        } = &plan
                        {
                            let logged = match self.untrusted.load(*blob) {
                                Some(boxed_result) => {
                                    self.backend.record_put(&SyncEntry {
                                        tag: *tag,
                                        record: Record {
                                            challenge: challenge.clone(),
                                            wrapped_key: *wrapped_key,
                                            nonce: *nonce,
                                            boxed_result,
                                        },
                                        hits: 0,
                                    })
                                }
                                None => Ok(()),
                            };
                            match logged {
                                Ok(()) => {
                                    wal_touched = true;
                                    pending_puts.push((
                                        results.len(),
                                        *tag,
                                        *blob,
                                        *boxed_len,
                                    ));
                                }
                                Err(e) => {
                                    self.rollback_batch_put(app, tag, *blob, *boxed_len);
                                    results
                                        .push(BatchItemResult::rejected(e.to_string()));
                                    continue;
                                }
                            }
                        }
                    }
                    if let BatchPlan::Put { tag, prefilter, .. } = &plan {
                        inserted_shards[self.shard_for_tag(tag)] = true;
                        // Bits survive even if the group-commit flush below
                        // rolls this item back: a stale bit is only a false
                        // positive, which the filter contract permits.
                        self.note_filter_insert(self.shard(tag), *prefilter);
                    }
                    results.push(BatchItemResult::accepted());
                }
                BatchOutcome::PutDuplicate { orphan } => {
                    self.untrusted.remove(orphan);
                    if let BatchPlan::Put { boxed_len, .. } = plan {
                        self.quota.release(app, boxed_len);
                    }
                    if durable {
                        if let Some(tag) = plan.tag() {
                            if self.backend.record_ref(tag).is_ok() {
                                wal_touched = true;
                            }
                        }
                    }
                    results.push(BatchItemResult {
                        status: BatchStatus::Accepted,
                        record: None,
                        reason: Some("duplicate: existing entry kept".into()),
                    });
                }
                BatchOutcome::PutFailed(reason) => {
                    if let BatchPlan::Put { blob, boxed_len, .. } = plan {
                        self.untrusted.remove(blob);
                        self.quota.release(app, boxed_len);
                    }
                    self.counters.rejected_puts.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.rejected_puts.inc();
                    results.push(BatchItemResult::rejected(reason));
                }
            }
        }
        if !dangling.is_empty() {
            self.enclave.ecall("store_drop_dangling", || {
                for tag in &dangling {
                    let shard = self.shard(tag);
                    let removed = shard.dict_write().remove(tag);
                    if let Some(entry) = removed {
                        self.release_entry_memory(shard, &entry);
                    }
                }
            });
            if durable {
                for tag in &dangling {
                    if self.backend.record_delete(tag).is_ok() {
                        wal_touched = true;
                    }
                }
            }
        }
        // Group commit: one fsync covers every record this batch appended.
        // If it fails, the inserted PUTs were acknowledged optimistically in
        // `results` but are not durable — roll each back and reject it.
        if wal_touched {
            if let Err(e) = self.backend.flush() {
                for (index, tag, blob, boxed_len) in pending_puts {
                    self.rollback_batch_put(app, &tag, blob, boxed_len);
                    results[index] = BatchItemResult::rejected(e.to_string());
                }
            }
        }
        for (shard_index, inserted) in inserted_shards.iter().enumerate() {
            if *inserted {
                self.enforce_capacity(&self.shards[shard_index]);
            }
        }
        results
    }

    /// Rolls one batch-inserted PUT back out of the dictionary, untrusted
    /// memory, and quota accounting after its WAL record failed.
    fn rollback_batch_put(
        &self,
        app: AppId,
        tag: &CompTag,
        blob: BlobId,
        boxed_len: u64,
    ) {
        let shard = self.shard(tag);
        self.enclave.ecall("store_put_rollback", || {
            let removed = shard.dict_write().remove(tag);
            if let Some(entry) = removed {
                self.release_entry_memory(shard, &entry);
            }
        });
        self.untrusted.remove(blob);
        self.quota.release(app, boxed_len);
        self.counters.rejected_puts.fetch_add(1, Ordering::Relaxed);
        self.telemetry.rejected_puts.inc();
    }

    /// Settles one batch item against its (write-locked) shard dictionary.
    fn settle_item(
        &self,
        app: AppId,
        plan: &BatchPlan,
        shard: &Shard,
        dict: &mut MetadataDict,
    ) -> BatchOutcome {
        match plan {
            BatchPlan::Denied { reason } => BatchOutcome::Denied(reason.clone()),
            BatchPlan::FilteredMiss => BatchOutcome::GetMiss,
            BatchPlan::Get { tag, now_ms } => {
                if let Some(ttl) = self.config.ttl_ms {
                    let is_expired = dict.peek(tag).is_some_and(|entry| {
                        now_ms.saturating_sub(entry.created_ms) >= ttl
                    });
                    if is_expired {
                        return match dict.remove(tag) {
                            Some(entry) => BatchOutcome::GetExpired(entry),
                            None => BatchOutcome::GetMiss,
                        };
                    }
                }
                match dict.get(tag) {
                    Some(entry) => BatchOutcome::GetHit {
                        challenge: entry.challenge.clone(),
                        wrapped_key: entry.wrapped_key,
                        nonce: entry.nonce,
                        blob: entry.blob,
                    },
                    None => BatchOutcome::GetMiss,
                }
            }
            BatchPlan::Put {
                tag,
                challenge,
                wrapped_key,
                nonce,
                blob,
                boxed_len,
                now_ms,
                prefilter,
            } => {
                let entry_footprint = 32 + challenge.len() + 120;
                let mut meta_heap = lock_recover(&shard.meta_heap);
                if let Err(e) = meta_heap.reserve(&self.enclave, entry_footprint) {
                    return BatchOutcome::PutFailed(e.to_string());
                }
                let rejected = dict.insert(
                    *tag,
                    challenge.clone(),
                    *wrapped_key,
                    *nonce,
                    *blob,
                    *boxed_len as u32,
                    app,
                    *now_ms,
                    *prefilter,
                );
                match rejected {
                    Some(orphan) => {
                        meta_heap.release(&self.enclave, entry_footprint);
                        BatchOutcome::PutDuplicate { orphan }
                    }
                    None => BatchOutcome::PutInserted,
                }
            }
        }
    }

    /// Settles a GET from a pure-read batch group (no TTL, no PUTs in the
    /// shard group), under the shard's shared read lock.
    fn settle_get(plan: &BatchPlan, dict: &MetadataDict) -> BatchOutcome {
        match plan {
            BatchPlan::Get { tag, .. } => match dict.get(tag) {
                Some(entry) => BatchOutcome::GetHit {
                    challenge: entry.challenge.clone(),
                    wrapped_key: entry.wrapped_key,
                    nonce: entry.nonce,
                    blob: entry.blob,
                },
                None => BatchOutcome::GetMiss,
            },
            _ => unreachable!("read-only groups contain only GET plans"),
        }
    }

    /// Evicts from `shard` until it fits its per-shard entry/byte budget.
    fn enforce_capacity(&self, shard: &Shard) {
        let mut logged_delete = false;
        loop {
            let evicted = self.enclave.ecall("store_evict", || {
                let mut dict = shard.dict_write();
                if dict.len() > self.shard_max_entries
                    || dict.stored_bytes() > self.shard_max_bytes
                {
                    dict.evict_lru()
                } else {
                    None
                }
            });
            match evicted {
                Some((tag, entry)) => {
                    shard.evictions.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.evictions.inc();
                    self.untrusted.remove(entry.blob);
                    self.quota.release(entry.owner, u64::from(entry.boxed_len));
                    self.release_entry_memory(shard, &entry);
                    // Best-effort: a lost eviction record resurrects an
                    // evicted entry on restart, which capacity enforcement
                    // simply evicts again.
                    if self.durable() && self.backend.record_delete(&tag).is_ok() {
                        logged_delete = true;
                    }
                }
                None => break,
            }
        }
        if logged_delete {
            let _ = self.backend.flush();
        }
    }

    fn release_entry_memory(&self, shard: &Shard, entry: &crate::DictEntry) {
        let footprint = 32 + entry.challenge.len() + 120;
        lock_recover(&shard.meta_heap).release(&self.enclave, footprint);
    }

    /// Records a freshly inserted entry in its shard's negative filter: the
    /// prefilter tag when the client supplied one, otherwise a conservative
    /// downgrade to incomplete (the filter then answers "maybe" for every
    /// key until rebuilt).
    fn note_filter_insert(&self, shard: &Shard, prefilter: Option<u64>) {
        {
            let mut filter = lock_recover(&shard.filter);
            match prefilter {
                Some(tag) => {
                    filter.insert(tag);
                    self.telemetry.filter_inserts.inc();
                }
                None => {
                    filter.mark_incomplete();
                    self.telemetry.filter_incomplete.inc();
                }
            }
        }
        self.filter_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every shard's negative filter plus the
    /// current filter epoch — the payload of a `FILTER_RESPONSE`.
    pub fn filter_snapshot(&self) -> FilterBody {
        FilterBody {
            epoch: self.filter_epoch.load(Ordering::Relaxed),
            shards: self
                .shards
                .iter()
                .map(|shard| lock_recover(&shard.filter).clone())
                .collect(),
        }
    }

    /// Rebuilds every shard's negative filter from the dictionary index:
    /// entries with known prefilter tags are re-inserted; any entry without
    /// one leaves its shard's filter incomplete. Called after snapshot/WAL
    /// recovery (recovered entries never carry prefilter tags, but emptied
    /// shards regain their vacuously complete absence proofs).
    pub fn rebuild_filters(&self) {
        for shard in self.shards.iter() {
            let mut filter = lock_recover(&shard.filter);
            filter.clear();
            let dict = shard.dict_observe();
            for (_tag, entry) in dict.iter() {
                match entry.prefilter {
                    Some(tag) => filter.insert(tag),
                    None => filter.mark_incomplete(),
                }
            }
        }
        self.telemetry.filter_rebuilds.inc();
        self.filter_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Imports entries wholesale (snapshot restore), preserving hit counts.
    /// Entries route to shards by tag, so snapshots restore correctly into
    /// a store with any shard count. Returns how many entries were
    /// imported.
    pub fn import_entries(&self, entries: Vec<SyncEntry>) -> usize {
        let mut imported = 0usize;
        for entry in entries {
            let hits = entry.hits;
            let tag = entry.tag;
            let response = self.handle_put(AppId(u64::MAX), tag, entry.record, None);
            if response.accepted {
                self.enclave.ecall("store_restore_hits", || {
                    self.shard(&tag).dict_read().restore_hits(&tag, hits);
                });
                imported += 1;
            }
        }
        imported
    }

    /// Exports entries with at least `min_hits` hits for master-store sync,
    /// most popular first across all shards.
    pub fn export_popular(&self, min_hits: u64) -> Vec<SyncEntry> {
        let popular = self.enclave.ecall("store_export", || {
            let mut selected = Vec::new();
            for shard in self.shards.iter() {
                selected.extend(shard.dict_read().popular(min_hits));
            }
            // Per-shard selections are each sorted; merge to the global
            // popularity order the single-dict store produced.
            selected.sort_by(|a, b| b.1.hits().cmp(&a.1.hits()).then(a.0.cmp(&b.0)));
            selected
        });
        popular
            .into_iter()
            .filter_map(|(tag, entry)| {
                self.untrusted.load(entry.blob).map(|boxed_result| SyncEntry {
                    tag,
                    record: Record {
                        challenge: entry.challenge.clone(),
                        wrapped_key: entry.wrapped_key,
                        nonce: entry.nonce,
                        boxed_result,
                    },
                    hits: entry.hits(),
                })
            })
            .collect()
    }

    /// Exports every entry grouped by owning shard (snapshot sections).
    /// Entries whose ciphertext blob vanished from untrusted memory are
    /// skipped, matching [`export_popular`](Self::export_popular).
    pub fn export_shards(&self) -> Vec<Vec<SyncEntry>> {
        self.shards
            .iter()
            .map(|shard| {
                let entries = self
                    .enclave
                    .ecall("store_export_shard", || shard.dict_read().popular(0));
                entries
                    .into_iter()
                    .filter_map(|(tag, entry)| {
                        self.untrusted.load(entry.blob).map(|boxed_result| SyncEntry {
                            tag,
                            record: Record {
                                challenge: entry.challenge.clone(),
                                wrapped_key: entry.wrapped_key,
                                nonce: entry.nonce,
                                boxed_result,
                            },
                            hits: entry.hits(),
                        })
                    })
                    .collect()
            })
            .collect()
    }

    /// A snapshot of the store's counters: aggregates across shards plus
    /// one [`ShardStatsBody`] per shard.
    pub fn stats(&self) -> StatsBody {
        let mut entries = 0u64;
        let mut stored_bytes = 0u64;
        let mut evictions = 0u64;
        let mut shards = Vec::with_capacity(self.shards.len());
        for shard in self.shards.iter() {
            let (shard_entries, shard_bytes) = {
                let dict = shard.dict_observe();
                (dict.len() as u64, dict.stored_bytes())
            };
            let shard_evictions = shard.evictions.load(Ordering::Relaxed);
            entries += shard_entries;
            stored_bytes += shard_bytes;
            evictions += shard_evictions;
            shards.push(ShardStatsBody {
                entries: shard_entries,
                stored_bytes: shard_bytes,
                evictions: shard_evictions,
                lock_contention: shard.contention.load(Ordering::Relaxed),
                busy_ns: shard.busy_ns.load(Ordering::Relaxed),
            });
        }
        StatsBody {
            entries,
            gets: self.counters.gets.load(Ordering::Relaxed),
            hits: self.counters.hits.load(Ordering::Relaxed),
            puts: self.counters.puts.load(Ordering::Relaxed),
            rejected_puts: self.counters.rejected_puts.load(Ordering::Relaxed),
            stored_bytes,
            evictions,
            shards,
        }
    }

    /// Pushes the store's derived values — entry counts, byte totals, and
    /// per-shard counters — into the process-global telemetry registry.
    ///
    /// Event counters (gets, hits, puts, rejections, evictions) are
    /// incremented live as requests flow; the values synced here are
    /// point-in-time readings that only a snapshot consumer needs, so they
    /// are refreshed on demand: [`handle`](Self::handle) calls this before
    /// answering a `MetricsRequest`, and the `speedctl serve` JSONL emitter
    /// calls it once per interval.
    pub fn sync_telemetry(&self) {
        let mut entries = 0u64;
        let mut stored_bytes = 0u64;
        for (shard, tm) in self.shards.iter().zip(&self.telemetry.shards) {
            let (shard_entries, shard_bytes) = {
                let dict = shard.dict_observe();
                (dict.len() as u64, dict.stored_bytes())
            };
            entries += shard_entries;
            stored_bytes += shard_bytes;
            tm.entries.set(shard_entries);
            tm.stored_bytes.set(shard_bytes);
            tm.evictions.set_total(shard.evictions.load(Ordering::Relaxed));
            tm.lock_contention.set_total(shard.contention.load(Ordering::Relaxed));
            tm.busy_ns.set_total(shard.busy_ns.load(Ordering::Relaxed));
        }
        self.telemetry.entries.set(entries);
        self.telemetry.stored_bytes.set(stored_bytes);
    }

    /// Number of LRU evictions so far, across all shards.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.evictions.load(Ordering::Relaxed)).sum()
    }

    /// Advances and returns the logical millisecond clock used for quota
    /// windows. Each request advances time by 1 ms; tests may rely on this
    /// determinism.
    fn tick(&self) -> u64 {
        self.logical_ms.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_enclave::CostModel;

    fn record(len: usize, fill: u8) -> Record {
        Record {
            challenge: vec![fill; 32],
            wrapped_key: [fill; 16],
            nonce: [fill; 12],
            boxed_result: vec![fill; len],
        }
    }

    fn tag(n: u8) -> CompTag {
        CompTag::from_bytes([n; 32])
    }

    fn store() -> (Arc<Platform>, ResultStore) {
        let platform = Platform::new(CostModel::default_sgx());
        let store = ResultStore::new(&platform, StoreConfig::default()).unwrap();
        (platform, store)
    }

    #[test]
    fn get_miss_then_put_then_hit() {
        let (_p, store) = store();
        let response = store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        assert_eq!(
            response,
            Message::GetResponse(GetResponseBody { found: false, record: None })
        );

        let put = store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(100, 7),
        });
        assert!(matches!(put, Message::PutResponse(body) if body.accepted));

        let response = store.handle(Message::GetRequest { app: AppId(2), tag: tag(1) });
        match response {
            Message::GetResponse(body) => {
                assert!(body.found);
                assert_eq!(body.record.unwrap().boxed_result, vec![7u8; 100]);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn stats_track_requests() {
        let (_p, store) = store();
        store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(10, 1),
        });
        store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        let stats = store.stats();
        assert_eq!(stats.gets, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.puts, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.stored_bytes, 10);
    }

    #[test]
    fn stats_report_per_shard_counters() {
        let (_p, store) = store();
        // tag(n) routes by leading byte: distinct shards for 1 and 2.
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(10, 1),
        });
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(2),
            record: record(30, 2),
        });
        let stats = store.stats();
        assert_eq!(stats.shards.len(), store.shard_count());
        assert_eq!(stats.shards.iter().map(|s| s.entries).sum::<u64>(), 2);
        assert_eq!(stats.shards.iter().map(|s| s.stored_bytes).sum::<u64>(), 40);
        let shard_one = store.shard_for_tag(&tag(1));
        let shard_two = store.shard_for_tag(&tag(2));
        assert_ne!(shard_one, shard_two);
        assert_eq!(stats.shards[shard_one].entries, 1);
        assert_eq!(stats.shards[shard_one].stored_bytes, 10);
        assert_eq!(stats.shards[shard_two].stored_bytes, 30);
        // The dictionary paths above all held shard locks.
        assert!(stats.shards.iter().map(|s| s.busy_ns).sum::<u64>() > 0);
    }

    #[test]
    fn tags_spread_across_shards() {
        let (_p, store) = store();
        let mut seen = std::collections::HashSet::new();
        for n in 0..=255u8 {
            seen.insert(store.shard_for_tag(&tag(n)));
        }
        assert_eq!(seen.len(), store.shard_count());
    }

    #[test]
    fn single_shard_config_matches_global_budgets() {
        let platform = Platform::new(CostModel::default_sgx());
        let store =
            ResultStore::new(&platform, StoreConfig::with_capacity(4, 100)).unwrap();
        assert_eq!(store.shard_count(), 1);
        assert_eq!(store.shard_max_entries, 4);
        assert_eq!(store.shard_max_bytes, 100);
    }

    #[test]
    fn duplicate_put_keeps_first_version() {
        let (platform, store) = store();
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(10, 1),
        });
        let blobs_before = platform.untrusted().len();
        let response = store.handle(Message::PutRequest {
            app: AppId(2),
            tag: tag(1),
            record: record(10, 2),
        });
        assert!(matches!(
            response,
            Message::PutResponse(body) if body.accepted && body.reason.is_some()
        ));
        // The duplicate's blob was freed.
        assert_eq!(platform.untrusted().len(), blobs_before);
        let get = store.handle(Message::GetRequest { app: AppId(3), tag: tag(1) });
        match get {
            Message::GetResponse(body) => {
                assert_eq!(body.record.unwrap().boxed_result, vec![1u8; 10]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let platform = Platform::new(CostModel::default_sgx());
        let store =
            ResultStore::new(&platform, StoreConfig::with_capacity(2, u64::MAX)).unwrap();
        for n in 1..=3u8 {
            store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag(n),
                record: record(8, n),
            });
        }
        assert_eq!(store.evictions(), 1);
        // Entry 1 was LRU and is gone; 2 and 3 remain.
        let miss = store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        assert!(matches!(miss, Message::GetResponse(b) if !b.found));
        let hit = store.handle(Message::GetRequest { app: AppId(1), tag: tag(3) });
        assert!(matches!(hit, Message::GetResponse(b) if b.found));
    }

    #[test]
    fn byte_capacity_eviction() {
        let platform = Platform::new(CostModel::default_sgx());
        let store =
            ResultStore::new(&platform, StoreConfig::with_capacity(usize::MAX, 100))
                .unwrap();
        for n in 1..=4u8 {
            store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag(n),
                record: record(40, n),
            });
        }
        assert!(store.stats().stored_bytes <= 100);
        assert!(store.evictions() >= 2);
    }

    #[test]
    fn eviction_budgets_hold_per_shard() {
        // Four shards, room for 8 entries total → 2 per shard. Overfill one
        // shard: only that shard evicts, and it stays within its slice.
        let platform = Platform::new(CostModel::default_sgx());
        let config = StoreConfig {
            max_entries: 8,
            max_stored_bytes: u64::MAX,
            quota: QuotaPolicy::unlimited(),
            access: AccessControl::Open,
            ttl_ms: None,
            shards: 4,
        };
        let store = ResultStore::new(&platform, config).unwrap();
        // Tags with leading byte 0, 4, 8, 12 all route to shard 0.
        for lead in [0u8, 4, 8, 12] {
            let mut bytes = [lead; 32];
            bytes[1] = lead.wrapping_add(1);
            store.handle(Message::PutRequest {
                app: AppId(1),
                tag: CompTag::from_bytes(bytes),
                record: record(8, lead),
            });
        }
        // One entry in a different shard is untouched.
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(8, 99),
        });
        let stats = store.stats();
        let target = store.shard_for_tag(&CompTag::from_bytes([0; 32]));
        assert_eq!(stats.shards[target].entries, 2, "shard holds its 2-entry slice");
        assert_eq!(stats.shards[target].evictions, 2);
        let other = store.shard_for_tag(&tag(1));
        assert_eq!(stats.shards[other].entries, 1);
        assert_eq!(stats.shards[other].evictions, 0);
    }

    #[test]
    fn quota_rejection_reported() {
        let platform = Platform::new(CostModel::default_sgx());
        let config = StoreConfig {
            max_entries: 1000,
            max_stored_bytes: u64::MAX,
            quota: QuotaPolicy {
                max_entries_per_app: 2,
                max_bytes_per_app: u64::MAX,
                max_puts_per_window: u64::MAX,
                window_ms: 1_000,
            },
            access: AccessControl::Open,
            ttl_ms: None,
            shards: DEFAULT_SHARDS,
        };
        let store = ResultStore::new(&platform, config).unwrap();
        for n in 1..=2u8 {
            let r = store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag(n),
                record: record(8, n),
            });
            assert!(matches!(r, Message::PutResponse(b) if b.accepted));
        }
        let rejected = store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(3),
            record: record(8, 3),
        });
        match rejected {
            Message::PutResponse(b) => {
                assert!(!b.accepted);
                assert!(b.reason.unwrap().contains("quota"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Another app is unaffected.
        let ok = store.handle(Message::PutRequest {
            app: AppId(2),
            tag: tag(4),
            record: record(8, 4),
        });
        assert!(matches!(ok, Message::PutResponse(b) if b.accepted));
    }

    #[test]
    fn hostile_blob_deletion_degrades_to_miss() {
        let (platform, store) = store();
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(10, 1),
        });
        // Adversary wipes all untrusted blobs.
        let ids: Vec<_> = (0..100).map(speed_enclave::BlobId::from_raw).collect();
        for id in ids {
            platform.untrusted().remove(id);
        }
        let response = store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        assert!(matches!(response, Message::GetResponse(b) if !b.found));
        // The dangling metadata was cleaned up.
        assert_eq!(store.stats().entries, 0);
    }

    #[test]
    fn ecall_counters_grow_with_requests() {
        let (_p, store) = store();
        let before = store.enclave().stats().ecalls;
        store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(10, 1),
        });
        assert!(store.enclave().stats().ecalls > before);
    }

    #[test]
    fn unexpected_message_yields_error() {
        let (_p, store) = store();
        let response = store.handle(Message::Error("client-side".into()));
        assert!(matches!(response, Message::Error(_)));
    }

    #[test]
    fn sync_pull_exports_popular_entries() {
        let (_p, store) = store();
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(10, 1),
        });
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(2),
            record: record(10, 2),
        });
        // Make tag 1 popular.
        for _ in 0..3 {
            store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        }
        let response = store.handle(Message::SyncPull { min_hits: 2 });
        match response {
            Message::SyncBatch(entries) => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].tag, tag(1));
                assert!(entries[0].hits >= 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn export_popular_orders_across_shards() {
        let (_p, store) = store();
        // Three entries in three different shards with distinct popularity.
        for n in 1..=3u8 {
            store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag(n),
                record: record(10, n),
            });
        }
        for _ in 0..5 {
            store.handle(Message::GetRequest { app: AppId(1), tag: tag(2) });
        }
        for _ in 0..2 {
            store.handle(Message::GetRequest { app: AppId(1), tag: tag(3) });
        }
        store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        let exported = store.export_popular(1);
        let order: Vec<CompTag> = exported.iter().map(|e| e.tag).collect();
        assert_eq!(order, vec![tag(2), tag(3), tag(1)]);
    }

    #[test]
    fn export_shards_partitions_by_routing() {
        let (_p, store) = store();
        for n in 1..=4u8 {
            store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag(n),
                record: record(10, n),
            });
        }
        let sections = store.export_shards();
        assert_eq!(sections.len(), store.shard_count());
        let total: usize = sections.iter().map(|s| s.len()).sum();
        assert_eq!(total, 4);
        for (shard_index, section) in sections.iter().enumerate() {
            for entry in section {
                assert_eq!(store.shard_for_tag(&entry.tag), shard_index);
            }
        }
    }

    #[test]
    fn sync_batch_merges_entries() {
        let (_p, source) = store();
        let (_p2, target) = store();
        source.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(10, 1),
        });
        source.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        let batch = source.export_popular(1);
        assert_eq!(batch.len(), 1);
        target.handle(Message::SyncBatch(batch));
        let hit = target.handle(Message::GetRequest { app: AppId(9), tag: tag(1) });
        assert!(matches!(hit, Message::GetResponse(b) if b.found));
    }

    #[test]
    fn allowlist_blocks_unauthorized_apps() {
        let platform = Platform::new(CostModel::default_sgx());
        let config = StoreConfig {
            access: AccessControl::Allowlist([1u64, 2].into_iter().collect()),
            ..StoreConfig::default()
        };
        let store = ResultStore::new(&platform, config).unwrap();

        // Authorized app can PUT and GET.
        let ok = store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(8, 1),
        });
        assert!(matches!(ok, Message::PutResponse(b) if b.accepted));
        let ok = store.handle(Message::GetRequest { app: AppId(2), tag: tag(1) });
        assert!(matches!(ok, Message::GetResponse(b) if b.found));

        // Unauthorized app is refused both ways.
        let denied = store.handle(Message::GetRequest { app: AppId(3), tag: tag(1) });
        assert!(matches!(denied, Message::Error(ref m) if m.contains("not authorized")));
        let denied = store.handle(Message::PutRequest {
            app: AppId(3),
            tag: tag(2),
            record: record(8, 2),
        });
        assert!(matches!(denied, Message::Error(_)));
        assert_eq!(store.stats().entries, 1);
    }

    #[test]
    fn ttl_expires_entries() {
        let platform = Platform::new(CostModel::default_sgx());
        let config = StoreConfig { ttl_ms: Some(5), ..StoreConfig::default() };
        let store = ResultStore::new(&platform, config).unwrap();
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(12, 1),
        });

        // Within TTL (logical clock advances 1 ms per request): hit.
        let hit = store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        assert!(matches!(hit, Message::GetResponse(b) if b.found));

        // Burn logical time with unrelated requests past the TTL.
        for n in 10..20u8 {
            store.handle(Message::GetRequest { app: AppId(1), tag: tag(n) });
        }
        let miss = store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        assert!(matches!(miss, Message::GetResponse(b) if !b.found));
        // The expired entry was fully reclaimed.
        assert_eq!(store.stats().entries, 0);
        assert_eq!(store.stats().stored_bytes, 0);
    }

    #[test]
    fn no_ttl_means_no_expiry() {
        let (_p, store) = store();
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(8, 1),
        });
        for n in 10..60u8 {
            store.handle(Message::GetRequest { app: AppId(1), tag: tag(n) });
        }
        let hit = store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        assert!(matches!(hit, Message::GetResponse(b) if b.found));
    }

    #[test]
    fn import_entries_preserves_hits() {
        let (_p, store) = store();
        let entries = vec![SyncEntry {
            tag: tag(1),
            record: Record {
                challenge: vec![1; 32],
                wrapped_key: [1; 16],
                nonce: [1; 12],
                boxed_result: vec![1; 10],
            },
            hits: 7,
        }];
        assert_eq!(store.import_entries(entries), 1);
        let popular = store.export_popular(7);
        assert_eq!(popular.len(), 1);
        assert_eq!(popular[0].hits, 7);
    }

    #[test]
    fn batch_of_gets_costs_one_ecall() {
        let (_p, store) = store();
        for n in 1..=3u8 {
            store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag(n),
                record: record(10, n),
            });
        }
        let ecalls_before = store.enclave().stats().ecalls;
        let response = store.handle(Message::BatchRequest {
            app: AppId(2),
            items: (1..=4u8).map(|n| BatchItem::Get { tag: tag(n) }).collect(),
        });
        let ecalls_after = store.enclave().stats().ecalls;
        assert_eq!(
            ecalls_after - ecalls_before,
            1,
            "a batch of GETs must enter the enclave exactly once, \
             even when the items span multiple shards"
        );
        match response {
            Message::BatchResponse(results) => {
                assert_eq!(results.len(), 4);
                for (i, result) in results.iter().take(3).enumerate() {
                    assert_eq!(result.status, BatchStatus::Found, "item {i}");
                    let rec = result.record.as_ref().unwrap();
                    assert_eq!(rec.boxed_result, vec![(i + 1) as u8; 10]);
                }
                assert_eq!(results[3].status, BatchStatus::NotFound);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_put_then_get_same_tag_hits_within_batch() {
        let (_p, store) = store();
        let response = store.handle(Message::BatchRequest {
            app: AppId(1),
            items: vec![
                BatchItem::Get { tag: tag(1) },
                BatchItem::Put { tag: tag(1), record: record(10, 7) },
                BatchItem::Get { tag: tag(1) },
            ],
        });
        match response {
            Message::BatchResponse(results) => {
                assert_eq!(results[0].status, BatchStatus::NotFound);
                assert_eq!(results[1].status, BatchStatus::Accepted);
                assert_eq!(results[2].status, BatchStatus::Found);
                assert_eq!(
                    results[2].record.as_ref().unwrap().boxed_result,
                    vec![7u8; 10]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(store.stats().entries, 1);
    }

    #[test]
    fn batch_duplicate_put_refunds_quota() {
        let (platform, store) = store();
        let blobs_before = platform.untrusted().len();
        let response = store.handle(Message::BatchRequest {
            app: AppId(1),
            items: vec![
                BatchItem::Put { tag: tag(1), record: record(10, 1) },
                BatchItem::Put { tag: tag(1), record: record(10, 2) },
            ],
        });
        match response {
            Message::BatchResponse(results) => {
                assert_eq!(results[0].status, BatchStatus::Accepted);
                assert_eq!(results[1].status, BatchStatus::Accepted);
                assert!(results[1].reason.as_ref().unwrap().contains("duplicate"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Only the first blob remains; the duplicate's was freed.
        assert_eq!(platform.untrusted().len(), blobs_before + 1);
        // First writer won.
        let get = store.handle(Message::GetRequest { app: AppId(2), tag: tag(1) });
        match get {
            Message::GetResponse(b) => {
                assert_eq!(b.record.unwrap().boxed_result, vec![1u8; 10]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_quota_denial_rejects_item_not_batch() {
        let platform = Platform::new(CostModel::default_sgx());
        let config = StoreConfig {
            quota: QuotaPolicy {
                max_entries_per_app: 1,
                max_bytes_per_app: u64::MAX,
                max_puts_per_window: u64::MAX,
                window_ms: 1_000,
            },
            ..StoreConfig::default()
        };
        let store = ResultStore::new(&platform, config).unwrap();
        let response = store.handle(Message::BatchRequest {
            app: AppId(1),
            items: vec![
                BatchItem::Put { tag: tag(1), record: record(8, 1) },
                BatchItem::Put { tag: tag(2), record: record(8, 2) },
                BatchItem::Get { tag: tag(1) },
            ],
        });
        match response {
            Message::BatchResponse(results) => {
                assert_eq!(results[0].status, BatchStatus::Accepted);
                assert_eq!(results[1].status, BatchStatus::Rejected);
                assert!(results[1].reason.as_ref().unwrap().contains("quota"));
                // The rest of the batch is unaffected by the denial.
                assert_eq!(results[2].status, BatchStatus::Found);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(store.stats().rejected_puts, 1);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (_p, store) = store();
        let ecalls_before = store.enclave().stats().ecalls;
        let response =
            store.handle(Message::BatchRequest { app: AppId(1), items: Vec::new() });
        assert_eq!(store.enclave().stats().ecalls, ecalls_before);
        assert!(matches!(response, Message::BatchResponse(r) if r.is_empty()));
    }

    #[test]
    fn batch_respects_access_control() {
        let platform = Platform::new(CostModel::default_sgx());
        let config = StoreConfig {
            access: AccessControl::Allowlist([1u64].into_iter().collect()),
            ..StoreConfig::default()
        };
        let store = ResultStore::new(&platform, config).unwrap();
        let denied = store.handle(Message::BatchRequest {
            app: AppId(9),
            items: vec![BatchItem::Get { tag: tag(1) }],
        });
        assert!(matches!(denied, Message::Error(ref m) if m.contains("not authorized")));
    }

    #[test]
    fn batch_ttl_expiry_and_cleanup() {
        let platform = Platform::new(CostModel::default_sgx());
        let config = StoreConfig { ttl_ms: Some(3), ..StoreConfig::default() };
        let store = ResultStore::new(&platform, config).unwrap();
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(12, 1),
        });
        // Burn logical time past the TTL, then batch-GET the stale tag.
        for n in 10..20u8 {
            store.handle(Message::GetRequest { app: AppId(1), tag: tag(n) });
        }
        let response = store.handle(Message::BatchRequest {
            app: AppId(1),
            items: vec![BatchItem::Get { tag: tag(1) }],
        });
        match response {
            Message::BatchResponse(results) => {
                assert_eq!(results[0].status, BatchStatus::NotFound);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The expired entry was fully reclaimed.
        assert_eq!(store.stats().entries, 0);
        assert_eq!(store.stats().stored_bytes, 0);
    }

    #[test]
    fn lock_recover_survives_poisoned_mutex() {
        // Regression for the poison-panic bug: a panicking request used to
        // leave every later request panicking on `.expect("store lock
        // poisoned")`. `lock_recover` must hand back the guard instead.
        let mutex = Arc::new(Mutex::new(7u32));
        let poisoner = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(mutex.is_poisoned());
        assert_eq!(*lock_recover(&mutex), 7);
        *lock_recover(&mutex) = 8;
        assert_eq!(*lock_recover(&mutex), 8);
    }

    #[test]
    fn shard_locks_recover_from_poison() {
        // A request that panics while holding a shard's dict lock must not
        // take the shard down for every later request.
        let (_p, store) = store();
        let store = Arc::new(store);
        let poisoner = Arc::clone(&store);
        let _ = std::thread::spawn(move || {
            let shard = &poisoner.shards[0];
            let _guard = shard.dict.write().unwrap();
            panic!("poison the shard lock");
        })
        .join();
        assert!(store.shards[0].dict.is_poisoned());
        let mut bytes = [0u8; 32];
        bytes[1] = 9;
        let tag = CompTag::from_bytes(bytes);
        assert_eq!(store.shard_for_tag(&tag), 0);
        let put = store.handle(Message::PutRequest {
            app: AppId(1),
            tag,
            record: record(8, 1),
        });
        assert!(matches!(put, Message::PutResponse(b) if b.accepted));
        let get = store.handle(Message::GetRequest { app: AppId(1), tag });
        assert!(matches!(get, Message::GetResponse(b) if b.found));
    }

    #[test]
    fn concurrent_puts_and_gets_are_safe() {
        let (_p, store) = store();
        let store = Arc::new(store);
        std::thread::scope(|s| {
            for worker in 0..4u8 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for i in 0..50u8 {
                        let t = tag(worker.wrapping_mul(50).wrapping_add(i));
                        store.handle(Message::PutRequest {
                            app: AppId(u64::from(worker)),
                            tag: t,
                            record: record(16, i),
                        });
                        store.handle(Message::GetRequest {
                            app: AppId(u64::from(worker)),
                            tag: t,
                        });
                    }
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.puts, 200);
        assert_eq!(stats.gets, 200);
    }

    #[test]
    fn prefiltered_puts_feed_the_negative_filter() {
        let (_p, store) = store();
        let before = store.filter_snapshot();
        assert_eq!(before.shards.len(), store.shard_count());
        assert!(before.shards.iter().all(NegativeFilter::is_complete));
        let shard = store.shard_for_tag(&tag(1));
        // Empty complete filter proves absence outright.
        assert!(!before.shards[shard].may_contain(0xAB));

        let put = store.handle(Message::PutPrefiltered {
            app: AppId(1),
            tag: tag(1),
            prefilter: 0xAB,
            record: record(64, 3),
        });
        assert!(matches!(put, Message::PutResponse(body) if body.accepted));

        let after = store.filter_snapshot();
        assert!(after.epoch > before.epoch);
        assert!(after.shards[shard].is_complete());
        assert!(after.shards[shard].may_contain(0xAB));
    }

    #[test]
    fn legacy_put_degrades_its_shard_filter_to_incomplete() {
        let (_p, store) = store();
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(2),
            record: record(64, 4),
        });
        let snap = store.filter_snapshot();
        let shard = store.shard_for_tag(&tag(2));
        assert!(!snap.shards[shard].is_complete());
        // An incomplete filter answers "maybe" for everything.
        assert!(snap.shards[shard].may_contain(0xFFFF));
    }

    #[test]
    fn filter_request_returns_per_shard_snapshot() {
        let (_p, store) = store();
        match store.handle(Message::FilterRequest) {
            Message::FilterResponse(body) => {
                assert_eq!(body.shards.len(), store.shard_count());
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn eviction_leaves_filter_bits_set() {
        let platform = Platform::new(CostModel::default_sgx());
        let store =
            ResultStore::new(&platform, StoreConfig::with_capacity(2, u64::MAX)).unwrap();
        for n in 1..=3u8 {
            let put = store.handle(Message::PutPrefiltered {
                app: AppId(1),
                tag: tag(n),
                prefilter: u64::from(n),
                record: record(16, n),
            });
            assert!(matches!(put, Message::PutResponse(body) if body.accepted));
        }
        assert!(store.evictions() >= 1);
        let snap = store.filter_snapshot();
        // The evicted entry's bits stay set (false positives only) and the
        // filter stays complete: no absence claim ever turns false-negative.
        assert!(snap.shards[0].is_complete());
        for n in 1..=3u64 {
            assert!(snap.shards[0].may_contain(n));
        }
    }

    #[test]
    fn rebuild_restores_complete_filters_for_emptied_shards() {
        let (_p, store) = store();
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(3),
            record: record(16, 5),
        });
        let shard = store.shard_for_tag(&tag(3));
        assert!(!store.filter_snapshot().shards[shard].is_complete());
        // Batch puts through the prefiltered item keep other shards exact.
        let results = store.handle_batch(
            AppId(1),
            vec![BatchItem::PutPrefiltered {
                tag: tag(4),
                prefilter: 44,
                record: record(16, 6),
            }],
        );
        assert!(matches!(results[0].status, BatchStatus::Accepted));

        // Rebuild from the index: the legacy entry still has no prefilter,
        // so its shard stays incomplete; the prefiltered one is re-inserted.
        store.rebuild_filters();
        let snap = store.filter_snapshot();
        assert!(!snap.shards[shard].is_complete());
        let other = store.shard_for_tag(&tag(4));
        if other != shard {
            assert!(snap.shards[other].is_complete());
            assert!(snap.shards[other].may_contain(44));
        }
    }
}
