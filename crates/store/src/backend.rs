//! Pluggable durability backends for the [`ResultStore`](crate::ResultStore).
//!
//! The store's request path is identical for every backend: the sharded
//! in-enclave metadata dictionary stays the authoritative working state.
//! A [`StoreBackend`] only decides what happens *underneath* it:
//!
//! - [`MemoryBackend`] — the original behavior. Nothing is persisted by
//!   the backend itself; durability, if any, comes from explicit sealed
//!   snapshots via [`crate::persist`]. A crash loses everything since the
//!   last snapshot.
//! - [`LogBackend`](crate::LogBackend) — crash-safe log-structured
//!   persistence: every accepted mutation is sealed, checksummed, and
//!   appended to a write-ahead segment file before the request is
//!   acknowledged, periodic checkpoints bound replay length, and
//!   compaction/GC reclaims dead log space.
//!
//! The store invokes the backend *after* the in-memory mutation succeeds
//! and *before* acknowledging the request; a backend failure rolls the
//! mutation back so an acknowledged PUT is always durable (or the store
//! has degraded to read-only).

use std::sync::Arc;

use speed_enclave::{Enclave, Platform};
use speed_wire::{CompTag, SyncEntry};

use crate::persist::SnapshotLoad;
use crate::StoreError;

/// What a backend recovered on open.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Live entries to import, in recovery order (checkpoint entries
    /// first, then write-ahead-log entries in sequence order).
    pub entries: Vec<SyncEntry>,
    /// How the recovery went.
    pub report: RecoveryReport,
}

/// Diagnostics from one backend open/recovery pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Backend that produced the report.
    pub backend: &'static str,
    /// How the checkpoint (if any) loaded.
    pub checkpoint: SnapshotLoad,
    /// Entries restored from the checkpoint.
    pub checkpoint_entries: usize,
    /// WAL records replayed on top of the checkpoint.
    pub wal_records_replayed: u64,
    /// Segment files scanned.
    pub wal_segments: usize,
    /// Segment files whose torn/corrupt tail was truncated.
    pub torn_segments: usize,
    /// Leftover `*.tmp` files swept.
    pub swept_tmp_files: usize,
    /// Whether a corrupt checkpoint was quarantined to `*.corrupt`.
    pub quarantined_checkpoint: bool,
    /// Wall-clock nanoseconds the recovery pass took.
    pub duration_ns: u64,
}

impl Default for RecoveryReport {
    fn default() -> Self {
        RecoveryReport {
            backend: "memory",
            checkpoint: SnapshotLoad::FreshMissing,
            checkpoint_entries: 0,
            wal_records_replayed: 0,
            wal_segments: 0,
            torn_segments: 0,
            swept_tmp_files: 0,
            quarantined_checkpoint: false,
            duration_ns: 0,
        }
    }
}

/// Result of one compaction pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Segment files rewritten and removed.
    pub segments_compacted: usize,
    /// Net bytes of dead log space reclaimed.
    pub reclaimed_bytes: u64,
    /// Live records carried over into the active segment.
    pub live_records_rewritten: u64,
}

/// Point-in-time durability counters for a backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// WAL records appended since open.
    pub appended_records: u64,
    /// WAL bytes appended since open.
    pub appended_bytes: u64,
    /// Segment files currently on disk.
    pub segment_files: usize,
    /// WAL bytes currently on disk.
    pub wal_bytes: u64,
    /// Bytes reclaimed by checkpoint truncation + compaction since open.
    pub reclaimed_bytes: u64,
    /// Records appended since the last checkpoint (replay debt).
    pub records_since_checkpoint: u64,
}

/// A durability backend under the sharded in-memory dictionary.
///
/// All methods take `&self`: backends are shared by every server worker
/// and use interior locking. Record methods must be atomic per call — a
/// failure means the mutation was *not* made durable and the caller must
/// roll it back or degrade.
pub trait StoreBackend: Send + Sync + std::fmt::Debug {
    /// Short backend name (reports, telemetry).
    fn name(&self) -> &'static str;

    /// Whether mutations must be reported via the `record_*` methods. The
    /// store skips cloning record bytes for non-durable backends.
    fn is_durable(&self) -> bool {
        false
    }

    /// Binds the backend to the store's platform and enclave (sealing
    /// identity) and recovers any previously persisted state.
    ///
    /// # Errors
    ///
    /// Returns an error only if the backend cannot come up at all (e.g.
    /// its directory cannot be created) — unreadable prior state degrades
    /// to a fresh start, never an open failure.
    fn open(
        &self,
        platform: &Arc<Platform>,
        enclave: &Arc<Enclave>,
    ) -> Result<Recovery, StoreError>;

    /// A new entry became live (reference count 1).
    ///
    /// # Errors
    ///
    /// Returns an error if the record could not be made durable; the
    /// caller must roll back the in-memory insert.
    fn record_put(&self, entry: &SyncEntry) -> Result<(), StoreError>;

    /// A duplicate PUT deduplicated against an existing entry
    /// (reference count +1).
    ///
    /// # Errors
    ///
    /// Returns an error if the record could not be made durable.
    fn record_ref(&self, tag: &CompTag) -> Result<(), StoreError>;

    /// One reference released; the entry dies at zero.
    ///
    /// # Errors
    ///
    /// Returns an error if the record could not be made durable.
    fn record_unref(&self, tag: &CompTag) -> Result<(), StoreError>;

    /// The entry was removed outright (eviction, expiry, dangling blob).
    ///
    /// # Errors
    ///
    /// Returns an error if the record could not be made durable.
    fn record_delete(&self, tag: &CompTag) -> Result<(), StoreError>;

    /// Makes all records appended so far power-loss durable (group
    /// commit). Called once per request before the response is sent.
    ///
    /// # Errors
    ///
    /// Returns an error if the sync failed; the backend degrades to
    /// read-only.
    fn flush(&self) -> Result<(), StoreError>;

    /// Writes a checkpoint of the full store state (per-shard sections,
    /// as exported by [`crate::ResultStore::export_shards`]) and drops the
    /// WAL segments it covers.
    ///
    /// # Errors
    ///
    /// Returns an error if the checkpoint could not be written; the WAL
    /// is untouched and the store remains writable.
    fn checkpoint(&self, sections: &[Vec<SyncEntry>]) -> Result<(), StoreError>;

    /// Rewrites at most one mostly-dead sealed segment, reclaiming its
    /// dead space.
    ///
    /// # Errors
    ///
    /// Returns an error if rewriting failed; the source segment is kept.
    fn compact(&self) -> Result<CompactionStats, StoreError>;

    /// Whether enough records accumulated since the last checkpoint that
    /// the store should checkpoint now.
    fn wants_checkpoint(&self) -> bool {
        false
    }

    /// Whether a sealed segment currently qualifies for compaction.
    fn wants_compaction(&self) -> bool {
        false
    }

    /// `Some(reason)` once the backend degraded to read-only (failed
    /// append/sync, disk full). The store rejects further PUTs but keeps
    /// serving GETs.
    fn read_only(&self) -> Option<String> {
        None
    }

    /// Durability counters.
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }
}

/// The non-durable backend: the in-memory dictionary is the whole store,
/// exactly as before the backend seam existed.
#[derive(Debug, Default)]
pub struct MemoryBackend;

impl MemoryBackend {
    /// Creates the (stateless) memory backend.
    pub fn new() -> Self {
        MemoryBackend
    }
}

impl StoreBackend for MemoryBackend {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn open(
        &self,
        _platform: &Arc<Platform>,
        _enclave: &Arc<Enclave>,
    ) -> Result<Recovery, StoreError> {
        Ok(Recovery::default())
    }

    fn record_put(&self, _entry: &SyncEntry) -> Result<(), StoreError> {
        Ok(())
    }

    fn record_ref(&self, _tag: &CompTag) -> Result<(), StoreError> {
        Ok(())
    }

    fn record_unref(&self, _tag: &CompTag) -> Result<(), StoreError> {
        Ok(())
    }

    fn record_delete(&self, _tag: &CompTag) -> Result<(), StoreError> {
        Ok(())
    }

    fn flush(&self) -> Result<(), StoreError> {
        Ok(())
    }

    fn checkpoint(&self, _sections: &[Vec<SyncEntry>]) -> Result<(), StoreError> {
        Ok(())
    }

    fn compact(&self) -> Result<CompactionStats, StoreError> {
        Ok(CompactionStats::default())
    }
}
