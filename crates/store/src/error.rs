use std::error::Error;
use std::fmt;

/// Errors surfaced by the `ResultStore`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The store's enclave could not commit memory for metadata.
    Enclave(speed_enclave::EnclaveError),
    /// A PUT was rejected by quota enforcement.
    QuotaExceeded {
        /// The offending application.
        app: u64,
        /// Why the quota tripped.
        reason: String,
    },
    /// An I/O failure in the TCP front end.
    Io(String),
    /// A protocol violation (bad frame, wrong message kind, failed channel).
    Protocol(String),
    /// The server refused the connection because its connection budget is
    /// saturated. Transient by design — clients should back off and retry.
    Busy(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Enclave(e) => write!(f, "store enclave error: {e}"),
            StoreError::QuotaExceeded { app, reason } => {
                write!(f, "quota exceeded for app {app}: {reason}")
            }
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Protocol(e) => write!(f, "store protocol error: {e}"),
            StoreError::Busy(reason) => write!(f, "store busy: {reason}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Enclave(e) => Some(e),
            _ => None,
        }
    }
}

impl From<speed_enclave::EnclaveError> for StoreError {
    fn from(e: speed_enclave::EnclaveError) -> Self {
        StoreError::Enclave(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StoreError::Io("broken pipe".into()).to_string().contains("broken pipe"));
        assert!(StoreError::QuotaExceeded { app: 3, reason: "too many puts".into() }
            .to_string()
            .contains("app 3"));
        assert!(StoreError::Protocol("bad frame".into())
            .to_string()
            .contains("bad frame"));
    }

    #[test]
    fn enclave_error_converts_with_source() {
        let err: StoreError = speed_enclave::EnclaveError::UnsealFailed.into();
        assert!(err.source().is_some());
    }
}
