//! Master-store synchronization (§IV-B Remark).
//!
//! "We can also deploy a master ResultStore on a dedicated server, which
//! periodically synchronizes the popular (i.e., frequently appeared)
//! results from different machines. […] the tags of underlying computations
//! are deterministic and only one version of result ciphertext […] needs to
//! be stored."

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use speed_wire::Message;

use crate::store::ResultStore;

/// Pulls entries with at least `min_hits` hits from `source` and merges
/// them into `target`. Returns how many entries the batch carried.
///
/// Duplicate tags are harmless: the target keeps its first version, and
/// eligible applications can decrypt either copy because both were produced
/// from the same `(func, m)`.
pub fn sync_once(source: &ResultStore, target: &ResultStore, min_hits: u64) -> usize {
    let batch = source.export_popular(min_hits);
    let count = batch.len();
    if count > 0 {
        target.handle(Message::SyncBatch(batch));
    }
    count
}

/// A background daemon that periodically syncs several machine-local
/// stores into a master store.
#[derive(Debug)]
pub struct SyncDaemon {
    stop: Arc<AtomicBool>,
    rounds: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl SyncDaemon {
    /// Spawns a daemon syncing each of `sources` into `master` every
    /// `interval`, selecting entries with at least `min_hits` hits.
    pub fn spawn(
        sources: Vec<Arc<ResultStore>>,
        master: Arc<ResultStore>,
        min_hits: u64,
        interval: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let rounds = Arc::new(AtomicU64::new(0));
        let stop_flag = Arc::clone(&stop);
        let rounds_counter = Arc::clone(&rounds);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                for source in &sources {
                    sync_once(source, &master, min_hits);
                }
                rounds_counter.fetch_add(1, Ordering::Relaxed);
                // Sleep in small slices so shutdown is responsive.
                let mut slept = Duration::ZERO;
                while slept < interval && !stop_flag.load(Ordering::Relaxed) {
                    let slice = Duration::from_millis(5).min(interval - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
            }
        });
        SyncDaemon { stop, rounds, handle: Some(handle) }
    }

    /// Number of completed sync rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Stops the daemon and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SyncDaemon {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use speed_enclave::{CostModel, Platform};
    use speed_wire::{AppId, CompTag, Record};

    fn new_store() -> Arc<ResultStore> {
        let platform = Platform::new(CostModel::no_sgx());
        Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap())
    }

    fn put_and_hit(store: &ResultStore, n: u8, hits: usize) {
        let tag = CompTag::from_bytes([n; 32]);
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag,
            record: Record {
                challenge: vec![n; 32],
                wrapped_key: [n; 16],
                nonce: [n; 12],
                boxed_result: vec![n; 24],
            },
        });
        for _ in 0..hits {
            store.handle(Message::GetRequest { app: AppId(1), tag });
        }
    }

    #[test]
    fn sync_once_moves_only_popular() {
        let source = new_store();
        let master = new_store();
        put_and_hit(&source, 1, 5);
        put_and_hit(&source, 2, 0);
        let moved = sync_once(&source, &master, 2);
        assert_eq!(moved, 1);
        let hit = master.handle(Message::GetRequest {
            app: AppId(9),
            tag: CompTag::from_bytes([1; 32]),
        });
        assert!(matches!(hit, Message::GetResponse(b) if b.found));
        let miss = master.handle(Message::GetRequest {
            app: AppId(9),
            tag: CompTag::from_bytes([2; 32]),
        });
        assert!(matches!(miss, Message::GetResponse(b) if !b.found));
    }

    #[test]
    fn sync_is_idempotent() {
        let source = new_store();
        let master = new_store();
        put_and_hit(&source, 1, 3);
        sync_once(&source, &master, 1);
        sync_once(&source, &master, 1);
        assert_eq!(master.stats().entries, 1);
    }

    #[test]
    fn daemon_syncs_multiple_sources() {
        let s1 = new_store();
        let s2 = new_store();
        let master = new_store();
        put_and_hit(&s1, 1, 2);
        put_and_hit(&s2, 2, 2);
        let daemon = SyncDaemon::spawn(
            vec![Arc::clone(&s1), Arc::clone(&s2)],
            Arc::clone(&master),
            1,
            Duration::from_millis(1),
        );
        // Wait for at least one full round.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while daemon.rounds() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        daemon.shutdown();
        assert_eq!(master.stats().entries, 2);
    }

    #[test]
    fn daemon_shutdown_is_prompt_despite_long_interval() {
        let daemon = SyncDaemon::spawn(
            vec![new_store()],
            new_store(),
            1,
            Duration::from_secs(3600),
        );
        // Let the daemon finish a round so it is deep in its hour-long
        // sleep when we ask it to stop.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while daemon.rounds() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let start = std::time::Instant::now();
        daemon.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "shutdown must interrupt the sleep, not wait out the interval"
        );
    }
}
