//! TCP front end for a [`ResultStore`].
//!
//! Deploys the store on a dedicated endpoint (the paper's two-machine setup,
//! §V-A). Each connection runs an attested handshake — the client sends its
//! quote, the server replies with its own — after which all messages travel
//! AES-GCM sealed inside length-prefixed frames.
//!
//! Handshake wire format (plaintext frames, authenticity provided by the
//! quotes themselves):
//!
//! 1. client → server: `client_quote` bytes (each side obtains its quote
//!    from the [`SessionAuthority`]'s attestation service on its own
//!    platform)
//! 2. server → client: `server_quote` bytes
//!
//! Both sides then derive the session key from the verified quote pair. In
//! a real deployment this is an attested TLS or SIGMA exchange; the
//! authority models the verifier role (see [`speed_wire::SessionAuthority`]).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use speed_enclave::attestation::{create_report, Quote, REPORT_DATA_LEN};
use speed_enclave::Platform;
use speed_telemetry::{names, Counter, Gauge};
use speed_wire::frame::{read_frame, write_frame};
use speed_wire::{from_bytes, to_bytes, Message, Role, SecureChannel, SessionAuthority};

use crate::store::ResultStore;
use crate::StoreError;

/// Configuration for the server's connection worker pool.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Maximum concurrently live connection workers. Connections arriving
    /// while the pool is saturated are accepted and immediately dropped
    /// (counted in [`PoolStats::rejected`]), so clients see a fast error
    /// instead of queueing behind a thread-per-connection pile-up.
    pub max_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { max_workers: 32 }
    }
}

/// Worker-pool counters, shared between the acceptor and the handle. The
/// telemetry handles mirror the atomics into the process-global registry
/// live, so a `MetricsRequest` served by any worker sees fresh pool
/// gauges without reaching back to the server handle.
#[derive(Debug)]
struct PoolCounters {
    active: AtomicU64,
    peak: AtomicU64,
    spawned: AtomicU64,
    rejected: AtomicU64,
    active_tm: Gauge,
    peak_tm: Gauge,
    spawned_tm: Counter,
    rejected_tm: Counter,
}

impl Default for PoolCounters {
    fn default() -> Self {
        let registry = speed_telemetry::global();
        PoolCounters {
            active: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            spawned: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            active_tm: registry.gauge(
                names::SERVER_WORKERS_ACTIVE,
                "Connection workers currently serving a client",
            ),
            peak_tm: registry.gauge(
                names::SERVER_WORKERS_PEAK,
                "High-water mark of concurrently live connection workers",
            ),
            spawned_tm: registry.counter(
                names::SERVER_WORKERS_SPAWNED_TOTAL,
                "Connection workers spawned over the server's lifetime",
            ),
            rejected_tm: registry.counter(
                names::SERVER_CONNECTIONS_REJECTED_TOTAL,
                "Connections dropped because the worker pool was saturated",
            ),
        }
    }
}

impl PoolCounters {
    /// Records the current live-worker count in both the atomic and the
    /// registry gauge.
    fn set_active(&self, live: u64) {
        self.active.store(live, Ordering::Relaxed);
        self.active_tm.set(live);
    }
}

/// A point-in-time snapshot of the worker pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers currently serving a connection.
    pub active: u64,
    /// High-water mark of concurrently live workers.
    pub peak: u64,
    /// Total workers spawned over the server's lifetime.
    pub spawned: u64,
    /// Connections dropped because the pool was saturated.
    pub rejected: u64,
}

/// A running TCP store server.
///
/// Dropping the handle signals shutdown and joins the acceptor thread.
#[derive(Debug)]
pub struct StoreServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    pool: Arc<PoolCounters>,
}

impl StoreServer {
    /// Spawns a server for `store` listening on `bind_addr` with the
    /// default worker pool (use port 0 for an ephemeral port; the bound
    /// address is available via [`addr`](StoreServer::addr)).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if binding fails.
    pub fn spawn(
        store: Arc<ResultStore>,
        platform: Arc<Platform>,
        authority: Arc<SessionAuthority>,
        bind_addr: &str,
    ) -> Result<Self, StoreError> {
        Self::spawn_with_config(
            store,
            platform,
            authority,
            bind_addr,
            ServerConfig::default(),
        )
    }

    /// Spawns a server with an explicit [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if binding fails.
    pub fn spawn_with_config(
        store: Arc<ResultStore>,
        platform: Arc<Platform>,
        authority: Arc<SessionAuthority>,
        bind_addr: &str,
        config: ServerConfig,
    ) -> Result<Self, StoreError> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = Arc::clone(&shutdown);
        let pool = Arc::new(PoolCounters::default());
        let pool_counters = Arc::clone(&pool);
        let max_workers = config.max_workers.max(1);

        let acceptor = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !shutdown_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        // Reap finished workers before counting capacity, so
                        // a long-lived server's handle list stays bounded by
                        // live connections instead of growing forever.
                        reap_finished(&mut workers, &pool_counters);
                        if workers.len() >= max_workers {
                            // Saturated: drop the connection right away. The
                            // client's handshake read fails fast rather than
                            // hanging in the accept backlog.
                            pool_counters.rejected.fetch_add(1, Ordering::Relaxed);
                            pool_counters.rejected_tm.inc();
                            drop(stream);
                            continue;
                        }
                        stream.set_nonblocking(false).ok();
                        stream.set_nodelay(true).ok();
                        // A short read timeout lets workers notice shutdown
                        // even while a client connection stays open idle.
                        stream
                            .set_read_timeout(Some(std::time::Duration::from_millis(50)))
                            .ok();
                        let store = Arc::clone(&store);
                        let platform = Arc::clone(&platform);
                        let authority = Arc::clone(&authority);
                        let worker_shutdown = Arc::clone(&shutdown_flag);
                        workers.push(std::thread::spawn(move || {
                            // Connection errors just drop the connection.
                            let _ = serve_connection(
                                stream,
                                &store,
                                &platform,
                                &authority,
                                &worker_shutdown,
                            );
                        }));
                        pool_counters.spawned.fetch_add(1, Ordering::Relaxed);
                        pool_counters.spawned_tm.inc();
                        let live = workers.len() as u64;
                        pool_counters.set_active(live);
                        pool_counters.peak.fetch_max(live, Ordering::Relaxed);
                        pool_counters
                            .peak_tm
                            .set(pool_counters.peak.load(Ordering::Relaxed));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        reap_finished(&mut workers, &pool_counters);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for worker in workers {
                let _ = worker.join();
            }
            pool_counters.set_active(0);
        });

        Ok(StoreServer { addr, shutdown, acceptor: Some(acceptor), pool })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current worker-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            active: self.pool.active.load(Ordering::Relaxed),
            peak: self.pool.peak.load(Ordering::Relaxed),
            spawned: self.pool.spawned.load(Ordering::Relaxed),
            rejected: self.pool.rejected.load(Ordering::Relaxed),
        }
    }

    /// Signals shutdown and waits for the acceptor to finish.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StoreServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Joins every worker whose connection already ended, keeping the handle
/// list (and thus the live thread count) bounded by open connections.
fn reap_finished(workers: &mut Vec<JoinHandle<()>>, pool: &PoolCounters) {
    let mut index = 0;
    while index < workers.len() {
        if workers[index].is_finished() {
            let handle = workers.swap_remove(index);
            let _ = handle.join();
        } else {
            index += 1;
        }
    }
    pool.set_active(workers.len() as u64);
}

/// Waits (with the stream's short read timeout) until data is readable,
/// the peer hung up, or shutdown was requested. Returns `Ok(true)` when a
/// frame is ready to read.
fn wait_readable(stream: &TcpStream, shutdown: &AtomicBool) -> Result<bool, StoreError> {
    let mut probe = [0u8; 1];
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(false);
        }
        match stream.peek(&mut probe) {
            Ok(0) => return Ok(false), // peer closed
            Ok(_) => return Ok(true),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e.into()),
        }
    }
}

const IDLE_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(50);
const FRAME_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

fn serve_connection(
    mut stream: TcpStream,
    store: &ResultStore,
    platform: &Platform,
    authority: &SessionAuthority,
    shutdown: &AtomicBool,
) -> Result<(), StoreError> {
    // Wait for the client's handshake frame, then read it with the longer
    // in-frame timeout (a peek-then-read pattern so the short idle timeout
    // can never truncate a frame mid-read).
    if !wait_readable(&stream, shutdown)? {
        return Ok(());
    }
    stream.set_read_timeout(Some(FRAME_TIMEOUT)).ok();
    let mut channel = server_handshake(&mut stream, store, platform, authority)?;
    stream.set_read_timeout(Some(IDLE_TIMEOUT)).ok();

    loop {
        if !wait_readable(&stream, shutdown)? {
            return Ok(());
        }
        stream.set_read_timeout(Some(FRAME_TIMEOUT)).ok();
        let sealed = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let request_bytes = channel
            .open_message(&sealed)
            .map_err(|e| StoreError::Protocol(e.to_string()))?;
        let request: Message = from_bytes(&request_bytes)
            .map_err(|e| StoreError::Protocol(e.to_string()))?;
        let response = store.handle(request);
        let sealed_response = channel.seal_message(&to_bytes(&response));
        write_frame(&mut stream, &sealed_response)?;
        stream.set_read_timeout(Some(IDLE_TIMEOUT)).ok();
    }
}

fn server_handshake(
    stream: &mut TcpStream,
    store: &ResultStore,
    platform: &Platform,
    authority: &SessionAuthority,
) -> Result<SecureChannel, StoreError> {
    let client_quote_bytes = read_frame(&mut *stream)?;
    let client_quote = Quote::from_bytes(&client_quote_bytes)
        .map_err(|e| StoreError::Protocol(e.to_string()))?;
    authority
        .service()
        .verify_quote(&client_quote)
        .map_err(|e| StoreError::Protocol(format!("client attestation: {e}")))?;

    let report_data = [0u8; REPORT_DATA_LEN];
    let server_report = create_report(platform, store.enclave(), &report_data);
    let server_quote = authority
        .service()
        .quote(platform, &server_report)
        .map_err(|e| StoreError::Protocol(format!("server attestation: {e}")))?;
    write_frame(&mut *stream, &server_quote.to_bytes())?;

    let key = authority
        .session_key(&client_quote, &server_quote)
        .map_err(|e| StoreError::Protocol(e.to_string()))?;
    Ok(SecureChannel::from_session_key(key, Role::Server))
}

/// Client-side connection to a [`StoreServer`]. Lives here (rather than in
/// `speed-core`) so the handshake logic stays in one module.
#[derive(Debug)]
pub struct TcpStoreClient {
    stream: TcpStream,
    channel: SecureChannel,
}

impl TcpStoreClient {
    /// Connects and runs the attested handshake.
    ///
    /// `identity` is the client enclave whose report is presented;
    /// `platform` hosts it; `authority` must be the same authority the
    /// server trusts.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on connection failure or
    /// [`StoreError::Protocol`] if attestation fails.
    pub fn connect(
        addr: SocketAddr,
        platform: &Platform,
        identity: &speed_enclave::Enclave,
        authority: &SessionAuthority,
    ) -> Result<Self, StoreError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        // Bound every read: a store that dies mid-frame (or hangs) must
        // surface as an error the resilience layer can degrade on, not as
        // a client blocked forever.
        stream.set_read_timeout(Some(FRAME_TIMEOUT)).ok();

        let report_data = [0u8; REPORT_DATA_LEN];
        let client_report = create_report(platform, identity, &report_data);
        let client_quote = authority
            .service()
            .quote(platform, &client_report)
            .map_err(|e| StoreError::Protocol(e.to_string()))?;
        write_frame(&mut stream, &client_quote.to_bytes())?;

        let server_quote_bytes = read_frame(&mut stream)?;
        let server_quote = Quote::from_bytes(&server_quote_bytes)
            .map_err(|e| StoreError::Protocol(e.to_string()))?;
        authority
            .service()
            .verify_quote(&server_quote)
            .map_err(|e| StoreError::Protocol(format!("server attestation: {e}")))?;

        let key = authority
            .session_key(&client_quote, &server_quote)
            .map_err(|e| StoreError::Protocol(e.to_string()))?;
        Ok(TcpStoreClient {
            stream,
            channel: SecureChannel::from_session_key(key, Role::Client),
        })
    }

    /// Sends `request` and waits for the response (synchronous, like the
    /// paper's prototype).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on stream failure or
    /// [`StoreError::Protocol`] on channel/codec violations.
    pub fn roundtrip(&mut self, request: &Message) -> Result<Message, StoreError> {
        let sealed = self.channel.seal_message(&to_bytes(request));
        write_frame(&mut self.stream, &sealed)?;
        let sealed_response = read_frame(&mut self.stream)?;
        let response_bytes = self
            .channel
            .open_message(&sealed_response)
            .map_err(|e| StoreError::Protocol(e.to_string()))?;
        from_bytes(&response_bytes).map_err(|e| StoreError::Protocol(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use speed_enclave::CostModel;
    use speed_wire::{AppId, CompTag, Record};

    fn setup() -> (Arc<Platform>, Arc<ResultStore>, Arc<SessionAuthority>, StoreServer) {
        let platform = Platform::new(CostModel::default_sgx());
        let store =
            Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
        let authority = Arc::new(SessionAuthority::with_seed(11));
        let server = StoreServer::spawn(
            Arc::clone(&store),
            Arc::clone(&platform),
            Arc::clone(&authority),
            "127.0.0.1:0",
        )
        .unwrap();
        (platform, store, authority, server)
    }

    fn sample_record() -> Record {
        Record {
            challenge: vec![9u8; 32],
            wrapped_key: [8u8; 16],
            nonce: [7u8; 12],
            boxed_result: vec![6u8; 40],
        }
    }

    #[test]
    fn tcp_put_get_roundtrip() {
        let (platform, _store, authority, server) = setup();
        let app_enclave = platform.create_enclave(b"tcp-client-app").unwrap();
        let mut client =
            TcpStoreClient::connect(server.addr(), &platform, &app_enclave, &authority)
                .unwrap();

        let tag = CompTag::from_bytes([5u8; 32]);
        let miss = client.roundtrip(&Message::GetRequest { app: AppId(1), tag }).unwrap();
        assert!(matches!(miss, Message::GetResponse(b) if !b.found));

        let put = client
            .roundtrip(&Message::PutRequest {
                app: AppId(1),
                tag,
                record: sample_record(),
            })
            .unwrap();
        assert!(matches!(put, Message::PutResponse(b) if b.accepted));

        let hit = client.roundtrip(&Message::GetRequest { app: AppId(1), tag }).unwrap();
        match hit {
            Message::GetResponse(body) => {
                assert!(body.found);
                assert_eq!(body.record.unwrap(), sample_record());
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn multiple_clients_share_state() {
        let (platform, _store, authority, server) = setup();
        let e1 = platform.create_enclave(b"client-1").unwrap();
        let e2 = platform.create_enclave(b"client-2").unwrap();
        let mut c1 =
            TcpStoreClient::connect(server.addr(), &platform, &e1, &authority).unwrap();
        let mut c2 =
            TcpStoreClient::connect(server.addr(), &platform, &e2, &authority).unwrap();

        let tag = CompTag::from_bytes([1u8; 32]);
        c1.roundtrip(&Message::PutRequest {
            app: AppId(1),
            tag,
            record: sample_record(),
        })
        .unwrap();
        let hit = c2.roundtrip(&Message::GetRequest { app: AppId(2), tag }).unwrap();
        assert!(matches!(hit, Message::GetResponse(b) if b.found));
        server.shutdown();
    }

    #[test]
    fn stats_over_tcp() {
        let (platform, _store, authority, server) = setup();
        let enclave = platform.create_enclave(b"stats-client").unwrap();
        let mut client =
            TcpStoreClient::connect(server.addr(), &platform, &enclave, &authority)
                .unwrap();
        let tag = CompTag::from_bytes([2u8; 32]);
        client
            .roundtrip(&Message::PutRequest {
                app: AppId(1),
                tag,
                record: sample_record(),
            })
            .unwrap();
        let stats = client.roundtrip(&Message::StatsRequest).unwrap();
        assert!(
            matches!(stats, Message::StatsResponse(b) if b.puts == 1 && b.entries == 1)
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_idle_connections_promptly() {
        let (platform, _store, authority, server) = setup();
        let e1 = platform.create_enclave(b"idle-1").unwrap();
        let e2 = platform.create_enclave(b"idle-2").unwrap();
        let mut c1 =
            TcpStoreClient::connect(server.addr(), &platform, &e1, &authority).unwrap();
        let mut c2 =
            TcpStoreClient::connect(server.addr(), &platform, &e2, &authority).unwrap();
        // Both connections are now idle between requests — the workers sit
        // in the 50ms read-timeout poll loop.
        c1.roundtrip(&Message::StatsRequest).unwrap();
        c2.roundtrip(&Message::StatsRequest).unwrap();
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "shutdown must join idle workers within a few poll intervals, \
             took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn client_sees_error_when_server_dies_between_requests() {
        let (platform, _store, authority, server) = setup();
        let enclave = platform.create_enclave(b"orphan-client").unwrap();
        let mut client =
            TcpStoreClient::connect(server.addr(), &platform, &enclave, &authority)
                .unwrap();
        client.roundtrip(&Message::StatsRequest).unwrap();

        server.shutdown();
        let start = std::time::Instant::now();
        let result = client.roundtrip(&Message::GetRequest {
            app: AppId(1),
            tag: CompTag::from_bytes([4u8; 32]),
        });
        assert!(result.is_err(), "round-trip against a dead server must error");
        assert!(
            start.elapsed() < FRAME_TIMEOUT + std::time::Duration::from_secs(1),
            "the error must arrive within the frame timeout, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn connection_churn_keeps_worker_count_bounded() {
        // Regression for the worker-handle leak: the acceptor used to push
        // a JoinHandle per connection and only join them at shutdown, so a
        // connection-churning client grew the thread list without bound.
        let (platform, _store, authority, server) = setup();
        let enclave = platform.create_enclave(b"churn-client").unwrap();
        let churn = 40usize;
        for _ in 0..churn {
            let mut client =
                TcpStoreClient::connect(server.addr(), &platform, &enclave, &authority)
                    .unwrap();
            client.roundtrip(&Message::StatsRequest).unwrap();
            // Connection drops here; its worker exits on the next poll.
        }
        // Give the acceptor a few poll intervals to reap the last workers.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let stats = server.pool_stats();
            if stats.active == 0 || std::time::Instant::now() > deadline {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let stats = server.pool_stats();
        assert_eq!(stats.spawned, churn as u64, "every connection got a worker");
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.active, 0, "all workers reaped after churn");
        assert!(
            stats.peak < churn as u64 / 2,
            "sequential churn must reuse pool capacity, peak was {} for {churn} \
             connections",
            stats.peak
        );
        server.shutdown();
    }

    #[test]
    fn saturated_pool_rejects_new_connections() {
        let platform = Platform::new(CostModel::default_sgx());
        let store =
            Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
        let authority = Arc::new(SessionAuthority::with_seed(11));
        let server = StoreServer::spawn_with_config(
            Arc::clone(&store),
            Arc::clone(&platform),
            Arc::clone(&authority),
            "127.0.0.1:0",
            ServerConfig { max_workers: 1 },
        )
        .unwrap();
        let e1 = platform.create_enclave(b"holder").unwrap();
        let mut holder =
            TcpStoreClient::connect(server.addr(), &platform, &e1, &authority).unwrap();
        holder.roundtrip(&Message::StatsRequest).unwrap();

        // The pool's one slot is held open; the next connection must be
        // dropped fast rather than queued behind it.
        let e2 = platform.create_enclave(b"overflow").unwrap();
        let overflow = TcpStoreClient::connect(server.addr(), &platform, &e2, &authority);
        let failed = match overflow {
            Err(_) => true,
            Ok(mut client) => client.roundtrip(&Message::StatsRequest).is_err(),
        };
        assert!(failed, "overflow connection must not be served");
        assert!(server.pool_stats().rejected >= 1);

        // The held connection still works, and capacity frees on disconnect.
        holder.roundtrip(&Message::StatsRequest).unwrap();
        drop(holder);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let served = loop {
            let attempt =
                TcpStoreClient::connect(server.addr(), &platform, &e2, &authority)
                    .ok()
                    .and_then(|mut client| client.roundtrip(&Message::StatsRequest).ok());
            if attempt.is_some() {
                break true;
            }
            if std::time::Instant::now() > deadline {
                break false;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        assert!(served, "slot must free after the holder disconnects");
        server.shutdown();
    }

    #[test]
    fn wrong_authority_fails_handshake() {
        let (platform, _store, _authority, server) = setup();
        let rogue_authority = SessionAuthority::with_seed(999);
        let enclave = platform.create_enclave(b"rogue").unwrap();
        // The server rejects the rogue quote and drops the connection, so
        // either the handshake or the first roundtrip fails.
        let result =
            TcpStoreClient::connect(server.addr(), &platform, &enclave, &rogue_authority);
        match result {
            Err(_) => {}
            Ok(mut client) => {
                let tag = CompTag::from_bytes([3u8; 32]);
                assert!(client
                    .roundtrip(&Message::GetRequest { app: AppId(1), tag })
                    .is_err());
            }
        }
        server.shutdown();
    }
}
