//! TCP front end for a [`ResultStore`]: a readiness-driven event loop
//! with switchless call rings.
//!
//! Deploys the store on a dedicated endpoint (the paper's two-machine
//! setup, §V-A). Each connection runs an attested handshake — the client
//! sends its quote, the server replies with its own — after which all
//! messages travel AES-GCM sealed inside length-prefixed frames.
//!
//! # Architecture
//!
//! A small fixed set of I/O threads multiplexes every connection through
//! poll(2) readiness notifications (the `poller` module). Each connection
//! carries a state machine (handshake → established → closing) with
//! non-blocking partial-frame reader/writer buffers
//! ([`speed_wire::frame::FrameReader`]/[`FrameWriter`]) and a per-frame
//! deadline, so a stalled or hostile peer can pin neither a thread nor a
//! connection slot. The thread budget is O(`io_threads`), not
//! O(connections).
//!
//! Hot-path requests (GET/PUT/batch) take the *switchless* path: the I/O
//! thread pushes the decoded request onto its lock-free ring and a
//! resident in-enclave worker serves it without any ECALL/OCALL world
//! switch (the `switchless` module). Cold requests — and hot ones that find
//! the ring full — fall back to the classic ECALL path inline on the I/O
//! thread.
//!
//! Handshake wire format (plaintext frames, authenticity provided by the
//! quotes themselves):
//!
//! 1. client → server: `client_quote` bytes (each side obtains its quote
//!    from the [`SessionAuthority`]'s attestation service on its own
//!    platform)
//! 2. server → client: `server_quote` bytes — **or** a plaintext
//!    [`Message::Error`] busy frame when the connection budget is
//!    saturated, so clients can tell "busy" from "attestation failed"
//!    and retry.
//!
//! Both sides then derive the session key from the verified quote pair.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use speed_enclave::attestation::{create_report, Quote, REPORT_DATA_LEN};
use speed_enclave::Platform;
use speed_telemetry::{names, Counter, Gauge};
use speed_wire::frame::{
    read_frame, write_frame, FrameProgress, FrameReader, FrameWriter,
};
use speed_wire::{from_bytes, to_bytes, Message, Role, SecureChannel, SessionAuthority};

use crate::poller::{poll, PollFd, WakePipe, POLLIN, POLLOUT};
use crate::store::ResultStore;
use crate::switchless::SwitchlessEngine;
use crate::StoreError;

/// Reason string carried by the plaintext busy frame a saturated server
/// sends before closing (clients map it to [`StoreError::Busy`]).
pub const SERVER_BUSY_REASON: &str = "server busy: connection budget saturated";

/// How long a busy-rejected connection may take to drain its busy frame
/// before the server gives up and closes it anyway.
const BUSY_LINGER: Duration = Duration::from_secs(1);

/// Default per-frame deadline (also bounds the handshake and one
/// switchless round-trip).
const DEFAULT_FRAME_TIMEOUT: Duration = Duration::from_secs(5);

/// Event-loop poll period when no deadline is nearer — a safety net only;
/// wake pipes pop the loop out of poll for shutdown, routed connections,
/// and switchless responses.
const IDLE_POLL: Duration = Duration::from_millis(250);

/// Configuration for the server's event loop and switchless rings.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Event-loop threads multiplexing connections. The server's thread
    /// budget is `io_threads` (+ as many switchless workers) regardless
    /// of connection count.
    pub io_threads: usize,
    /// Maximum concurrently open connections. Beyond the budget, new
    /// connections receive a plaintext busy frame and are closed
    /// (counted in [`ServerStats::rejected`]).
    pub max_connections: usize,
    /// Serve hot-path requests via switchless rings (zero world switches)
    /// instead of per-request ECALLs.
    pub switchless: bool,
    /// Slots per switchless request/response ring (per I/O thread).
    pub ring_slots: usize,
    /// Deadline for completing one frame (and the handshake). A peer
    /// stalling mid-frame longer than this is disconnected, so a
    /// slow-loris client cannot pin a connection slot.
    pub frame_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            io_threads: 2,
            max_connections: 1024,
            switchless: true,
            ring_slots: 128,
            frame_timeout: DEFAULT_FRAME_TIMEOUT,
        }
    }
}

/// A point-in-time snapshot of one server's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections currently open.
    pub active: u64,
    /// High-water mark of concurrently open connections.
    pub peak: u64,
    /// Connections accepted and served over the server's lifetime.
    pub accepted: u64,
    /// Connections refused with a busy frame (budget saturated).
    pub rejected: u64,
    /// Connections dropped on a protocol violation.
    pub protocol_errors: u64,
    /// Connections dropped by the per-frame deadline.
    pub frame_timeouts: u64,
    /// Requests served via the switchless rings.
    pub switchless_requests: u64,
    /// Responses drained from the switchless rings.
    pub switchless_responses: u64,
    /// Hot-path requests that fell back to the classic ECALL path.
    pub switchless_fallbacks: u64,
}

/// Process-unique server instance ids for the `server` telemetry label —
/// two servers in one process must never share (and stomp) a series.
static SERVER_INSTANCE: AtomicU64 = AtomicU64::new(0);

/// Per-server counters, mirrored live into per-instance-labelled
/// registry series so a `MetricsRequest` served by any thread sees fresh
/// values.
#[derive(Debug)]
struct ServerCounters {
    active: AtomicU64,
    peak: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    protocol_errors: AtomicU64,
    frame_timeouts: AtomicU64,
    switchless_requests: AtomicU64,
    switchless_responses: AtomicU64,
    switchless_fallbacks: AtomicU64,
    active_tm: Gauge,
    peak_tm: Gauge,
    accepted_tm: Counter,
    rejected_tm: Counter,
    protocol_errors_tm: Counter,
    frame_timeouts_tm: Counter,
    switchless_requests_tm: Counter,
    switchless_responses_tm: Counter,
    switchless_fallbacks_tm: Counter,
}

impl ServerCounters {
    fn register(instance: u64, io_threads: usize) -> Self {
        let registry = speed_telemetry::global();
        let id = instance.to_string();
        let labels: &[(&str, &str)] = &[("server", &id)];
        registry
            .gauge_with(
                names::SERVER_IO_THREADS,
                "I/O event-loop threads owned by one server",
                labels,
            )
            .set(io_threads as u64);
        ServerCounters {
            active: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            frame_timeouts: AtomicU64::new(0),
            switchless_requests: AtomicU64::new(0),
            switchless_responses: AtomicU64::new(0),
            switchless_fallbacks: AtomicU64::new(0),
            active_tm: registry.gauge_with(
                names::SERVER_CONNECTIONS_ACTIVE,
                "Connections currently open",
                labels,
            ),
            peak_tm: registry.gauge_with(
                names::SERVER_CONNECTIONS_PEAK,
                "High-water mark of concurrently open connections",
                labels,
            ),
            accepted_tm: registry.counter_with(
                names::SERVER_CONNECTIONS_ACCEPTED_TOTAL,
                "Connections accepted over the server's lifetime",
                labels,
            ),
            rejected_tm: registry.counter_with(
                names::SERVER_CONNECTIONS_REJECTED_TOTAL,
                "Connections refused with a busy frame (budget saturated)",
                labels,
            ),
            protocol_errors_tm: registry.counter_with(
                names::SERVER_PROTOCOL_ERRORS_TOTAL,
                "Connections dropped on a protocol violation",
                labels,
            ),
            frame_timeouts_tm: registry.counter_with(
                names::SERVER_FRAME_TIMEOUTS_TOTAL,
                "Connections dropped by the per-frame deadline",
                labels,
            ),
            switchless_requests_tm: registry.counter_with(
                names::SWITCHLESS_REQUESTS_TOTAL,
                "Requests submitted to a switchless ring",
                labels,
            ),
            switchless_responses_tm: registry.counter_with(
                names::SWITCHLESS_RESPONSES_TOTAL,
                "Responses drained from a switchless ring",
                labels,
            ),
            switchless_fallbacks_tm: registry.counter_with(
                names::SWITCHLESS_FALLBACKS_TOTAL,
                "Hot-path requests that fell back to the ECALL path",
                labels,
            ),
        }
    }

    fn conn_opened(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.accepted_tm.inc();
        let live = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        self.active_tm.set(live);
        let peak = self.peak.fetch_max(live, Ordering::Relaxed).max(live);
        self.peak_tm.set(peak);
    }

    fn conn_closed(&self) {
        let live = self.active.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
        self.active_tm.set(live);
    }

    fn reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.rejected_tm.inc();
    }

    fn protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
        self.protocol_errors_tm.inc();
    }

    fn frame_timeout(&self) {
        self.frame_timeouts.fetch_add(1, Ordering::Relaxed);
        self.frame_timeouts_tm.inc();
    }

    fn switchless_request(&self) {
        self.switchless_requests.fetch_add(1, Ordering::Relaxed);
        self.switchless_requests_tm.inc();
    }

    fn switchless_response(&self) {
        self.switchless_responses.fetch_add(1, Ordering::Relaxed);
        self.switchless_responses_tm.inc();
    }

    fn switchless_fallback(&self) {
        self.switchless_fallbacks.fetch_add(1, Ordering::Relaxed);
        self.switchless_fallbacks_tm.inc();
    }
}

/// State shared by every I/O thread of one server.
#[derive(Debug)]
struct Shared {
    store: Arc<ResultStore>,
    platform: Arc<Platform>,
    authority: Arc<SessionAuthority>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
    engine: Option<Arc<SwitchlessEngine>>,
    /// Connections the acceptor routed to each I/O thread.
    inboxes: Vec<Mutex<VecDeque<TcpStream>>>,
    wakers: Vec<Arc<WakePipe>>,
}

/// A running TCP store server.
///
/// Dropping the handle signals shutdown and joins every thread.
#[derive(Debug)]
pub struct StoreServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    io_handles: Vec<JoinHandle<()>>,
    engine: Option<Arc<SwitchlessEngine>>,
    wakers: Vec<Arc<WakePipe>>,
    counters: Arc<ServerCounters>,
}

impl StoreServer {
    /// Spawns a server for `store` listening on `bind_addr` with the
    /// default [`ServerConfig`] (use port 0 for an ephemeral port; the
    /// bound address is available via [`addr`](StoreServer::addr)).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if binding fails.
    pub fn spawn(
        store: Arc<ResultStore>,
        platform: Arc<Platform>,
        authority: Arc<SessionAuthority>,
        bind_addr: &str,
    ) -> Result<Self, StoreError> {
        Self::spawn_with_config(
            store,
            platform,
            authority,
            bind_addr,
            ServerConfig::default(),
        )
    }

    /// Spawns a server with an explicit [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if binding fails.
    pub fn spawn_with_config(
        store: Arc<ResultStore>,
        platform: Arc<Platform>,
        authority: Arc<SessionAuthority>,
        bind_addr: &str,
        mut config: ServerConfig,
    ) -> Result<Self, StoreError> {
        config.io_threads = config.io_threads.max(1);
        config.max_connections = config.max_connections.max(1);
        config.ring_slots = config.ring_slots.max(1);
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let instance = SERVER_INSTANCE.fetch_add(1, Ordering::Relaxed);
        let counters = Arc::new(ServerCounters::register(instance, config.io_threads));
        let wakers: Vec<Arc<WakePipe>> = (0..config.io_threads)
            .map(|_| WakePipe::new().map(Arc::new))
            .collect::<Result<_, _>>()?;
        let engine = config.switchless.then(|| {
            Arc::new(SwitchlessEngine::start(
                Arc::clone(&store),
                &wakers,
                config.ring_slots,
                Arc::clone(&shutdown),
            ))
        });
        let shared = Arc::new(Shared {
            store,
            platform,
            authority,
            config,
            shutdown: Arc::clone(&shutdown),
            counters: Arc::clone(&counters),
            engine: engine.clone(),
            inboxes: (0..config.io_threads)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            wakers: wakers.clone(),
        });

        let io_handles = (0..config.io_threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                // The listener lives on thread 0; it routes accepted
                // connections round-robin across all I/O threads.
                let listener = (index == 0).then(|| listener.try_clone()).transpose()?;
                std::thread::Builder::new()
                    .name(format!("speed-io-{index}"))
                    .spawn(move || IoThread::new(index, shared, listener).run())
                    .map_err(StoreError::from)
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(StoreServer { addr, shutdown, io_handles, engine, wakers, counters })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            active: self.counters.active.load(Ordering::Relaxed),
            peak: self.counters.peak.load(Ordering::Relaxed),
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            frame_timeouts: self.counters.frame_timeouts.load(Ordering::Relaxed),
            switchless_requests: self
                .counters
                .switchless_requests
                .load(Ordering::Relaxed),
            switchless_responses: self
                .counters
                .switchless_responses
                .load(Ordering::Relaxed),
            switchless_fallbacks: self
                .counters
                .switchless_fallbacks
                .load(Ordering::Relaxed),
        }
    }

    /// Total threads this server runs (I/O threads + switchless workers).
    /// Constant for the server's lifetime — the budget the churn test
    /// holds the server to, independent of connection count.
    pub fn thread_count(&self) -> usize {
        self.io_handles.len()
            + self.engine.as_ref().map_or(0, |engine| engine.worker_count())
    }

    /// Signals shutdown and waits for every thread to finish.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for waker in &self.wakers {
            waker.wake();
        }
        for handle in self.io_handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(engine) = &self.engine {
            engine.stop();
        }
    }
}

impl Drop for StoreServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Connection lifecycle states.
#[derive(Debug)]
enum ConnState {
    /// Waiting for the client's quote frame.
    Handshake,
    /// Attested; all frames are sealed on this channel.
    Open(Box<SecureChannel>),
    /// Draining a final plaintext frame (busy reject), then closing.
    Closing,
}

/// Why a connection is being closed (drives which counter ticks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CloseReason {
    /// Clean close: peer hung up, busy frame drained, or I/O error.
    Normal,
    /// Protocol violation (bad quote, bad seal, bad frame).
    Protocol,
    /// Per-frame deadline expired.
    Deadline,
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    state: ConnState,
    reader: FrameReader,
    writer: FrameWriter,
    /// Armed while a frame (or the handshake, or a switchless round-trip)
    /// is in progress; expiry closes the connection.
    deadline: Option<Instant>,
    /// A switchless request is in flight — reads pause until the response
    /// comes back so request/response framing stays ordered.
    inflight: bool,
    /// Generation guard for ring tokens: a response for a closed
    /// connection must not reach the slot's next tenant.
    generation: u32,
    /// Whether this connection occupies the connection budget (busy
    /// rejects do not).
    counted: bool,
}

/// One event-loop thread: owns a slab of connections, its wake pipe, its
/// switchless lane, and (thread 0 only) the listener.
struct IoThread {
    index: usize,
    shared: Arc<Shared>,
    listener: Option<TcpListener>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u32,
    /// Round-robin cursor for routing accepted connections (thread 0).
    route_next: usize,
}

/// What a pollfd entry refers to.
#[derive(Clone, Copy)]
enum PollSource {
    Waker,
    Listener,
    Conn(usize),
}

impl IoThread {
    fn new(index: usize, shared: Arc<Shared>, listener: Option<TcpListener>) -> Self {
        IoThread {
            index,
            shared,
            listener,
            conns: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
            route_next: 0,
        }
    }

    fn run(mut self) {
        let waker = Arc::clone(&self.shared.wakers[self.index]);
        let mut fds: Vec<PollFd> = Vec::new();
        let mut sources: Vec<PollSource> = Vec::new();
        while !self.shared.shutdown.load(Ordering::Relaxed) {
            fds.clear();
            sources.clear();
            fds.push(PollFd::new(waker.poll_fd(), POLLIN));
            sources.push(PollSource::Waker);
            if let Some(listener) = &self.listener {
                fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
                sources.push(PollSource::Listener);
            }
            for (slot, conn) in self.conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                let mut events = 0i16;
                // While a switchless response is pending the connection is
                // write-only; POLLERR/POLLHUP are always reported
                // regardless. Closing connections stay readable so inbound
                // bytes are discarded — unread data at close would turn
                // into an RST that destroys the in-flight busy frame.
                if !conn.inflight {
                    events |= POLLIN;
                }
                if conn.writer.has_pending() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                sources.push(PollSource::Conn(slot));
            }

            let _ = poll(&mut fds, self.poll_timeout_ms());
            if self.shared.shutdown.load(Ordering::Relaxed) {
                break;
            }
            waker.drain();
            self.drain_inbox();
            for entry in 0..fds.len() {
                let fd = fds[entry];
                if fd.revents == 0 {
                    continue;
                }
                match sources[entry] {
                    PollSource::Waker => {}
                    PollSource::Listener => self.accept_ready(),
                    PollSource::Conn(slot) => {
                        // A slot freed earlier in this sweep may have been
                        // re-used by an accept; the fd tells them apart.
                        let current = self
                            .conns
                            .get(slot)
                            .and_then(|c| c.as_ref())
                            .map(|c| c.stream.as_raw_fd());
                        if current != Some(fd.fd) {
                            continue;
                        }
                        if fd.writable() {
                            self.flush_writer(slot);
                        }
                        if self.conns[slot].is_some() && fd.readable() {
                            self.handle_readable(slot);
                        }
                    }
                }
            }
            self.drain_switchless_responses();
            self.expire_deadlines();
        }
        // Account every still-open connection before the thread exits so
        // the active gauge lands on zero.
        for conn in self.conns.iter().flatten() {
            if conn.counted {
                self.shared.counters.conn_closed();
            }
        }
    }

    /// The nearest deadline bounds the poll sleep; wake pipes cover every
    /// other event source.
    fn poll_timeout_ms(&self) -> i32 {
        let nearest = self.conns.iter().flatten().filter_map(|conn| conn.deadline).min();
        let cap = match nearest {
            Some(deadline) => {
                deadline.saturating_duration_since(Instant::now()).min(IDLE_POLL)
            }
            None => IDLE_POLL,
        };
        // +1 rounds sub-millisecond remainders up so expiry checks run
        // after the deadline, not busily just before it.
        (cap.as_millis() as i32).saturating_add(1)
    }

    fn drain_inbox(&mut self) {
        loop {
            let stream = {
                let mut inbox = self.shared.inboxes[self.index]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                inbox.pop_front()
            };
            match stream {
                Some(stream) => {
                    self.install(stream, true);
                }
                None => break,
            }
        }
    }

    fn accept_ready(&mut self) {
        let io_threads = self.shared.config.io_threads;
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let active = self.shared.counters.active.load(Ordering::Relaxed);
                    if active >= self.shared.config.max_connections as u64 {
                        self.busy_reject(stream);
                        continue;
                    }
                    self.shared.counters.conn_opened();
                    let target = self.route_next % io_threads;
                    self.route_next = self.route_next.wrapping_add(1);
                    if target == self.index {
                        self.install(stream, true);
                    } else {
                        self.shared.inboxes[target]
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .push_back(stream);
                        self.shared.wakers[target].wake();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Queues the plaintext busy frame and keeps the connection just long
    /// enough to drain it — the client gets a definite "busy, retry"
    /// instead of an unexplained reset.
    fn busy_reject(&mut self, stream: TcpStream) {
        self.shared.counters.reject();
        let slot = self.install(stream, false);
        if let Some(conn) = self.conns[slot].as_mut() {
            conn.state = ConnState::Closing;
            conn.deadline = Some(Instant::now() + BUSY_LINGER);
            let busy = to_bytes(&Message::Error(SERVER_BUSY_REASON.to_string()));
            if conn.writer.queue(&busy).is_err() {
                self.close(slot, CloseReason::Normal);
                return;
            }
            self.flush_writer(slot);
        }
    }

    fn install(&mut self, stream: TcpStream, counted: bool) -> usize {
        let _ = stream.set_nonblocking(true);
        self.next_generation = self.next_generation.wrapping_add(1);
        let conn = Conn {
            stream,
            state: ConnState::Handshake,
            reader: FrameReader::new(),
            writer: FrameWriter::new(),
            // The handshake must complete within the frame deadline.
            deadline: Some(Instant::now() + self.shared.config.frame_timeout),
            inflight: false,
            generation: self.next_generation,
            counted,
        };
        match self.free.pop() {
            Some(slot) => {
                self.conns[slot] = Some(conn);
                slot
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        }
    }

    fn close(&mut self, slot: usize, reason: CloseReason) {
        let Some(conn) = self.conns[slot].take() else { return };
        self.free.push(slot);
        if conn.counted {
            self.shared.counters.conn_closed();
        }
        match reason {
            CloseReason::Normal => {}
            CloseReason::Protocol => self.shared.counters.protocol_error(),
            CloseReason::Deadline => self.shared.counters.frame_timeout(),
        }
    }

    fn handle_readable(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].as_ref() {
            if matches!(conn.state, ConnState::Closing) {
                self.drain_closing(slot);
                return;
            }
        }
        loop {
            let progress = {
                let Some(conn) = self.conns[slot].as_mut() else { return };
                if conn.inflight || matches!(conn.state, ConnState::Closing) {
                    return;
                }
                conn.reader.poll(&mut conn.stream)
            };
            match progress {
                Ok(FrameProgress::Frame(frame)) => {
                    if let Some(conn) = self.conns[slot].as_mut() {
                        conn.deadline = None;
                    }
                    if !self.dispatch(slot, frame) {
                        return;
                    }
                }
                Ok(FrameProgress::Pending) => {
                    let Some(conn) = self.conns[slot].as_mut() else { return };
                    // Arm the per-frame deadline the moment a frame is
                    // partially read: a slow-loris peer holding one header
                    // byte gets `frame_timeout`, not forever.
                    if conn.reader.mid_frame() && conn.deadline.is_none() {
                        conn.deadline =
                            Some(Instant::now() + self.shared.config.frame_timeout);
                    }
                    return;
                }
                Ok(FrameProgress::Closed) => {
                    self.close(slot, CloseReason::Normal);
                    return;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::InvalidData
                            | std::io::ErrorKind::UnexpectedEof
                    ) =>
                {
                    // Oversized declared length or mid-frame truncation.
                    self.close(slot, CloseReason::Protocol);
                    return;
                }
                Err(_) => {
                    self.close(slot, CloseReason::Normal);
                    return;
                }
            }
        }
    }

    /// Processes one complete frame. Returns false when the connection
    /// was closed.
    fn dispatch(&mut self, slot: usize, frame: Vec<u8>) -> bool {
        let Some(conn) = self.conns[slot].as_mut() else { return false };
        match &mut conn.state {
            ConnState::Handshake => self.finish_handshake(slot, &frame),
            ConnState::Open(channel) => {
                let request_bytes = match channel.open_message(&frame) {
                    Ok(bytes) => bytes,
                    Err(_) => {
                        self.close(slot, CloseReason::Protocol);
                        return false;
                    }
                };
                let request: Message = match from_bytes(&request_bytes) {
                    Ok(message) => message,
                    Err(_) => {
                        self.close(slot, CloseReason::Protocol);
                        return false;
                    }
                };
                self.serve_request(slot, request)
            }
            ConnState::Closing => true,
        }
    }

    fn finish_handshake(&mut self, slot: usize, frame: &[u8]) -> bool {
        let shared = Arc::clone(&self.shared);
        let handshake = (|| -> Result<(SecureChannel, Vec<u8>), String> {
            let client_quote = Quote::from_bytes(frame).map_err(|e| e.to_string())?;
            shared
                .authority
                .service()
                .verify_quote(&client_quote)
                .map_err(|e| format!("client attestation: {e}"))?;
            let report_data = [0u8; REPORT_DATA_LEN];
            let server_report =
                create_report(&shared.platform, shared.store.enclave(), &report_data);
            let server_quote = shared
                .authority
                .service()
                .quote(&shared.platform, &server_report)
                .map_err(|e| format!("server attestation: {e}"))?;
            let key = shared
                .authority
                .session_key(&client_quote, &server_quote)
                .map_err(|e| e.to_string())?;
            Ok((
                SecureChannel::from_session_key(key, Role::Server),
                server_quote.to_bytes(),
            ))
        })();
        match handshake {
            Ok((channel, quote_bytes)) => {
                let Some(conn) = self.conns[slot].as_mut() else { return false };
                conn.state = ConnState::Open(Box::new(channel));
                conn.deadline = None;
                if conn.writer.queue(&quote_bytes).is_err() {
                    self.close(slot, CloseReason::Normal);
                    return false;
                }
                self.flush_writer(slot);
                self.conns[slot].is_some()
            }
            Err(_) => {
                self.close(slot, CloseReason::Protocol);
                false
            }
        }
    }

    /// Routes a decoded request: hot-path ops ride the switchless ring,
    /// everything else (or a full ring) takes the classic inline path.
    fn serve_request(&mut self, slot: usize, request: Message) -> bool {
        let hot = matches!(
            request,
            Message::GetRequest { .. }
                | Message::PutRequest { .. }
                | Message::BatchRequest { .. }
        );
        let engine = self.shared.engine.clone();
        if hot {
            if let Some(engine) = engine {
                let Some(conn) = self.conns[slot].as_mut() else { return false };
                let token = ((slot as u64) << 32) | u64::from(conn.generation);
                match engine.try_submit(self.index, token, request) {
                    Ok(()) => {
                        self.shared.counters.switchless_request();
                        conn.inflight = true;
                        // Bounds the switchless round-trip: if the worker
                        // dies, the connection times out instead of
                        // hanging forever.
                        conn.deadline =
                            Some(Instant::now() + self.shared.config.frame_timeout);
                        return true;
                    }
                    Err(request) => {
                        self.shared.counters.switchless_fallback();
                        let response = self.shared.store.handle(request);
                        return self.respond(slot, &response);
                    }
                }
            }
        }
        let response = self.shared.store.handle(request);
        self.respond(slot, &response)
    }

    /// Seals and queues a response frame. Returns false when the
    /// connection was closed.
    fn respond(&mut self, slot: usize, response: &Message) -> bool {
        let Some(conn) = self.conns[slot].as_mut() else { return false };
        let ConnState::Open(channel) = &mut conn.state else { return false };
        let sealed = channel.seal_message(&to_bytes(response));
        if conn.writer.queue(&sealed).is_err() {
            self.close(slot, CloseReason::Normal);
            return false;
        }
        self.flush_writer(slot);
        self.conns[slot].is_some()
    }

    /// Pushes buffered bytes. A closing connection is *not* closed when
    /// its busy frame drains: closing with the peer's quote still unread
    /// would RST the socket and destroy the frame in flight. It lingers —
    /// discarding inbound bytes — until the peer hangs up or the linger
    /// deadline fires.
    fn flush_writer(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else { return };
        match conn.writer.flush(&mut conn.stream) {
            Ok(_) => {} // POLLOUT re-armed next iteration if pending
            Err(_) => self.close(slot, CloseReason::Normal),
        }
    }

    /// Reads and discards inbound bytes on a closing connection; EOF or an
    /// error finishes the close.
    fn drain_closing(&mut self, slot: usize) {
        use std::io::Read;
        let mut scratch = [0u8; 4096];
        loop {
            let Some(conn) = self.conns[slot].as_mut() else { return };
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    self.close(slot, CloseReason::Normal);
                    return;
                }
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(slot, CloseReason::Normal);
                    return;
                }
            }
        }
    }

    fn drain_switchless_responses(&mut self) {
        let Some(engine) = self.shared.engine.clone() else { return };
        let mut completed: Vec<(u64, Message)> = Vec::new();
        engine.drain_responses(self.index, |token, response| {
            completed.push((token, response));
        });
        for (token, response) in completed {
            let slot = (token >> 32) as usize;
            let generation = token as u32;
            let alive = self
                .conns
                .get(slot)
                .and_then(|c| c.as_ref())
                .is_some_and(|c| c.generation == generation && c.inflight);
            if !alive {
                continue; // connection closed while the op was in flight
            }
            self.shared.counters.switchless_response();
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.inflight = false;
                conn.deadline = None;
            }
            self.respond(slot, &response);
        }
    }

    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<(usize, bool)> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(slot, conn)| {
                let conn = conn.as_ref()?;
                let deadline = conn.deadline?;
                (deadline <= now)
                    .then_some((slot, matches!(conn.state, ConnState::Closing)))
            })
            .collect();
        for (slot, closing) in expired {
            // A busy-reject that never drained is a normal close, not a
            // frame timeout.
            let reason =
                if closing { CloseReason::Normal } else { CloseReason::Deadline };
            self.close(slot, reason);
        }
    }
}

/// Client-side connection to a [`StoreServer`]. Lives here (rather than in
/// `speed-core`) so the handshake logic stays in one module.
#[derive(Debug)]
pub struct TcpStoreClient {
    stream: TcpStream,
    channel: SecureChannel,
}

impl TcpStoreClient {
    /// Connects and runs the attested handshake.
    ///
    /// `identity` is the client enclave whose report is presented;
    /// `platform` hosts it; `authority` must be the same authority the
    /// server trusts.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on connection failure,
    /// [`StoreError::Busy`] when the server refuses with a busy frame
    /// (transient — retry after a backoff), or [`StoreError::Protocol`]
    /// if attestation fails.
    pub fn connect(
        addr: SocketAddr,
        platform: &Platform,
        identity: &speed_enclave::Enclave,
        authority: &SessionAuthority,
    ) -> Result<Self, StoreError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        // Bound every read: a store that dies mid-frame (or hangs) must
        // surface as an error the resilience layer can degrade on, not as
        // a client blocked forever.
        stream.set_read_timeout(Some(DEFAULT_FRAME_TIMEOUT)).ok();

        let report_data = [0u8; REPORT_DATA_LEN];
        let client_report = create_report(platform, identity, &report_data);
        let client_quote = authority
            .service()
            .quote(platform, &client_report)
            .map_err(|e| StoreError::Protocol(e.to_string()))?;
        write_frame(&mut stream, &client_quote.to_bytes())?;

        let server_quote_bytes = read_frame(&mut stream)?;
        let server_quote = match Quote::from_bytes(&server_quote_bytes) {
            Ok(quote) => quote,
            // Not a quote: a saturated server answers the handshake with
            // a plaintext busy frame instead of its quote.
            Err(quote_err) => {
                return Err(match from_bytes::<Message>(&server_quote_bytes) {
                    Ok(Message::Error(reason)) => StoreError::Busy(reason),
                    _ => StoreError::Protocol(quote_err.to_string()),
                });
            }
        };
        authority
            .service()
            .verify_quote(&server_quote)
            .map_err(|e| StoreError::Protocol(format!("server attestation: {e}")))?;

        let key = authority
            .session_key(&client_quote, &server_quote)
            .map_err(|e| StoreError::Protocol(e.to_string()))?;
        Ok(TcpStoreClient {
            stream,
            channel: SecureChannel::from_session_key(key, Role::Client),
        })
    }

    /// Sends `request` and waits for the response (synchronous, like the
    /// paper's prototype).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on stream failure or
    /// [`StoreError::Protocol`] on channel/codec violations.
    pub fn roundtrip(&mut self, request: &Message) -> Result<Message, StoreError> {
        let sealed = self.channel.seal_message(&to_bytes(request));
        write_frame(&mut self.stream, &sealed)?;
        let sealed_response = read_frame(&mut self.stream)?;
        let response_bytes = self
            .channel
            .open_message(&sealed_response)
            .map_err(|e| StoreError::Protocol(e.to_string()))?;
        from_bytes(&response_bytes).map_err(|e| StoreError::Protocol(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use speed_enclave::CostModel;
    use speed_wire::{AppId, BatchItem, CompTag, Record};

    fn setup() -> (Arc<Platform>, Arc<ResultStore>, Arc<SessionAuthority>, StoreServer) {
        setup_with_config(ServerConfig::default())
    }

    fn setup_with_config(
        config: ServerConfig,
    ) -> (Arc<Platform>, Arc<ResultStore>, Arc<SessionAuthority>, StoreServer) {
        let platform = Platform::new(CostModel::default_sgx());
        let store =
            Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
        let authority = Arc::new(SessionAuthority::with_seed(11));
        let server = StoreServer::spawn_with_config(
            Arc::clone(&store),
            Arc::clone(&platform),
            Arc::clone(&authority),
            "127.0.0.1:0",
            config,
        )
        .unwrap();
        (platform, store, authority, server)
    }

    fn sample_record() -> Record {
        Record {
            challenge: vec![9u8; 32],
            wrapped_key: [8u8; 16],
            nonce: [7u8; 12],
            boxed_result: vec![6u8; 40],
        }
    }

    #[test]
    fn tcp_put_get_roundtrip() {
        let (platform, _store, authority, server) = setup();
        let app_enclave = platform.create_enclave(b"tcp-client-app").unwrap();
        let mut client =
            TcpStoreClient::connect(server.addr(), &platform, &app_enclave, &authority)
                .unwrap();

        let tag = CompTag::from_bytes([5u8; 32]);
        let miss = client.roundtrip(&Message::GetRequest { app: AppId(1), tag }).unwrap();
        assert!(matches!(miss, Message::GetResponse(b) if !b.found));

        let put = client
            .roundtrip(&Message::PutRequest {
                app: AppId(1),
                tag,
                record: sample_record(),
            })
            .unwrap();
        assert!(matches!(put, Message::PutResponse(b) if b.accepted));

        let hit = client.roundtrip(&Message::GetRequest { app: AppId(1), tag }).unwrap();
        match hit {
            Message::GetResponse(body) => {
                assert!(body.found);
                assert_eq!(body.record.unwrap(), sample_record());
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn multiple_clients_share_state() {
        let (platform, _store, authority, server) = setup();
        let e1 = platform.create_enclave(b"client-1").unwrap();
        let e2 = platform.create_enclave(b"client-2").unwrap();
        let mut c1 =
            TcpStoreClient::connect(server.addr(), &platform, &e1, &authority).unwrap();
        let mut c2 =
            TcpStoreClient::connect(server.addr(), &platform, &e2, &authority).unwrap();

        let tag = CompTag::from_bytes([1u8; 32]);
        c1.roundtrip(&Message::PutRequest {
            app: AppId(1),
            tag,
            record: sample_record(),
        })
        .unwrap();
        let hit = c2.roundtrip(&Message::GetRequest { app: AppId(2), tag }).unwrap();
        assert!(matches!(hit, Message::GetResponse(b) if b.found));
        server.shutdown();
    }

    #[test]
    fn stats_over_tcp() {
        let (platform, _store, authority, server) = setup();
        let enclave = platform.create_enclave(b"stats-client").unwrap();
        let mut client =
            TcpStoreClient::connect(server.addr(), &platform, &enclave, &authority)
                .unwrap();
        let tag = CompTag::from_bytes([2u8; 32]);
        client
            .roundtrip(&Message::PutRequest {
                app: AppId(1),
                tag,
                record: sample_record(),
            })
            .unwrap();
        let stats = client.roundtrip(&Message::StatsRequest).unwrap();
        assert!(
            matches!(stats, Message::StatsResponse(b) if b.puts == 1 && b.entries == 1)
        );
        server.shutdown();
    }

    #[test]
    fn batched_requests_roundtrip_over_tcp() {
        let (platform, _store, authority, server) = setup();
        let enclave = platform.create_enclave(b"batch-client").unwrap();
        let mut client =
            TcpStoreClient::connect(server.addr(), &platform, &enclave, &authority)
                .unwrap();
        let tag = CompTag::from_bytes([6u8; 32]);
        let response = client
            .roundtrip(&Message::BatchRequest {
                app: AppId(1),
                items: vec![
                    BatchItem::Put { tag, record: sample_record() },
                    BatchItem::Get { tag },
                ],
            })
            .unwrap();
        match response {
            Message::BatchResponse(results) => {
                assert_eq!(results.len(), 2);
                assert!(results[1].record.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_idle_connections_promptly() {
        let (platform, _store, authority, server) = setup();
        let e1 = platform.create_enclave(b"idle-1").unwrap();
        let e2 = platform.create_enclave(b"idle-2").unwrap();
        let mut c1 =
            TcpStoreClient::connect(server.addr(), &platform, &e1, &authority).unwrap();
        let mut c2 =
            TcpStoreClient::connect(server.addr(), &platform, &e2, &authority).unwrap();
        // Both connections are now idle between requests — they sit in
        // the poll set with no deadline armed.
        c1.roundtrip(&Message::StatsRequest).unwrap();
        c2.roundtrip(&Message::StatsRequest).unwrap();
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "shutdown must join the event loop within a wakeup, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn client_sees_error_when_server_dies_between_requests() {
        let (platform, _store, authority, server) = setup();
        let enclave = platform.create_enclave(b"orphan-client").unwrap();
        let mut client =
            TcpStoreClient::connect(server.addr(), &platform, &enclave, &authority)
                .unwrap();
        client.roundtrip(&Message::StatsRequest).unwrap();

        server.shutdown();
        let start = std::time::Instant::now();
        let result = client.roundtrip(&Message::GetRequest {
            app: AppId(1),
            tag: CompTag::from_bytes([4u8; 32]),
        });
        assert!(result.is_err(), "round-trip against a dead server must error");
        assert!(
            start.elapsed() < DEFAULT_FRAME_TIMEOUT + Duration::from_secs(1),
            "the error must arrive within the frame timeout, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn connection_churn_keeps_thread_budget_fixed() {
        // The thread-per-connection design grew one thread per client;
        // the event loop's budget must stay O(io_threads) through churn.
        let (platform, _store, authority, server) = setup();
        let budget = server.thread_count();
        assert_eq!(
            budget,
            ServerConfig::default().io_threads * 2,
            "io threads plus one switchless worker each"
        );
        let enclave = platform.create_enclave(b"churn-client").unwrap();
        let churn = 40usize;
        for _ in 0..churn {
            let mut client =
                TcpStoreClient::connect(server.addr(), &platform, &enclave, &authority)
                    .unwrap();
            client.roundtrip(&Message::StatsRequest).unwrap();
            // Connection drops here; the event loop reaps it on hangup.
        }
        assert_eq!(
            server.thread_count(),
            budget,
            "thread budget is a constant, not O(connections)"
        );
        // Give the event loop a few wakeups to notice the hangups.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let stats = server.stats();
            if stats.active == 0 || std::time::Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let stats = server.stats();
        assert_eq!(stats.accepted, churn as u64, "every connection was served");
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.active, 0, "all connections reaped after churn");
        assert!(
            stats.peak <= 4,
            "sequential churn keeps few connections open, peak was {}",
            stats.peak
        );
        server.shutdown();
    }

    #[test]
    fn saturated_budget_sends_busy_frame() {
        let (platform, _store, authority, server) = setup_with_config(ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        });
        let e1 = platform.create_enclave(b"holder").unwrap();
        let mut holder =
            TcpStoreClient::connect(server.addr(), &platform, &e1, &authority).unwrap();
        holder.roundtrip(&Message::StatsRequest).unwrap();

        // The budget's one slot is held open; the next connection must be
        // told "busy" — distinguishable from attestation failure.
        let e2 = platform.create_enclave(b"overflow").unwrap();
        let overflow = TcpStoreClient::connect(server.addr(), &platform, &e2, &authority);
        match overflow {
            Err(StoreError::Busy(reason)) => {
                assert_eq!(reason, SERVER_BUSY_REASON);
            }
            other => panic!("expected a busy error, got {other:?}"),
        }
        assert!(server.stats().rejected >= 1);

        // The held connection still works, and capacity frees on disconnect.
        holder.roundtrip(&Message::StatsRequest).unwrap();
        drop(holder);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let served = loop {
            let attempt =
                TcpStoreClient::connect(server.addr(), &platform, &e2, &authority)
                    .ok()
                    .and_then(|mut client| client.roundtrip(&Message::StatsRequest).ok());
            if attempt.is_some() {
                break true;
            }
            if std::time::Instant::now() > deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        assert!(served, "slot must free after the holder disconnects");
        server.shutdown();
    }

    #[test]
    fn wrong_authority_fails_handshake() {
        let (platform, _store, _authority, server) = setup();
        let rogue_authority = SessionAuthority::with_seed(999);
        let enclave = platform.create_enclave(b"rogue").unwrap();
        // The server rejects the rogue quote and drops the connection, so
        // either the handshake or the first roundtrip fails.
        let result =
            TcpStoreClient::connect(server.addr(), &platform, &enclave, &rogue_authority);
        match result {
            Err(_) => {}
            Ok(mut client) => {
                let tag = CompTag::from_bytes([3u8; 32]);
                assert!(client
                    .roundtrip(&Message::GetRequest { app: AppId(1), tag })
                    .is_err());
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.stats().protocol_errors == 0 && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server.stats().protocol_errors >= 1);
        server.shutdown();
    }

    #[test]
    fn switchless_hot_path_crosses_zero_transitions() {
        let (platform, store, authority, server) = setup();
        let enclave = platform.create_enclave(b"switchless-client").unwrap();
        let mut client =
            TcpStoreClient::connect(server.addr(), &platform, &enclave, &authority)
                .unwrap();
        // Warm up: the resident workers' entry ECALLs land before this.
        let tag = CompTag::from_bytes([9u8; 32]);
        client
            .roundtrip(&Message::PutRequest {
                app: AppId(1),
                tag,
                record: sample_record(),
            })
            .unwrap();

        let before = store.enclave().stats();
        let ops = 25u64;
        for _ in 0..ops {
            let hit =
                client.roundtrip(&Message::GetRequest { app: AppId(1), tag }).unwrap();
            assert!(matches!(hit, Message::GetResponse(b) if b.found));
        }
        let after = store.enclave().stats();
        assert_eq!(
            after.transitions(),
            before.transitions(),
            "hot-path GETs must not cost world switches"
        );
        assert!(
            after.switchless_calls >= before.switchless_calls + ops,
            "each GET is served switchlessly"
        );
        assert!(server.stats().switchless_requests >= ops);
        assert_eq!(server.stats().switchless_fallbacks, 0);
        server.shutdown();
    }

    #[test]
    fn ecall_fallback_serves_when_rings_are_tiny() {
        // ring_slots = 1 forces frequent fallbacks under concurrency;
        // correctness must not depend on which path serves a request.
        let (platform, _store, authority, server) =
            setup_with_config(ServerConfig { ring_slots: 1, ..ServerConfig::default() });
        let mut handles = Vec::new();
        for worker in 0..4u8 {
            let addr = server.addr();
            let platform = Arc::clone(&platform);
            let authority = Arc::clone(&authority);
            handles.push(std::thread::spawn(move || {
                let enclave = platform.create_enclave(&[b'f', b'b', worker]).unwrap();
                let mut client =
                    TcpStoreClient::connect(addr, &platform, &enclave, &authority)
                        .unwrap();
                for i in 0..10u8 {
                    let tag = CompTag::from_bytes([worker.wrapping_mul(16) + i; 32]);
                    let put = client
                        .roundtrip(&Message::PutRequest {
                            app: AppId(u64::from(worker)),
                            tag,
                            record: sample_record(),
                        })
                        .unwrap();
                    assert!(matches!(put, Message::PutResponse(b) if b.accepted));
                    let get = client
                        .roundtrip(&Message::GetRequest {
                            app: AppId(u64::from(worker)),
                            tag,
                        })
                        .unwrap();
                    assert!(matches!(get, Message::GetResponse(b) if b.found));
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn switchless_disabled_still_serves() {
        let (platform, store, authority, server) = setup_with_config(ServerConfig {
            switchless: false,
            ..ServerConfig::default()
        });
        assert_eq!(server.thread_count(), ServerConfig::default().io_threads);
        let enclave = platform.create_enclave(b"classic-client").unwrap();
        let mut client =
            TcpStoreClient::connect(server.addr(), &platform, &enclave, &authority)
                .unwrap();
        let tag = CompTag::from_bytes([8u8; 32]);
        let before = store.enclave().stats();
        client
            .roundtrip(&Message::PutRequest {
                app: AppId(1),
                tag,
                record: sample_record(),
            })
            .unwrap();
        let after = store.enclave().stats();
        assert!(
            after.transitions() > before.transitions(),
            "the classic path pays world switches"
        );
        assert_eq!(server.stats().switchless_requests, 0);
        server.shutdown();
    }
}
