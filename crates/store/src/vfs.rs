//! A minimal virtual filesystem seam for the store's durability paths.
//!
//! Every byte the store persists — sealed snapshots, checkpoint files, and
//! write-ahead-log segments — flows through the [`Vfs`] trait instead of
//! calling `std::fs` directly. Production code uses [`StdVfs`] (a thin
//! pass-through); the crash harness in `speed-testkit` substitutes a
//! fault-injecting implementation that fails `fsync`/`rename`/appends at
//! chosen points and simulates a full disk, so every recovery path in
//! [`crate::persist`] and [`crate::LogBackend`] is exercised under
//! deterministic filesystem failure.
//!
//! The API is path-based (no open handles): each call opens, acts, and
//! closes. That keeps fault injection exact — an injected failure maps to
//! one named operation — at a small cost in syscalls that the simulated
//! deployment does not care about.

use std::io;
use std::path::{Path, PathBuf};

/// Filesystem operations used by the store's persistence layers.
///
/// Durability contract expected from implementations:
///
/// - [`append`](Vfs::append) and [`write`](Vfs::write) make bytes visible
///   to subsequent reads but promise nothing about surviving power loss.
/// - [`fsync`](Vfs::fsync) makes a file's current contents durable.
/// - [`fsync_dir`](Vfs::fsync_dir) makes directory-entry changes (renames,
///   creations, removals) durable.
/// - [`rename`](Vfs::rename) is atomic with respect to crashes: observers
///   see either the old or the new binding, never a torn file.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Reads an entire file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error (including `NotFound`).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (or truncates) `path` and writes `bytes` to it.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Appends `bytes` to `path`, creating the file if missing.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Truncates `path` to exactly `len` bytes (used to cut a torn WAL
    /// tail before new appends land after it).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Forces the contents of `path` to durable storage.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn fsync(&self, path: &Path) -> io::Result<()>;

    /// Forces the directory entries of `dir` to durable storage, making a
    /// preceding rename/create/remove inside it power-loss durable.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to` (same filesystem).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates `dir` and any missing parents.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Lists the entries of `dir` (files only, full paths, unsorted).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// The current length of `path` in bytes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error (including `NotFound`).
    fn file_len(&self, path: &Path) -> io::Result<u64>;

    /// Whether `path` currently exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The production [`Vfs`]: a direct pass-through to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdVfs;

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut file =
            std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(bytes)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the portable
        // POSIX idiom for making renames inside it durable.
        std::fs::File::open(dir)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        Ok(out)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(label: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("speed-vfs-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_vfs_roundtrip() {
        let dir = scratch("roundtrip");
        let vfs = StdVfs;
        let path = dir.join("a.bin");
        vfs.write(&path, b"hello").unwrap();
        vfs.append(&path, b" world").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
        assert_eq!(vfs.file_len(&path).unwrap(), 11);
        vfs.truncate(&path, 5).unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        vfs.fsync(&path).unwrap();
        vfs.fsync_dir(&dir).unwrap();
        let moved = dir.join("b.bin");
        vfs.rename(&path, &moved).unwrap();
        assert!(!vfs.exists(&path));
        assert!(vfs.exists(&moved));
        let listed = vfs.list_dir(&dir).unwrap();
        assert_eq!(listed, vec![moved.clone()]);
        vfs.remove_file(&moved).unwrap();
        assert!(vfs.list_dir(&dir).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_creates_missing_file() {
        let dir = scratch("append");
        let vfs = StdVfs;
        let path = dir.join("log");
        vfs.append(&path, b"x").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"x");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
