//! Segment-file naming and directory layout for the log backend.
//!
//! A backend directory contains:
//!
//! - `wal-<log>-<first_seq>.log` — append-only WAL segment files. `<log>`
//!   is the shard-log index (two hex digits) and `<first_seq>` the global
//!   sequence number active when the segment was created (sixteen hex
//!   digits), so lexicographic file order equals creation order.
//! - `checkpoint.snap` — the sealed checkpoint that bounds replay length.
//! - `*.tmp` — in-flight atomic writes; leftovers mean a crash landed
//!   between tmp write and rename and are swept on open.
//! - `*.corrupt` — quarantined files kept as evidence, never read.

use std::path::{Path, PathBuf};

use crate::vfs::Vfs;

/// File name of the checkpoint inside a backend directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.snap";

/// Suffix of in-flight atomic writes.
pub const TMP_SUFFIX: &str = ".tmp";

/// Suffix of quarantined (corrupt, kept-as-evidence) files.
pub const CORRUPT_SUFFIX: &str = ".corrupt";

/// One WAL segment file discovered in a backend directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentFile {
    /// Full path of the segment.
    pub path: PathBuf,
    /// Which shard log the segment belongs to.
    pub log: usize,
    /// Global sequence number current when the segment was created.
    pub first_seq: u64,
}

/// The file name for a new segment of shard log `log` starting at
/// `first_seq`.
pub fn segment_file_name(log: usize, first_seq: u64) -> String {
    format!("wal-{log:02x}-{first_seq:016x}.log")
}

/// Parses a segment file name produced by [`segment_file_name`].
pub fn parse_segment_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    let (log_hex, seq_hex) = rest.split_once('-')?;
    if log_hex.len() != 2 || seq_hex.len() != 16 {
        return None;
    }
    let log = usize::from_str_radix(log_hex, 16).ok()?;
    let first_seq = u64::from_str_radix(seq_hex, 16).ok()?;
    Some((log, first_seq))
}

/// Lists the WAL segments in `dir`, sorted by `(first_seq, log)` so replay
/// visits files in creation order. Non-segment files are ignored.
///
/// # Errors
///
/// Propagates the underlying directory-listing error.
pub fn list_segments(vfs: &dyn Vfs, dir: &Path) -> std::io::Result<Vec<SegmentFile>> {
    let mut segments = Vec::new();
    for path in vfs.list_dir(dir)? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if let Some((log, first_seq)) = parse_segment_name(name) {
            segments.push(SegmentFile { path, log, first_seq });
        }
    }
    segments.sort_by_key(|s| (s.first_seq, s.log));
    Ok(segments)
}

/// Removes every `*.tmp` file in `dir` — leftovers from writes whose crash
/// landed between the tmp write and the rename. Returns how many were
/// swept. Removal failures are ignored (a stray tmp is inert; it is never
/// read and the next atomic write through the same name replaces it).
pub fn sweep_tmp_files(vfs: &dyn Vfs, dir: &Path) -> usize {
    let Ok(paths) = vfs.list_dir(dir) else { return 0 };
    let mut swept = 0;
    for path in paths {
        let is_tmp = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(TMP_SUFFIX));
        if is_tmp && vfs.remove_file(&path).is_ok() {
            swept += 1;
        }
    }
    swept
}

/// The sibling `.tmp` name used for atomic writes of `path`.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(TMP_SUFFIX);
    path.with_file_name(name)
}

/// The sibling `.corrupt` quarantine name for `path`.
pub fn corrupt_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(CORRUPT_SUFFIX);
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::StdVfs;

    #[test]
    fn segment_names_roundtrip() {
        let name = segment_file_name(3, 0x1234);
        assert_eq!(name, "wal-03-0000000000001234.log");
        assert_eq!(parse_segment_name(&name), Some((3, 0x1234)));
        assert_eq!(parse_segment_name("checkpoint.snap"), None);
        assert_eq!(parse_segment_name("wal-3-1234.log"), None);
        assert_eq!(parse_segment_name("wal-03-0000000000001234.log.tmp"), None);
    }

    #[test]
    fn listing_sorts_by_creation_order() {
        let dir = std::env::temp_dir()
            .join(format!("speed-segment-list-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = StdVfs;
        for (log, seq) in [(1usize, 30u64), (0, 10), (0, 20), (1, 10)] {
            std::fs::write(dir.join(segment_file_name(log, seq)), b"x").unwrap();
        }
        std::fs::write(dir.join(CHECKPOINT_FILE), b"y").unwrap();
        std::fs::write(dir.join("stray.tmp"), b"z").unwrap();
        let segments = list_segments(&vfs, &dir).unwrap();
        let order: Vec<(usize, u64)> =
            segments.iter().map(|s| (s.log, s.first_seq)).collect();
        assert_eq!(order, vec![(0, 10), (1, 10), (0, 20), (1, 30)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_sweep_removes_only_tmp_files() {
        let dir = std::env::temp_dir()
            .join(format!("speed-segment-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = StdVfs;
        std::fs::write(dir.join("checkpoint.snap.tmp"), b"a").unwrap();
        std::fs::write(dir.join("other.tmp"), b"b").unwrap();
        std::fs::write(dir.join("checkpoint.snap"), b"c").unwrap();
        std::fs::write(dir.join(segment_file_name(0, 1)), b"d").unwrap();
        assert_eq!(sweep_tmp_files(&vfs, &dir), 2);
        assert!(dir.join("checkpoint.snap").exists());
        assert!(dir.join(segment_file_name(0, 1)).exists());
        assert!(!dir.join("checkpoint.snap.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
