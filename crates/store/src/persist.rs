//! Store persistence via enclave sealing.
//!
//! A `ResultStore` restart would otherwise lose every cached result. This
//! module snapshots the dictionary *and* the referenced ciphertexts into a
//! single blob sealed under the store enclave's identity
//! ([`SealPolicy::MrEnclave`]): only a store enclave running the identical
//! code on the same platform can restore it. Records inside are themselves
//! RCE-protected, so sealing here adds rollback/integrity protection for
//! the snapshot as a whole rather than confidentiality of individual
//! results.

use speed_enclave::sealing::{seal, unseal, SealPolicy, SealedData};
use speed_enclave::Platform;
use speed_wire::{Reader, SyncEntry, WireDecode, WireEncode, WireError, Writer};

use crate::store::{ResultStore, StoreConfig};
use crate::vfs::Vfs;
use crate::StoreError;

/// Sealing AAD. Unchanged across payload versions — an AAD bump would make
/// every pre-existing snapshot unreadable (unsealing authenticates the
/// AAD), so the payload carries its own version discriminator instead.
const SNAPSHOT_AAD: &[u8] = b"speed-store-snapshot-v1";

/// Leading `u32` marking a versioned (v2+) payload. A v1 payload starts
/// with its entry count, which can never reach `u32::MAX` (`encode_entries`
/// rejects such stores), so the sentinel is unambiguous.
const VERSIONED_SENTINEL: u32 = u32::MAX;

/// Current payload version: per-shard sections.
const SNAPSHOT_VERSION: u8 = 2;

fn encode_count(len: usize, writer: &mut Writer) -> Result<(), StoreError> {
    let count = u32::try_from(len).map_err(|_| {
        StoreError::Protocol(format!(
            "snapshot too large: {len} entries exceed the u32 wire limit"
        ))
    })?;
    if count == VERSIONED_SENTINEL {
        return Err(StoreError::Protocol(
            "snapshot too large: entry count collides with the version sentinel".into(),
        ));
    }
    count.encode(writer);
    Ok(())
}

/// Encodes the legacy v1 payload: a flat entry list. Kept (test-only) so
/// the checked-in v1 fixture can be verified against the original encoder.
#[cfg(test)]
fn encode_entries(entries: &[SyncEntry]) -> Result<Vec<u8>, StoreError> {
    let mut writer = Writer::new();
    encode_count(entries.len(), &mut writer)?;
    for entry in entries {
        entry.encode(&mut writer);
    }
    Ok(writer.into_bytes())
}

/// Encodes the v2 payload: sentinel, version byte, then one section per
/// store shard so a large restore can be processed section by section.
/// Shared with the log backend, whose checkpoint wraps this same payload.
pub(crate) fn encode_shard_sections(
    sections: &[Vec<SyncEntry>],
) -> Result<Vec<u8>, StoreError> {
    let mut writer = Writer::new();
    VERSIONED_SENTINEL.encode(&mut writer);
    SNAPSHOT_VERSION.encode(&mut writer);
    encode_count(sections.len(), &mut writer)?;
    for section in sections {
        encode_count(section.len(), &mut writer)?;
        for entry in section {
            entry.encode(&mut writer);
        }
    }
    Ok(writer.into_bytes())
}

fn decode_entry_list(reader: &mut Reader<'_>) -> Result<Vec<SyncEntry>, WireError> {
    let count = u32::decode(reader)? as usize;
    let mut entries = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        entries.push(SyncEntry::decode(reader)?);
    }
    Ok(entries)
}

/// Decodes any known payload version into a flat entry list. Entries route
/// to shards by tag on import, so a snapshot written with one shard count
/// restores correctly into a store with any other.
pub(crate) fn decode_payload(bytes: &[u8]) -> Result<Vec<SyncEntry>, WireError> {
    let mut reader = Reader::new(bytes);
    let head = u32::decode(&mut reader)?;
    let entries = if head == VERSIONED_SENTINEL {
        let version = u8::decode(&mut reader)?;
        if version != SNAPSHOT_VERSION {
            // Future/unknown version byte: refuse rather than misparse.
            return Err(WireError::InvalidTag(version));
        }
        let sections = u32::decode(&mut reader)? as usize;
        let mut entries = Vec::new();
        for _ in 0..sections {
            entries.extend(decode_entry_list(&mut reader)?);
        }
        entries
    } else {
        // v1: `head` is the flat entry count.
        let count = head as usize;
        let mut entries = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            entries.push(SyncEntry::decode(&mut reader)?);
        }
        entries
    };
    reader.finish()?;
    Ok(entries)
}

/// Snapshots the entire store (metadata + ciphertexts + hit counts) into a
/// blob sealed to the store enclave's identity. Written in the v2 per-shard
/// section format; [`restore`] also reads legacy v1 (flat-list) snapshots.
///
/// # Errors
///
/// - [`StoreError::Protocol`] if the store holds more entries than the
///   snapshot wire format can describe (more than `u32::MAX`).
pub fn snapshot(platform: &Platform, store: &ResultStore) -> Result<Vec<u8>, StoreError> {
    let sections = store.export_shards();
    let payload = encode_shard_sections(&sections)?;
    Ok(seal(platform, store.enclave(), &SealPolicy::MrEnclave, SNAPSHOT_AAD, &payload)
        .to_bytes())
}

/// Restores a store from a sealed snapshot, preserving hit counts. Accepts
/// both the current v2 (per-shard) and legacy v1 (flat-list) payloads;
/// entries re-route to shards by tag, so the snapshot's shard layout need
/// not match `config.shards`.
///
/// # Errors
///
/// - [`StoreError::Enclave`] if unsealing fails (snapshot from a different
///   store code version or platform, or tampered bytes).
/// - [`StoreError::Protocol`] if the payload is malformed.
pub fn restore(
    platform: &Platform,
    config: StoreConfig,
    sealed_bytes: &[u8],
) -> Result<ResultStore, StoreError> {
    let store = ResultStore::new(platform, config)?;
    let sealed = SealedData::from_bytes(sealed_bytes)?;
    let payload =
        unseal(platform, store.enclave(), &SealPolicy::MrEnclave, SNAPSHOT_AAD, &sealed)?;
    let entries =
        decode_payload(&payload).map_err(|e| StoreError::Protocol(e.to_string()))?;
    store.import_entries(entries);
    Ok(store)
}

/// Validates the outer sealed container without unsealing, returning its
/// size. Only the owner enclave can read the contents.
pub fn snapshot_size(sealed_bytes: &[u8]) -> Option<usize> {
    SealedData::from_bytes(sealed_bytes).ok().map(|s| s.len())
}

/// How [`restore_or_fresh`] obtained its store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotLoad {
    /// The snapshot file unsealed and decoded; entries were imported.
    Restored,
    /// No snapshot file existed; started empty.
    FreshMissing,
    /// A snapshot file existed but could not be used (torn write, tampered
    /// bytes, foreign enclave identity, or unreadable file); started empty.
    FreshUnreadable(String),
}

/// Writes a sealed snapshot of `store` to `path` atomically: the bytes land
/// in a sibling `<path>.tmp` first, are fsynced, then renamed over `path`,
/// and finally the parent directory is fsynced so the rename itself is
/// durable across power loss. A crash at any point leaves either the
/// previous complete snapshot or a stray `.tmp` that [`restore_or_fresh`]
/// never looks at — readers can never observe a torn file through `path`.
///
/// # Errors
///
/// - [`StoreError::Io`] on filesystem failure.
/// - Any error [`snapshot`] can return.
pub fn write_snapshot_file(
    platform: &Platform,
    store: &ResultStore,
    path: &std::path::Path,
) -> Result<(), StoreError> {
    write_snapshot_file_vfs(platform, store, &crate::vfs::StdVfs, path)
}

/// [`write_snapshot_file`] on an injected [`Vfs`] (fault testing).
///
/// # Errors
///
/// Same as [`write_snapshot_file`].
pub fn write_snapshot_file_vfs(
    platform: &Platform,
    store: &ResultStore,
    vfs: &dyn Vfs,
    path: &std::path::Path,
) -> Result<(), StoreError> {
    let bytes = snapshot(platform, store)?;
    let tmp = tmp_path(path);
    vfs.write(&tmp, &bytes)?;
    // Durability point 1: the tmp file is complete on disk before the
    // rename makes it visible under the real name.
    vfs.fsync(&tmp)?;
    vfs.rename(&tmp, path)?;
    // Durability point 2: the rename is a directory-entry change; without
    // fsyncing the directory a power cut can roll `path` back to the old
    // snapshot — or to nothing — after the call returned success.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        vfs.fsync_dir(parent)?;
    }
    Ok(())
}

/// Restores a store from the snapshot at `path`, falling back to a fresh
/// empty store when the file is missing or unusable. Unusable covers torn
/// writes, tampering, and snapshots sealed by a different enclave identity
/// — a store must come up after a crash, and sealing already guarantees a
/// corrupt snapshot cannot decode into bogus entries. A corrupt snapshot is
/// quarantined by renaming it to `<path>.corrupt` (and counted by the
/// `store_snapshot_quarantined_total` metric) so the evidence survives for
/// inspection; a leftover `<path>.tmp` from a crashed write is swept.
///
/// # Errors
///
/// - [`StoreError::Enclave`] if even a fresh store cannot be constructed
///   (the fallback itself failed; nothing to serve).
pub fn restore_or_fresh(
    platform: &Platform,
    config: StoreConfig,
    path: &std::path::Path,
) -> Result<(ResultStore, SnapshotLoad), StoreError> {
    restore_or_fresh_vfs(platform, config, &crate::vfs::StdVfs, path)
}

/// [`restore_or_fresh`] on an injected [`Vfs`] (fault testing).
///
/// # Errors
///
/// Same as [`restore_or_fresh`].
pub fn restore_or_fresh_vfs(
    platform: &Platform,
    config: StoreConfig,
    vfs: &dyn Vfs,
    path: &std::path::Path,
) -> Result<(ResultStore, SnapshotLoad), StoreError> {
    // Sweep the write-side leftover: a crash between tmp write and rename
    // leaks `<path>.tmp` forever otherwise. It is never read, so removal
    // failures are harmless and ignored.
    let tmp = tmp_path(path);
    if vfs.exists(&tmp) {
        let _ = vfs.remove_file(&tmp);
    }
    let bytes = match vfs.read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((ResultStore::new(platform, config)?, SnapshotLoad::FreshMissing));
        }
        Err(e) => {
            quarantine(vfs, path);
            return Ok((
                ResultStore::new(platform, config.clone())?,
                SnapshotLoad::FreshUnreadable(e.to_string()),
            ));
        }
    };
    match restore(platform, config.clone(), &bytes) {
        Ok(store) => Ok((store, SnapshotLoad::Restored)),
        Err(e) => {
            quarantine(vfs, path);
            Ok((
                ResultStore::new(platform, config)?,
                SnapshotLoad::FreshUnreadable(e.to_string()),
            ))
        }
    }
}

/// Renames an unusable snapshot to `<path>.corrupt` — evidence for the
/// operator instead of a silent fresh start — and bumps the quarantine
/// counter. Best-effort: the fallback store must come up either way.
fn quarantine(vfs: &dyn Vfs, path: &std::path::Path) {
    speed_telemetry::global()
        .counter(
            speed_telemetry::names::STORE_SNAPSHOT_QUARANTINED_TOTAL,
            "corrupt snapshots/checkpoints quarantined to *.corrupt",
        )
        .inc();
    if vfs.exists(path) {
        let _ = vfs.rename(path, &crate::segment::corrupt_sibling(path));
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            let _ = vfs.fsync_dir(parent);
        }
    }
}

/// The sibling temp name used by [`write_snapshot_file`] (same directory,
/// so the final rename never crosses filesystems).
fn tmp_path(path: &std::path::Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_enclave::CostModel;
    use speed_wire::{AppId, CompTag, Message, Record};

    fn tag(n: u8) -> CompTag {
        CompTag::from_bytes([n; 32])
    }

    fn record(n: u8) -> Record {
        Record {
            challenge: vec![n; 32],
            wrapped_key: [n; 16],
            nonce: [n; 12],
            boxed_result: vec![n; 40],
        }
    }

    fn populated_store(platform: &Platform) -> ResultStore {
        let store = ResultStore::new(platform, StoreConfig::default()).unwrap();
        for n in 1..=5u8 {
            store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag(n),
                record: record(n),
            });
        }
        // Give entry 1 some popularity.
        for _ in 0..3 {
            store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        }
        store
    }

    /// The checked-in legacy payload: 3 entries written by the v1 (flat
    /// list) encoder — tags `[n; 32]`, records `record(n)`, hits `2n` for
    /// `n` in 1..=3. Regenerate with `encode_entries` if the fixture must
    /// ever change.
    const V1_PAYLOAD: &[u8] = include_bytes!("../tests/fixtures/snapshot_v1_payload.bin");

    #[test]
    fn v1_snapshot_migrates_to_sharded_store() {
        // Sealing is platform-bound, so the fixture holds the raw payload;
        // sealing it here reproduces exactly what a v1-era store wrote.
        let platform = Platform::new(CostModel::no_sgx());
        let v1_store = ResultStore::new(&platform, StoreConfig::default()).unwrap();
        let sealed = seal(
            &platform,
            v1_store.enclave(),
            &SealPolicy::MrEnclave,
            SNAPSHOT_AAD,
            V1_PAYLOAD,
        )
        .to_bytes();
        drop(v1_store);

        let restored = restore(&platform, StoreConfig::default(), &sealed).unwrap();
        assert_eq!(restored.stats().entries, 3);
        // Hit counts survive the migration: tag 3 carried 6 hits.
        let popular = restored.export_popular(6);
        assert_eq!(popular.len(), 1);
        assert_eq!(popular[0].tag, tag(3));
        assert_eq!(popular[0].hits, 6);
        // Record bytes intact.
        match restored.handle(Message::GetRequest { app: AppId(1), tag: tag(2) }) {
            Message::GetResponse(body) => {
                assert_eq!(body.record.unwrap().boxed_result, vec![2u8; 40]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fixture_matches_v1_encoder() {
        // Guards the fixture against drift: the in-tree v1 encoder still
        // produces byte-identical output for the documented contents.
        let entries: Vec<SyncEntry> = (1..=3u8)
            .map(|n| SyncEntry { tag: tag(n), record: record(n), hits: u64::from(n) * 2 })
            .collect();
        assert_eq!(encode_entries(&entries).unwrap(), V1_PAYLOAD);
    }

    #[test]
    fn v2_snapshot_restores_across_shard_counts() {
        let platform = Platform::new(CostModel::no_sgx());
        let store = populated_store(&platform);
        let sealed = snapshot(&platform, &store).unwrap();
        drop(store);
        // Restore into a store with a different shard layout: entries
        // re-route by tag.
        let restored =
            restore(&platform, StoreConfig::default().with_shards(3), &sealed).unwrap();
        assert_eq!(restored.shard_count(), 3);
        assert_eq!(restored.stats().entries, 5);
        let popular = restored.export_popular(3);
        assert_eq!(popular.len(), 1);
        assert_eq!(popular[0].tag, tag(1));
    }

    #[test]
    fn unknown_snapshot_version_rejected() {
        let platform = Platform::new(CostModel::no_sgx());
        let store = ResultStore::new(&platform, StoreConfig::default()).unwrap();
        let mut payload = Vec::new();
        let mut writer = Writer::new();
        VERSIONED_SENTINEL.encode(&mut writer);
        99u8.encode(&mut writer); // far-future version
        payload.extend(writer.into_bytes());
        let sealed = seal(
            &platform,
            store.enclave(),
            &SealPolicy::MrEnclave,
            SNAPSHOT_AAD,
            &payload,
        )
        .to_bytes();
        let result = restore(&platform, StoreConfig::default(), &sealed);
        assert!(matches!(result, Err(StoreError::Protocol(_))));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let platform = Platform::new(CostModel::no_sgx());
        let store = populated_store(&platform);
        let sealed = snapshot(&platform, &store).unwrap();
        drop(store);

        let restored = restore(&platform, StoreConfig::default(), &sealed).unwrap();
        assert_eq!(restored.stats().entries, 5);
        // Data intact.
        let response =
            restored.handle(Message::GetRequest { app: AppId(2), tag: tag(3) });
        match response {
            Message::GetResponse(body) => {
                assert_eq!(body.record.unwrap().boxed_result, vec![3u8; 40]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Popularity preserved: entry 1 still syncs as popular.
        let popular = restored.export_popular(3);
        assert_eq!(popular.len(), 1);
        assert_eq!(popular[0].tag, tag(1));
    }

    #[test]
    fn tampered_snapshot_rejected() {
        let platform = Platform::new(CostModel::no_sgx());
        let store = populated_store(&platform);
        let mut sealed = snapshot(&platform, &store).unwrap();
        let mid = sealed.len() / 2;
        sealed[mid] ^= 0xFF;
        assert!(restore(&platform, StoreConfig::default(), &sealed).is_err());
    }

    #[test]
    fn snapshot_bound_to_platform() {
        let platform_a = Platform::new(CostModel::no_sgx());
        let platform_b = Platform::new(CostModel::no_sgx());
        let store = populated_store(&platform_a);
        let sealed = snapshot(&platform_a, &store).unwrap();
        assert!(restore(&platform_b, StoreConfig::default(), &sealed).is_err());
    }

    #[test]
    fn empty_store_snapshots_fine() {
        let platform = Platform::new(CostModel::no_sgx());
        let store = ResultStore::new(&platform, StoreConfig::default()).unwrap();
        let sealed = snapshot(&platform, &store).unwrap();
        let restored = restore(&platform, StoreConfig::default(), &sealed).unwrap();
        assert_eq!(restored.stats().entries, 0);
    }

    #[test]
    fn results_recoverable_after_restore() {
        // Full-stack check: an RCE-protected record still decrypts after a
        // seal/restore cycle (the record bytes must be bit-identical).
        let platform = Platform::new(CostModel::no_sgx());
        let store = populated_store(&platform);
        let original =
            match store.handle(Message::GetRequest { app: AppId(1), tag: tag(2) }) {
                Message::GetResponse(body) => body.record.unwrap(),
                other => panic!("unexpected {other:?}"),
            };
        let sealed = snapshot(&platform, &store).unwrap();
        let restored = restore(&platform, StoreConfig::default(), &sealed).unwrap();
        let recovered =
            match restored.handle(Message::GetRequest { app: AppId(9), tag: tag(2) }) {
                Message::GetResponse(body) => body.record.unwrap(),
                other => panic!("unexpected {other:?}"),
            };
        assert_eq!(original, recovered);
    }

    fn scratch_file(label: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("speed-store-persist-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("store.snap")
    }

    #[test]
    fn file_roundtrip_restores() {
        let platform = Platform::new(CostModel::no_sgx());
        let path = scratch_file("roundtrip");
        let store = populated_store(&platform);
        write_snapshot_file(&platform, &store, &path).unwrap();
        drop(store);
        let (restored, outcome) =
            restore_or_fresh(&platform, StoreConfig::default(), &path).unwrap();
        assert_eq!(outcome, SnapshotLoad::Restored);
        assert_eq!(restored.stats().entries, 5);
        // The write was atomic: no stray tmp file remains.
        assert!(!tmp_path(&path).exists());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_file_starts_fresh() {
        let platform = Platform::new(CostModel::no_sgx());
        let path = scratch_file("missing");
        let (store, outcome) =
            restore_or_fresh(&platform, StoreConfig::default(), &path).unwrap();
        assert_eq!(outcome, SnapshotLoad::FreshMissing);
        assert_eq!(store.stats().entries, 0);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_snapshot_never_loads_at_any_truncation_point() {
        // Simulates a crash mid-write for a writer that (wrongly) wrote the
        // target in place: every strict prefix of a valid snapshot must fall
        // back to a fresh store — never panic, never import partial entries.
        let platform = Platform::new(CostModel::no_sgx());
        let path = scratch_file("torn");
        let store = populated_store(&platform);
        let full = snapshot(&platform, &store).unwrap();
        drop(store);
        // Cover the header, the sealed-container boundary, and a spread of
        // interior points without writing thousands of files.
        let mut cuts: Vec<usize> = (0..16.min(full.len())).collect();
        cuts.extend((16..full.len()).step_by(37));
        for cut in cuts {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (fresh, outcome) =
                restore_or_fresh(&platform, StoreConfig::default(), &path).unwrap();
            assert!(
                matches!(outcome, SnapshotLoad::FreshUnreadable(_)),
                "prefix of {cut} bytes unexpectedly loaded"
            );
            assert_eq!(fresh.stats().entries, 0, "cut={cut}");
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn leftover_tmp_file_is_swept_on_open() {
        // A crash between tmp write and rename leaves `<path>.tmp` but no
        // `<path>`: the loader must report a clean miss, never read the
        // tmp, and sweep it so the leak is not forever.
        let platform = Platform::new(CostModel::no_sgx());
        let path = scratch_file("tmp-left");
        let store = populated_store(&platform);
        let full = snapshot(&platform, &store).unwrap();
        drop(store);
        std::fs::write(tmp_path(&path), &full).unwrap();
        let (fresh, outcome) =
            restore_or_fresh(&platform, StoreConfig::default(), &path).unwrap();
        assert_eq!(outcome, SnapshotLoad::FreshMissing);
        assert_eq!(fresh.stats().entries, 0);
        assert!(!tmp_path(&path).exists(), "stale tmp must be swept");
        // The next successful write still lands and recovers.
        let store = populated_store(&platform);
        write_snapshot_file(&platform, &store, &path).unwrap();
        let (restored, outcome) =
            restore_or_fresh(&platform, StoreConfig::default(), &path).unwrap();
        assert_eq!(outcome, SnapshotLoad::Restored);
        assert_eq!(restored.stats().entries, 5);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn tampered_snapshot_quarantined_and_falls_back_fresh() {
        let platform = Platform::new(CostModel::no_sgx());
        let path = scratch_file("tampered");
        let store = populated_store(&platform);
        write_snapshot_file(&platform, &store, &path).unwrap();
        drop(store);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (fresh, outcome) =
            restore_or_fresh(&platform, StoreConfig::default(), &path).unwrap();
        assert!(matches!(outcome, SnapshotLoad::FreshUnreadable(_)));
        assert_eq!(fresh.stats().entries, 0);
        // The bad file was quarantined as evidence, not silently discarded.
        assert!(!path.exists());
        let quarantined = crate::segment::corrupt_sibling(&path);
        assert_eq!(std::fs::read(&quarantined).unwrap(), bytes);
        // A second open after quarantine is a clean miss.
        let (_, outcome) =
            restore_or_fresh(&platform, StoreConfig::default(), &path).unwrap();
        assert_eq!(outcome, SnapshotLoad::FreshMissing);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    /// A [`Vfs`] that records the order of durability-relevant operations.
    #[derive(Debug, Default)]
    struct RecordingVfs {
        ops: std::sync::Mutex<Vec<String>>,
    }

    impl RecordingVfs {
        fn log(&self, op: String) {
            self.ops.lock().unwrap().push(op);
        }
    }

    impl Vfs for RecordingVfs {
        fn read(&self, path: &std::path::Path) -> std::io::Result<Vec<u8>> {
            std::fs::read(path)
        }
        fn write(&self, path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
            self.log(format!("write {}", path.display()));
            std::fs::write(path, bytes)
        }
        fn append(&self, path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
            crate::vfs::StdVfs.append(path, bytes)
        }
        fn truncate(&self, path: &std::path::Path, len: u64) -> std::io::Result<()> {
            crate::vfs::StdVfs.truncate(path, len)
        }
        fn fsync(&self, path: &std::path::Path) -> std::io::Result<()> {
            self.log(format!("fsync {}", path.display()));
            crate::vfs::StdVfs.fsync(path)
        }
        fn fsync_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
            self.log(format!("fsync_dir {}", dir.display()));
            crate::vfs::StdVfs.fsync_dir(dir)
        }
        fn rename(
            &self,
            from: &std::path::Path,
            to: &std::path::Path,
        ) -> std::io::Result<()> {
            self.log(format!("rename {}", to.display()));
            std::fs::rename(from, to)
        }
        fn remove_file(&self, path: &std::path::Path) -> std::io::Result<()> {
            std::fs::remove_file(path)
        }
        fn create_dir_all(&self, dir: &std::path::Path) -> std::io::Result<()> {
            std::fs::create_dir_all(dir)
        }
        fn list_dir(
            &self,
            dir: &std::path::Path,
        ) -> std::io::Result<Vec<std::path::PathBuf>> {
            crate::vfs::StdVfs.list_dir(dir)
        }
        fn file_len(&self, path: &std::path::Path) -> std::io::Result<u64> {
            crate::vfs::StdVfs.file_len(path)
        }
        fn exists(&self, path: &std::path::Path) -> bool {
            path.exists()
        }
    }

    /// A [`Vfs`] whose next `read` fails once, then behaves normally.
    #[derive(Debug, Default)]
    struct FailNextRead {
        armed: std::sync::atomic::AtomicBool,
    }

    impl Vfs for FailNextRead {
        fn read(&self, path: &std::path::Path) -> std::io::Result<Vec<u8>> {
            if self.armed.swap(false, std::sync::atomic::Ordering::Relaxed) {
                return Err(std::io::Error::other("injected read error"));
            }
            std::fs::read(path)
        }
        fn write(&self, path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
            std::fs::write(path, bytes)
        }
        fn append(&self, path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
            crate::vfs::StdVfs.append(path, bytes)
        }
        fn truncate(&self, path: &std::path::Path, len: u64) -> std::io::Result<()> {
            crate::vfs::StdVfs.truncate(path, len)
        }
        fn fsync(&self, path: &std::path::Path) -> std::io::Result<()> {
            crate::vfs::StdVfs.fsync(path)
        }
        fn fsync_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
            crate::vfs::StdVfs.fsync_dir(dir)
        }
        fn rename(
            &self,
            from: &std::path::Path,
            to: &std::path::Path,
        ) -> std::io::Result<()> {
            std::fs::rename(from, to)
        }
        fn remove_file(&self, path: &std::path::Path) -> std::io::Result<()> {
            std::fs::remove_file(path)
        }
        fn create_dir_all(&self, dir: &std::path::Path) -> std::io::Result<()> {
            std::fs::create_dir_all(dir)
        }
        fn list_dir(
            &self,
            dir: &std::path::Path,
        ) -> std::io::Result<Vec<std::path::PathBuf>> {
            crate::vfs::StdVfs.list_dir(dir)
        }
        fn file_len(&self, path: &std::path::Path) -> std::io::Result<u64> {
            crate::vfs::StdVfs.file_len(path)
        }
        fn exists(&self, path: &std::path::Path) -> bool {
            path.exists()
        }
    }

    #[test]
    fn v1_snapshot_migrates_to_v2_despite_transient_read_error() {
        // A legacy v1 snapshot file, a flaky first read: the store must
        // come up fresh (quarantining the file), and once the operator
        // moves the evidence back, the v1 payload must still migrate and
        // the next save must land in the v2 format.
        let platform = Platform::new(CostModel::no_sgx());
        let path = scratch_file("v1-readfault");
        let seal_store = ResultStore::new(&platform, StoreConfig::default()).unwrap();
        let sealed = seal(
            &platform,
            seal_store.enclave(),
            &SealPolicy::MrEnclave,
            SNAPSHOT_AAD,
            V1_PAYLOAD,
        )
        .to_bytes();
        drop(seal_store);
        std::fs::write(&path, &sealed).unwrap();

        let vfs = FailNextRead::default();
        vfs.armed.store(true, std::sync::atomic::Ordering::Relaxed);
        let (fresh, outcome) =
            restore_or_fresh_vfs(&platform, StoreConfig::default(), &vfs, &path).unwrap();
        assert!(matches!(outcome, SnapshotLoad::FreshUnreadable(_)));
        assert_eq!(fresh.stats().entries, 0);
        let quarantined = crate::segment::corrupt_sibling(&path);
        assert_eq!(std::fs::read(&quarantined).unwrap(), sealed, "evidence intact");

        // Operator intervention: move the quarantined file back; the read
        // succeeds this time and the v1 payload migrates.
        std::fs::rename(&quarantined, &path).unwrap();
        let (migrated, outcome) =
            restore_or_fresh_vfs(&platform, StoreConfig::default(), &vfs, &path).unwrap();
        assert_eq!(outcome, SnapshotLoad::Restored);
        assert_eq!(migrated.stats().entries, 3);

        // Re-saving writes the current v2 payload, finishing the migration.
        write_snapshot_file(&platform, &migrated, &path).unwrap();
        let (reread, outcome) =
            restore_or_fresh(&platform, StoreConfig::default(), &path).unwrap();
        assert_eq!(outcome, SnapshotLoad::Restored);
        assert_eq!(reread.stats().entries, 3);
        let popular = reread.export_popular(6);
        assert_eq!(popular.len(), 1, "hit counts survived both hops");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn snapshot_write_fsyncs_file_then_rename_then_directory() {
        // Regression for the missing directory fsync: without it a power
        // cut after `write_snapshot_file` returned can roll the rename
        // back, losing a write the caller was told succeeded.
        let platform = Platform::new(CostModel::no_sgx());
        let path = scratch_file("dirsync");
        let store = populated_store(&platform);
        let vfs = RecordingVfs::default();
        write_snapshot_file_vfs(&platform, &store, &vfs, &path).unwrap();
        let ops = vfs.ops.lock().unwrap().clone();
        let parent = path.parent().unwrap().display().to_string();
        assert_eq!(
            ops,
            vec![
                format!("write {}", tmp_path(&path).display()),
                format!("fsync {}", tmp_path(&path).display()),
                format!("rename {}", path.display()),
                format!("fsync_dir {parent}"),
            ],
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
