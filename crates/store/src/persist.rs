//! Store persistence via enclave sealing.
//!
//! A `ResultStore` restart would otherwise lose every cached result. This
//! module snapshots the dictionary *and* the referenced ciphertexts into a
//! single blob sealed under the store enclave's identity
//! ([`SealPolicy::MrEnclave`]): only a store enclave running the identical
//! code on the same platform can restore it. Records inside are themselves
//! RCE-protected, so sealing here adds rollback/integrity protection for
//! the snapshot as a whole rather than confidentiality of individual
//! results.

use speed_enclave::sealing::{seal, unseal, SealPolicy, SealedData};
use speed_enclave::Platform;
use speed_wire::{Reader, SyncEntry, WireDecode, WireEncode, WireError, Writer};

use crate::store::{ResultStore, StoreConfig};
use crate::StoreError;

/// Sealing AAD. Unchanged across payload versions — an AAD bump would make
/// every pre-existing snapshot unreadable (unsealing authenticates the
/// AAD), so the payload carries its own version discriminator instead.
const SNAPSHOT_AAD: &[u8] = b"speed-store-snapshot-v1";

/// Leading `u32` marking a versioned (v2+) payload. A v1 payload starts
/// with its entry count, which can never reach `u32::MAX` (`encode_entries`
/// rejects such stores), so the sentinel is unambiguous.
const VERSIONED_SENTINEL: u32 = u32::MAX;

/// Current payload version: per-shard sections.
const SNAPSHOT_VERSION: u8 = 2;

fn encode_count(len: usize, writer: &mut Writer) -> Result<(), StoreError> {
    let count = u32::try_from(len).map_err(|_| {
        StoreError::Protocol(format!(
            "snapshot too large: {len} entries exceed the u32 wire limit"
        ))
    })?;
    if count == VERSIONED_SENTINEL {
        return Err(StoreError::Protocol(
            "snapshot too large: entry count collides with the version sentinel".into(),
        ));
    }
    count.encode(writer);
    Ok(())
}

/// Encodes the legacy v1 payload: a flat entry list. Kept (test-only) so
/// the checked-in v1 fixture can be verified against the original encoder.
#[cfg(test)]
fn encode_entries(entries: &[SyncEntry]) -> Result<Vec<u8>, StoreError> {
    let mut writer = Writer::new();
    encode_count(entries.len(), &mut writer)?;
    for entry in entries {
        entry.encode(&mut writer);
    }
    Ok(writer.into_bytes())
}

/// Encodes the v2 payload: sentinel, version byte, then one section per
/// store shard so a large restore can be processed section by section.
fn encode_shard_sections(sections: &[Vec<SyncEntry>]) -> Result<Vec<u8>, StoreError> {
    let mut writer = Writer::new();
    VERSIONED_SENTINEL.encode(&mut writer);
    SNAPSHOT_VERSION.encode(&mut writer);
    encode_count(sections.len(), &mut writer)?;
    for section in sections {
        encode_count(section.len(), &mut writer)?;
        for entry in section {
            entry.encode(&mut writer);
        }
    }
    Ok(writer.into_bytes())
}

fn decode_entry_list(reader: &mut Reader<'_>) -> Result<Vec<SyncEntry>, WireError> {
    let count = u32::decode(reader)? as usize;
    let mut entries = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        entries.push(SyncEntry::decode(reader)?);
    }
    Ok(entries)
}

/// Decodes any known payload version into a flat entry list. Entries route
/// to shards by tag on import, so a snapshot written with one shard count
/// restores correctly into a store with any other.
fn decode_payload(bytes: &[u8]) -> Result<Vec<SyncEntry>, WireError> {
    let mut reader = Reader::new(bytes);
    let head = u32::decode(&mut reader)?;
    let entries = if head == VERSIONED_SENTINEL {
        let version = u8::decode(&mut reader)?;
        if version != SNAPSHOT_VERSION {
            // Future/unknown version byte: refuse rather than misparse.
            return Err(WireError::InvalidTag(version));
        }
        let sections = u32::decode(&mut reader)? as usize;
        let mut entries = Vec::new();
        for _ in 0..sections {
            entries.extend(decode_entry_list(&mut reader)?);
        }
        entries
    } else {
        // v1: `head` is the flat entry count.
        let count = head as usize;
        let mut entries = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            entries.push(SyncEntry::decode(&mut reader)?);
        }
        entries
    };
    reader.finish()?;
    Ok(entries)
}

/// Snapshots the entire store (metadata + ciphertexts + hit counts) into a
/// blob sealed to the store enclave's identity. Written in the v2 per-shard
/// section format; [`restore`] also reads legacy v1 (flat-list) snapshots.
///
/// # Errors
///
/// - [`StoreError::Protocol`] if the store holds more entries than the
///   snapshot wire format can describe (more than `u32::MAX`).
pub fn snapshot(platform: &Platform, store: &ResultStore) -> Result<Vec<u8>, StoreError> {
    let sections = store.export_shards();
    let payload = encode_shard_sections(&sections)?;
    Ok(seal(platform, store.enclave(), &SealPolicy::MrEnclave, SNAPSHOT_AAD, &payload)
        .to_bytes())
}

/// Restores a store from a sealed snapshot, preserving hit counts. Accepts
/// both the current v2 (per-shard) and legacy v1 (flat-list) payloads;
/// entries re-route to shards by tag, so the snapshot's shard layout need
/// not match `config.shards`.
///
/// # Errors
///
/// - [`StoreError::Enclave`] if unsealing fails (snapshot from a different
///   store code version or platform, or tampered bytes).
/// - [`StoreError::Protocol`] if the payload is malformed.
pub fn restore(
    platform: &Platform,
    config: StoreConfig,
    sealed_bytes: &[u8],
) -> Result<ResultStore, StoreError> {
    let store = ResultStore::new(platform, config)?;
    let sealed = SealedData::from_bytes(sealed_bytes)?;
    let payload =
        unseal(platform, store.enclave(), &SealPolicy::MrEnclave, SNAPSHOT_AAD, &sealed)?;
    let entries =
        decode_payload(&payload).map_err(|e| StoreError::Protocol(e.to_string()))?;
    store.import_entries(entries);
    Ok(store)
}

/// Validates the outer sealed container without unsealing, returning its
/// size. Only the owner enclave can read the contents.
pub fn snapshot_size(sealed_bytes: &[u8]) -> Option<usize> {
    SealedData::from_bytes(sealed_bytes).ok().map(|s| s.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_enclave::CostModel;
    use speed_wire::{AppId, CompTag, Message, Record};

    fn tag(n: u8) -> CompTag {
        CompTag::from_bytes([n; 32])
    }

    fn record(n: u8) -> Record {
        Record {
            challenge: vec![n; 32],
            wrapped_key: [n; 16],
            nonce: [n; 12],
            boxed_result: vec![n; 40],
        }
    }

    fn populated_store(platform: &Platform) -> ResultStore {
        let store = ResultStore::new(platform, StoreConfig::default()).unwrap();
        for n in 1..=5u8 {
            store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag(n),
                record: record(n),
            });
        }
        // Give entry 1 some popularity.
        for _ in 0..3 {
            store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        }
        store
    }

    /// The checked-in legacy payload: 3 entries written by the v1 (flat
    /// list) encoder — tags `[n; 32]`, records `record(n)`, hits `2n` for
    /// `n` in 1..=3. Regenerate with `encode_entries` if the fixture must
    /// ever change.
    const V1_PAYLOAD: &[u8] = include_bytes!("../tests/fixtures/snapshot_v1_payload.bin");

    #[test]
    fn v1_snapshot_migrates_to_sharded_store() {
        // Sealing is platform-bound, so the fixture holds the raw payload;
        // sealing it here reproduces exactly what a v1-era store wrote.
        let platform = Platform::new(CostModel::no_sgx());
        let v1_store = ResultStore::new(&platform, StoreConfig::default()).unwrap();
        let sealed = seal(
            &platform,
            v1_store.enclave(),
            &SealPolicy::MrEnclave,
            SNAPSHOT_AAD,
            V1_PAYLOAD,
        )
        .to_bytes();
        drop(v1_store);

        let restored = restore(&platform, StoreConfig::default(), &sealed).unwrap();
        assert_eq!(restored.stats().entries, 3);
        // Hit counts survive the migration: tag 3 carried 6 hits.
        let popular = restored.export_popular(6);
        assert_eq!(popular.len(), 1);
        assert_eq!(popular[0].tag, tag(3));
        assert_eq!(popular[0].hits, 6);
        // Record bytes intact.
        match restored.handle(Message::GetRequest { app: AppId(1), tag: tag(2) }) {
            Message::GetResponse(body) => {
                assert_eq!(body.record.unwrap().boxed_result, vec![2u8; 40]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fixture_matches_v1_encoder() {
        // Guards the fixture against drift: the in-tree v1 encoder still
        // produces byte-identical output for the documented contents.
        let entries: Vec<SyncEntry> = (1..=3u8)
            .map(|n| SyncEntry { tag: tag(n), record: record(n), hits: u64::from(n) * 2 })
            .collect();
        assert_eq!(encode_entries(&entries).unwrap(), V1_PAYLOAD);
    }

    #[test]
    fn v2_snapshot_restores_across_shard_counts() {
        let platform = Platform::new(CostModel::no_sgx());
        let store = populated_store(&platform);
        let sealed = snapshot(&platform, &store).unwrap();
        drop(store);
        // Restore into a store with a different shard layout: entries
        // re-route by tag.
        let restored =
            restore(&platform, StoreConfig::default().with_shards(3), &sealed).unwrap();
        assert_eq!(restored.shard_count(), 3);
        assert_eq!(restored.stats().entries, 5);
        let popular = restored.export_popular(3);
        assert_eq!(popular.len(), 1);
        assert_eq!(popular[0].tag, tag(1));
    }

    #[test]
    fn unknown_snapshot_version_rejected() {
        let platform = Platform::new(CostModel::no_sgx());
        let store = ResultStore::new(&platform, StoreConfig::default()).unwrap();
        let mut payload = Vec::new();
        let mut writer = Writer::new();
        VERSIONED_SENTINEL.encode(&mut writer);
        99u8.encode(&mut writer); // far-future version
        payload.extend(writer.into_bytes());
        let sealed = seal(
            &platform,
            store.enclave(),
            &SealPolicy::MrEnclave,
            SNAPSHOT_AAD,
            &payload,
        )
        .to_bytes();
        let result = restore(&platform, StoreConfig::default(), &sealed);
        assert!(matches!(result, Err(StoreError::Protocol(_))));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let platform = Platform::new(CostModel::no_sgx());
        let store = populated_store(&platform);
        let sealed = snapshot(&platform, &store).unwrap();
        drop(store);

        let restored = restore(&platform, StoreConfig::default(), &sealed).unwrap();
        assert_eq!(restored.stats().entries, 5);
        // Data intact.
        let response =
            restored.handle(Message::GetRequest { app: AppId(2), tag: tag(3) });
        match response {
            Message::GetResponse(body) => {
                assert_eq!(body.record.unwrap().boxed_result, vec![3u8; 40]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Popularity preserved: entry 1 still syncs as popular.
        let popular = restored.export_popular(3);
        assert_eq!(popular.len(), 1);
        assert_eq!(popular[0].tag, tag(1));
    }

    #[test]
    fn tampered_snapshot_rejected() {
        let platform = Platform::new(CostModel::no_sgx());
        let store = populated_store(&platform);
        let mut sealed = snapshot(&platform, &store).unwrap();
        let mid = sealed.len() / 2;
        sealed[mid] ^= 0xFF;
        assert!(restore(&platform, StoreConfig::default(), &sealed).is_err());
    }

    #[test]
    fn snapshot_bound_to_platform() {
        let platform_a = Platform::new(CostModel::no_sgx());
        let platform_b = Platform::new(CostModel::no_sgx());
        let store = populated_store(&platform_a);
        let sealed = snapshot(&platform_a, &store).unwrap();
        assert!(restore(&platform_b, StoreConfig::default(), &sealed).is_err());
    }

    #[test]
    fn empty_store_snapshots_fine() {
        let platform = Platform::new(CostModel::no_sgx());
        let store = ResultStore::new(&platform, StoreConfig::default()).unwrap();
        let sealed = snapshot(&platform, &store).unwrap();
        let restored = restore(&platform, StoreConfig::default(), &sealed).unwrap();
        assert_eq!(restored.stats().entries, 0);
    }

    #[test]
    fn results_recoverable_after_restore() {
        // Full-stack check: an RCE-protected record still decrypts after a
        // seal/restore cycle (the record bytes must be bit-identical).
        let platform = Platform::new(CostModel::no_sgx());
        let store = populated_store(&platform);
        let original =
            match store.handle(Message::GetRequest { app: AppId(1), tag: tag(2) }) {
                Message::GetResponse(body) => body.record.unwrap(),
                other => panic!("unexpected {other:?}"),
            };
        let sealed = snapshot(&platform, &store).unwrap();
        let restored = restore(&platform, StoreConfig::default(), &sealed).unwrap();
        let recovered =
            match restored.handle(Message::GetRequest { app: AppId(9), tag: tag(2) }) {
                Message::GetResponse(body) => body.record.unwrap(),
                other => panic!("unexpected {other:?}"),
            };
        assert_eq!(original, recovered);
    }
}
