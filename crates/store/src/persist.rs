//! Store persistence via enclave sealing.
//!
//! A `ResultStore` restart would otherwise lose every cached result. This
//! module snapshots the dictionary *and* the referenced ciphertexts into a
//! single blob sealed under the store enclave's identity
//! ([`SealPolicy::MrEnclave`]): only a store enclave running the identical
//! code on the same platform can restore it. Records inside are themselves
//! RCE-protected, so sealing here adds rollback/integrity protection for
//! the snapshot as a whole rather than confidentiality of individual
//! results.

use speed_enclave::sealing::{seal, unseal, SealPolicy, SealedData};
use speed_enclave::Platform;
use speed_wire::{Reader, SyncEntry, WireDecode, WireEncode, WireError, Writer};

use crate::store::{ResultStore, StoreConfig};
use crate::StoreError;

const SNAPSHOT_AAD: &[u8] = b"speed-store-snapshot-v1";

fn encode_entries(entries: &[SyncEntry]) -> Result<Vec<u8>, StoreError> {
    let mut writer = Writer::new();
    let count = u32::try_from(entries.len()).map_err(|_| {
        StoreError::Protocol(format!(
            "snapshot too large: {} entries exceed the u32 wire limit",
            entries.len()
        ))
    })?;
    count.encode(&mut writer);
    for entry in entries {
        entry.encode(&mut writer);
    }
    Ok(writer.into_bytes())
}

fn decode_entries(bytes: &[u8]) -> Result<Vec<SyncEntry>, WireError> {
    let mut reader = Reader::new(bytes);
    let count = u32::decode(&mut reader)? as usize;
    let mut entries = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        entries.push(SyncEntry::decode(&mut reader)?);
    }
    reader.finish()?;
    Ok(entries)
}

/// Snapshots the entire store (metadata + ciphertexts + hit counts) into a
/// blob sealed to the store enclave's identity.
///
/// # Errors
///
/// - [`StoreError::Protocol`] if the store holds more entries than the
///   snapshot wire format can describe (more than `u32::MAX`).
pub fn snapshot(platform: &Platform, store: &ResultStore) -> Result<Vec<u8>, StoreError> {
    let entries = store.export_popular(0);
    let payload = encode_entries(&entries)?;
    Ok(seal(platform, store.enclave(), &SealPolicy::MrEnclave, SNAPSHOT_AAD, &payload)
        .to_bytes())
}

/// Restores a store from a sealed snapshot, preserving hit counts.
///
/// # Errors
///
/// - [`StoreError::Enclave`] if unsealing fails (snapshot from a different
///   store code version or platform, or tampered bytes).
/// - [`StoreError::Protocol`] if the payload is malformed.
pub fn restore(
    platform: &Platform,
    config: StoreConfig,
    sealed_bytes: &[u8],
) -> Result<ResultStore, StoreError> {
    let store = ResultStore::new(platform, config)?;
    let sealed = SealedData::from_bytes(sealed_bytes)?;
    let payload =
        unseal(platform, store.enclave(), &SealPolicy::MrEnclave, SNAPSHOT_AAD, &sealed)?;
    let entries =
        decode_entries(&payload).map_err(|e| StoreError::Protocol(e.to_string()))?;
    store.import_entries(entries);
    Ok(store)
}

/// Validates the outer sealed container without unsealing, returning its
/// size. Only the owner enclave can read the contents.
pub fn snapshot_size(sealed_bytes: &[u8]) -> Option<usize> {
    SealedData::from_bytes(sealed_bytes).ok().map(|s| s.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_enclave::CostModel;
    use speed_wire::{AppId, CompTag, Message, Record};

    fn tag(n: u8) -> CompTag {
        CompTag::from_bytes([n; 32])
    }

    fn record(n: u8) -> Record {
        Record {
            challenge: vec![n; 32],
            wrapped_key: [n; 16],
            nonce: [n; 12],
            boxed_result: vec![n; 40],
        }
    }

    fn populated_store(platform: &Platform) -> ResultStore {
        let store = ResultStore::new(platform, StoreConfig::default()).unwrap();
        for n in 1..=5u8 {
            store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag(n),
                record: record(n),
            });
        }
        // Give entry 1 some popularity.
        for _ in 0..3 {
            store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        }
        store
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let platform = Platform::new(CostModel::no_sgx());
        let store = populated_store(&platform);
        let sealed = snapshot(&platform, &store).unwrap();
        drop(store);

        let restored = restore(&platform, StoreConfig::default(), &sealed).unwrap();
        assert_eq!(restored.stats().entries, 5);
        // Data intact.
        let response =
            restored.handle(Message::GetRequest { app: AppId(2), tag: tag(3) });
        match response {
            Message::GetResponse(body) => {
                assert_eq!(body.record.unwrap().boxed_result, vec![3u8; 40]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Popularity preserved: entry 1 still syncs as popular.
        let popular = restored.export_popular(3);
        assert_eq!(popular.len(), 1);
        assert_eq!(popular[0].tag, tag(1));
    }

    #[test]
    fn tampered_snapshot_rejected() {
        let platform = Platform::new(CostModel::no_sgx());
        let store = populated_store(&platform);
        let mut sealed = snapshot(&platform, &store).unwrap();
        let mid = sealed.len() / 2;
        sealed[mid] ^= 0xFF;
        assert!(restore(&platform, StoreConfig::default(), &sealed).is_err());
    }

    #[test]
    fn snapshot_bound_to_platform() {
        let platform_a = Platform::new(CostModel::no_sgx());
        let platform_b = Platform::new(CostModel::no_sgx());
        let store = populated_store(&platform_a);
        let sealed = snapshot(&platform_a, &store).unwrap();
        assert!(restore(&platform_b, StoreConfig::default(), &sealed).is_err());
    }

    #[test]
    fn empty_store_snapshots_fine() {
        let platform = Platform::new(CostModel::no_sgx());
        let store = ResultStore::new(&platform, StoreConfig::default()).unwrap();
        let sealed = snapshot(&platform, &store).unwrap();
        let restored = restore(&platform, StoreConfig::default(), &sealed).unwrap();
        assert_eq!(restored.stats().entries, 0);
    }

    #[test]
    fn results_recoverable_after_restore() {
        // Full-stack check: an RCE-protected record still decrypts after a
        // seal/restore cycle (the record bytes must be bit-identical).
        let platform = Platform::new(CostModel::no_sgx());
        let store = populated_store(&platform);
        let original =
            match store.handle(Message::GetRequest { app: AppId(1), tag: tag(2) }) {
                Message::GetResponse(body) => body.record.unwrap(),
                other => panic!("unexpected {other:?}"),
            };
        let sealed = snapshot(&platform, &store).unwrap();
        let restored = restore(&platform, StoreConfig::default(), &sealed).unwrap();
        let recovered =
            match restored.handle(Message::GetRequest { app: AppId(9), tag: tag(2) }) {
                Message::GetResponse(body) => body.record.unwrap(),
                other => panic!("unexpected {other:?}"),
            };
        assert_eq!(original, recovered);
    }
}
