//! Function descriptions and trusted-library verification.
//!
//! "A direct approach is to connect the code and data together, and then
//! compute the tag via a hash function. But in practice, this might become
//! less effective when considering the difference caused by developer or
//! compiler […]. Therefore, to enhance the adaptability, our DedupRuntime
//! takes the following two inputs. The first one is the *description* of a
//! marked function, which includes library family, version number, function
//! signature […]. With these, DedupRuntime can verify that the application
//! indeed owns the actual code of the function by scanning the underlying
//! trusted library, and derive a universally unique value for function
//! identification." (§IV-B)

use std::collections::HashMap;
use std::fmt;

use speed_crypto::{Digest, Sha256};

/// The developer-facing description of a deduplicable function, e.g.
/// `("zlib", "1.2.11", "int deflate(...)")` as in the paper's Fig. 4.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FuncDesc {
    library: String,
    version: String,
    signature: String,
}

impl FuncDesc {
    /// Describes a function by library family, version, and signature.
    pub fn new(
        library: impl Into<String>,
        version: impl Into<String>,
        signature: impl Into<String>,
    ) -> Self {
        FuncDesc {
            library: library.into(),
            version: version.into(),
            signature: signature.into(),
        }
    }

    /// The library family, e.g. `"zlib"`.
    pub fn library(&self) -> &str {
        &self.library
    }

    /// The library version, e.g. `"1.2.11"`.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// The function signature, e.g. `"int deflate(...)"`.
    pub fn signature(&self) -> &str {
        &self.signature
    }
}

impl fmt::Display for FuncDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(\"{}\", \"{}\", {})", self.library, self.version, self.signature)
    }
}

/// The universally unique value identifying a verified function: binds the
/// description *and* the hash of the actual code found in the trusted
/// library, so identical descriptions over different code never collide.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncIdentity(Digest);

impl FuncIdentity {
    /// The raw 32-byte identity.
    pub fn as_bytes(&self) -> &[u8; 32] {
        self.0.as_bytes()
    }
}

impl fmt::Debug for FuncIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FuncIdentity({}…)", &self.0.to_hex()[..12])
    }
}

/// A trusted library: a named, versioned collection of functions whose code
/// has been ported into the enclave (the paper's footnote: "the required
/// library itself (e.g., zlib) should be available as a trusted library,
/// i.e., properly ported, at the applications").
#[derive(Clone, Debug)]
pub struct TrustedLibrary {
    name: String,
    version: String,
    functions: HashMap<String, Digest>,
}

impl TrustedLibrary {
    /// Creates an empty trusted library.
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> Self {
        TrustedLibrary {
            name: name.into(),
            version: version.into(),
            functions: HashMap::new(),
        }
    }

    /// The library family name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The library version.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Registers a function by signature with its code bytes. The code is
    /// hashed immediately; the bytes are not retained.
    pub fn register(&mut self, signature: impl Into<String>, code: &[u8]) -> &mut Self {
        self.functions
            .insert(signature.into(), Sha256::digest_parts(&[b"func-code", code]));
        self
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the library has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    fn code_hash(&self, signature: &str) -> Option<Digest> {
        self.functions.get(signature).copied()
    }
}

/// The set of trusted libraries registered with one runtime.
#[derive(Clone, Debug, Default)]
pub struct LibraryRegistry {
    libraries: HashMap<(String, String), TrustedLibrary>,
}

impl LibraryRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        LibraryRegistry::default()
    }

    /// Adds a library (replacing any same-name-and-version registration).
    pub fn add(&mut self, library: TrustedLibrary) {
        self.libraries.insert((library.name.clone(), library.version.clone()), library);
    }

    /// Verifies that `desc` names a function present in a registered
    /// trusted library, returning its unique identity.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::FunctionNotTrusted`] if the library or
    /// function is unknown.
    pub fn resolve(&self, desc: &FuncDesc) -> Result<FuncIdentity, crate::CoreError> {
        let library = self
            .libraries
            .get(&(desc.library.clone(), desc.version.clone()))
            .ok_or_else(|| crate::CoreError::FunctionNotTrusted {
            library: desc.library.clone(),
            signature: desc.signature.clone(),
        })?;
        let code_hash = library.code_hash(&desc.signature).ok_or_else(|| {
            crate::CoreError::FunctionNotTrusted {
                library: desc.library.clone(),
                signature: desc.signature.clone(),
            }
        })?;
        Ok(FuncIdentity(Sha256::digest_parts(&[
            b"func-identity",
            desc.library.as_bytes(),
            desc.version.as_bytes(),
            desc.signature.as_bytes(),
            code_hash.as_bytes(),
        ])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with(signature: &str, code: &[u8]) -> LibraryRegistry {
        let mut library = TrustedLibrary::new("zlib", "1.2.11");
        library.register(signature, code);
        let mut registry = LibraryRegistry::new();
        registry.add(library);
        registry
    }

    #[test]
    fn resolve_known_function() {
        let registry = registry_with("int deflate(...)", b"deflate-code");
        let desc = FuncDesc::new("zlib", "1.2.11", "int deflate(...)");
        assert!(registry.resolve(&desc).is_ok());
    }

    #[test]
    fn unknown_library_is_rejected() {
        let registry = registry_with("int deflate(...)", b"code");
        let desc = FuncDesc::new("libpng", "1.0", "png_read(...)");
        assert!(matches!(
            registry.resolve(&desc),
            Err(crate::CoreError::FunctionNotTrusted { .. })
        ));
    }

    #[test]
    fn unknown_signature_is_rejected() {
        let registry = registry_with("int deflate(...)", b"code");
        let desc = FuncDesc::new("zlib", "1.2.11", "int inflate(...)");
        assert!(registry.resolve(&desc).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let registry = registry_with("int deflate(...)", b"code");
        let desc = FuncDesc::new("zlib", "1.2.12", "int deflate(...)");
        assert!(registry.resolve(&desc).is_err());
    }

    #[test]
    fn identity_depends_on_code() {
        let r1 = registry_with("f()", b"code v1");
        let r2 = registry_with("f()", b"code v2");
        let desc = FuncDesc::new("zlib", "1.2.11", "f()");
        assert_ne!(
            r1.resolve(&desc).unwrap().as_bytes(),
            r2.resolve(&desc).unwrap().as_bytes()
        );
    }

    #[test]
    fn identity_is_stable_across_registries() {
        let r1 = registry_with("f()", b"same code");
        let r2 = registry_with("f()", b"same code");
        let desc = FuncDesc::new("zlib", "1.2.11", "f()");
        assert_eq!(
            r1.resolve(&desc).unwrap().as_bytes(),
            r2.resolve(&desc).unwrap().as_bytes()
        );
    }

    #[test]
    fn identity_depends_on_signature_and_version() {
        let mut library = TrustedLibrary::new("lib", "1");
        library.register("f()", b"code");
        library.register("g()", b"code");
        let mut registry = LibraryRegistry::new();
        registry.add(library.clone());
        let f = registry.resolve(&FuncDesc::new("lib", "1", "f()")).unwrap();
        let g = registry.resolve(&FuncDesc::new("lib", "1", "g()")).unwrap();
        assert_ne!(f.as_bytes(), g.as_bytes());
    }

    #[test]
    fn display_matches_paper_notation() {
        let desc = FuncDesc::new("zlib", "1.2.11", "int deflate(...)");
        assert_eq!(desc.to_string(), "(\"zlib\", \"1.2.11\", int deflate(...))");
    }

    #[test]
    fn library_len_tracks_registration() {
        let mut library = TrustedLibrary::new("lib", "1");
        assert!(library.is_empty());
        library.register("a()", b"1").register("b()", b"2");
        assert_eq!(library.len(), 2);
    }
}
