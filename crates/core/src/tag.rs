//! Tag and secondary-key derivation (Algorithm 1 lines 1 and 6).

// hot-path: deny-clone

use speed_crypto::Sha256;
use speed_wire::CompTag;

use crate::func::FuncIdentity;

/// Derives the duplicate-checking tag `t ← Hash(func, m)`.
///
/// Two computations are considered duplicates iff their tags are equal, so
/// the tag binds both the verified function identity and the serialized
/// input (length-prefixed to rule out concatenation ambiguity).
pub fn tag_for(func: &FuncIdentity, input: &[u8]) -> CompTag {
    let digest = Sha256::digest_parts(&[b"comp-tag", func.as_bytes(), input]);
    CompTag::from_bytes(digest.into_bytes())
}

/// Derives the secondary key `h ← Hash(func, m, r)` that wraps the random
/// result-encryption key. Truncated to 16 bytes to match the AES-128 key it
/// pads (Algorithm 1 line 6, Algorithm 2 line 4).
pub fn secondary_key(func: &FuncIdentity, input: &[u8], challenge: &[u8]) -> [u8; 16] {
    Sha256::digest_parts(&[b"secondary-key", func.as_bytes(), input, challenge])
        .truncate16()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{FuncDesc, LibraryRegistry, TrustedLibrary};

    fn identity(code: &[u8]) -> FuncIdentity {
        let mut library = TrustedLibrary::new("lib", "1");
        library.register("f()", code);
        let mut registry = LibraryRegistry::new();
        registry.add(library);
        registry.resolve(&FuncDesc::new("lib", "1", "f()")).unwrap()
    }

    #[test]
    fn same_func_same_input_same_tag() {
        let f = identity(b"code");
        assert_eq!(tag_for(&f, b"input"), tag_for(&f, b"input"));
    }

    #[test]
    fn different_input_different_tag() {
        let f = identity(b"code");
        assert_ne!(tag_for(&f, b"input-a"), tag_for(&f, b"input-b"));
    }

    #[test]
    fn different_code_different_tag() {
        assert_ne!(
            tag_for(&identity(b"code v1"), b"input"),
            tag_for(&identity(b"code v2"), b"input")
        );
    }

    #[test]
    fn secondary_key_depends_on_challenge() {
        let f = identity(b"code");
        let h1 = secondary_key(&f, b"input", b"challenge-1");
        let h2 = secondary_key(&f, b"input", b"challenge-2");
        assert_ne!(h1, h2);
    }

    #[test]
    fn secondary_key_depends_on_func_and_input() {
        let f = identity(b"code");
        let g = identity(b"other");
        let r = b"challenge";
        assert_ne!(secondary_key(&f, b"input", r), secondary_key(&g, b"input", r));
        assert_ne!(secondary_key(&f, b"a", r), secondary_key(&f, b"b", r));
    }

    #[test]
    fn tag_and_secondary_key_are_domain_separated() {
        // Even with identical material, the tag and h must differ.
        let f = identity(b"code");
        let tag = tag_for(&f, b"m");
        let h = secondary_key(&f, b"m", b"");
        assert_ne!(&tag.as_bytes()[..16], &h);
    }
}
