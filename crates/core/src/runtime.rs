//! The secure deduplication runtime (§IV-B).
//!
//! `DedupRuntime` is "a trusted library linked against application enclaves"
//! that intercepts marked computations, performs duplicate checking against
//! the `ResultStore`, and either reuses the stored result or executes the
//! function and publishes the encrypted result. GETs are synchronous (the
//! OCALL waits for the `GET_RESPONSE`); PUTs can be processed "in a
//! separated thread for better efficiency" — the asynchronous PUT worker.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};

use speed_crypto::{Key128, SystemRng};
use speed_enclave::{Enclave, Platform};
use speed_store::ResultStore;
use speed_telemetry::{names, Counter, Histogram};
use speed_wire::{
    AppId, BatchItem, BatchStatus, CompTag, Message, NegativeFilter, SessionAuthority,
    StatsBody,
};

use crate::client::{InProcessClient, StoreClient, TcpClient};
use crate::error::CoreError;
use crate::func::{FuncDesc, FuncIdentity, LibraryRegistry, TrustedLibrary};
use crate::hotcache::{HotCacheConfig, HotTagCache};
use crate::policy::{AdaptiveProfiler, DedupPolicy, PolicyDecision};
use crate::prefilter::prefilter_tag;
use crate::rce;
use crate::resilience::{
    Connector, ReplayQueue, ResilienceConfig, ResilienceStats, ResilientClient,
};
use crate::result_bytes::ResultBytes;
use crate::tag::tag_for;

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// A panicking marked computation (user closure) must not take the whole
/// runtime down with it: every critical section here is panic-consistent,
/// so later calls recover the guard and keep working.
fn lock_recover<T: ?Sized>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How results are protected before leaving the enclave.
#[derive(Clone, Debug)]
pub enum DedupMode {
    /// The main design (§III-C): cross-application RCE, no shared key.
    CrossApp,
    /// The basic design (§III-B): one system-wide secret key. Only
    /// applications configured with the same key can reuse results, and a
    /// single compromise exposes everything — kept for the ablation
    /// experiments.
    SingleKey(Key128),
    /// Classic deterministic convergent encryption (`k = H(func, m)`).
    /// Cheaper than RCE by one hash and the key wrap, but offline
    /// brute-force confirmable for predictable computations — see
    /// [`crate::rce::encrypt_result_convergent`]. For the scheme ablation.
    Convergent,
}

/// What happened on one marked function call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DedupOutcome {
    /// The result was found and reused without executing the function.
    Hit,
    /// The computation was fresh: executed and published.
    Miss,
    /// A record existed but failed the Fig. 3 verification protocol (wrong
    /// code/input binding or tampering); the function was executed locally
    /// and nothing was published.
    MissAfterFailedVerify,
    /// The adaptive policy decided deduplication cannot pay off for this
    /// function; it was executed directly without consulting the store.
    BypassedByPolicy,
    /// The result was served from the in-enclave hot-tag cache: no enclave
    /// transition for the lookup, no store round-trip at all. Only occurs
    /// when [`RuntimeBuilder::hot_cache`] is enabled.
    HitLocalCache,
    /// The negative filter proved no stored result exists, so the GET
    /// round-trip was skipped entirely: the function executed and its
    /// result was published, exactly like [`DedupOutcome::Miss`], minus
    /// the wasted store round-trip. Only occurs when
    /// [`RuntimeBuilder::prefilter`] is enabled.
    MissFiltered,
}

/// The boxed compute fallback carried by a [`BatchCall`].
pub type BatchCompute<'a> = Box<dyn FnOnce(&[u8]) -> Vec<u8> + 'a>;

/// One marked call in a [`DedupRuntime::execute_batch`] batch: the verified
/// function identity, the serialized input, and the compute fallback for
/// when no stored result can be reused.
pub struct BatchCall<'a> {
    /// The verified function identity (see [`DedupRuntime::resolve`]).
    pub identity: FuncIdentity,
    /// Serialized input bytes.
    pub input: &'a [u8],
    /// Executed (inside the enclave) when the stored result cannot be
    /// reused for this item.
    pub compute: BatchCompute<'a>,
}

impl<'a> BatchCall<'a> {
    /// Creates a batch call.
    pub fn new(
        identity: FuncIdentity,
        input: &'a [u8],
        compute: impl FnOnce(&[u8]) -> Vec<u8> + 'a,
    ) -> Self {
        BatchCall { identity, input, compute: Box::new(compute) }
    }
}

impl std::fmt::Debug for BatchCall<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchCall")
            .field("input_len", &self.input.len())
            .finish_non_exhaustive()
    }
}

/// Counters describing a runtime's activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Marked calls intercepted.
    pub calls: u64,
    /// Calls satisfied from the store.
    pub hits: u64,
    /// Calls that executed the function.
    pub misses: u64,
    /// Records that failed result verification.
    pub verify_failures: u64,
    /// PUTs rejected by the store (quota etc.).
    pub rejected_puts: u64,
    /// Plaintext result bytes reused instead of recomputed.
    pub reused_bytes: u64,
    /// Calls executed directly because the adaptive policy bypassed
    /// deduplication.
    pub bypasses: u64,
    /// Calls that fell back to local execution (or queued their PUT for
    /// replay) because the store was unreachable. Always zero without the
    /// resilience layer.
    pub degraded_calls: u64,
    /// Store round-trip attempts retried by the resilience layer.
    pub retries: u64,
    /// Circuit-breaker state transitions (closed/open/half-open).
    pub breaker_transitions: u64,
    /// Queued PUTs delivered after the store recovered.
    pub replayed_puts: u64,
    /// Calls satisfied by the in-enclave hot-tag cache (no store
    /// round-trip). Always zero unless the cache is enabled.
    pub cache_hits: u64,
    /// Hot-tag cache lookups that missed. Always zero unless the cache is
    /// enabled.
    pub cache_misses: u64,
    /// Misses whose GET round-trip was skipped because the negative filter
    /// proved no stored result exists. Always zero unless the prefilter
    /// tier is enabled. These calls are also counted in `misses`.
    pub filtered_misses: u64,
}

#[derive(Debug, Default)]
struct AtomicStats {
    calls: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    verify_failures: AtomicU64,
    rejected_puts: AtomicU64,
    reused_bytes: AtomicU64,
    bypasses: AtomicU64,
    degraded_calls: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    filtered_misses: AtomicU64,
}

/// Handles into the process-wide telemetry registry. The per-runtime
/// [`AtomicStats`] stay authoritative for [`DedupRuntime::stats`]; these
/// aggregate the same events across every runtime in the process and add
/// the latency histograms the scalar counters cannot express.
#[derive(Clone, Debug)]
pub(crate) struct RuntimeTelemetry {
    calls: Counter,
    hits: Counter,
    misses: Counter,
    verify_failures: Counter,
    bypasses: Counter,
    rejected_puts: Counter,
    reused_bytes: Counter,
    degraded_calls: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    call_duration: Histogram,
    batch_duration: Histogram,
    tag_derive: Histogram,
    rce_recover: Histogram,
    rce_encrypt: Histogram,
    hotcache_lookup: Histogram,
    prefilter_derive: Histogram,
    prefilter_cache_skips: Counter,
    prefilter_store_skips: Counter,
    prefilter_refreshes: Counter,
    pub(crate) stream_chunks: Counter,
    pub(crate) stream_chunk_hits: Counter,
    pub(crate) stream_bytes: Counter,
    pub(crate) stream_flush_duration: Histogram,
    pub(crate) chunker_forced_cuts: Counter,
}

impl RuntimeTelemetry {
    fn from_global() -> Self {
        let reg = speed_telemetry::global();
        RuntimeTelemetry {
            calls: reg.counter(names::DEDUP_CALLS_TOTAL, "Marked calls intercepted"),
            hits: reg.counter(
                names::DEDUP_HITS_TOTAL,
                "Calls satisfied from the store (dedup hits)",
            ),
            misses: reg.counter(
                names::DEDUP_MISSES_TOTAL,
                "Calls that executed the function (initial computations)",
            ),
            verify_failures: reg.counter(
                names::DEDUP_VERIFY_FAILURES_TOTAL,
                "Records that failed the result-verification protocol",
            ),
            bypasses: reg.counter(
                names::DEDUP_BYPASSES_TOTAL,
                "Calls executed directly because the adaptive policy bypassed dedup",
            ),
            rejected_puts: reg.counter(
                names::DEDUP_REJECTED_PUTS_TOTAL,
                "PUTs the store rejected (quota, enclave memory, races)",
            ),
            reused_bytes: reg.counter(
                names::DEDUP_REUSED_BYTES_TOTAL,
                "Plaintext result bytes reused instead of recomputed",
            ),
            degraded_calls: reg.counter(
                names::DEDUP_DEGRADED_CALLS_TOTAL,
                "Calls that degraded to local execution during a store outage",
            ),
            cache_hits: reg.counter(
                names::DEDUP_CACHE_HITS_TOTAL,
                "Lookups answered by the in-enclave hot-tag cache",
            ),
            cache_misses: reg.counter(
                names::DEDUP_CACHE_MISSES_TOTAL,
                "Hot-tag cache lookups that missed",
            ),
            call_duration: reg.histogram(
                names::DEDUP_CALL_DURATION_NS,
                "End-to-end latency of one marked call",
            ),
            batch_duration: reg.histogram(
                names::DEDUP_BATCH_DURATION_NS,
                "End-to-end latency of one execute_batch invocation",
            ),
            tag_derive: reg.histogram(
                names::TAG_DERIVE_DURATION_NS,
                "Deriving the tag Hash(func, m) inside the enclave",
            ),
            rce_recover: reg.histogram(
                names::RCE_RECOVER_DURATION_NS,
                "RCE key recovery, result decryption, and verification",
            ),
            rce_encrypt: reg.histogram(
                names::RCE_ENCRYPT_DURATION_NS,
                "RCE result encryption before publishing",
            ),
            hotcache_lookup: reg.histogram(
                names::HOTCACHE_LOOKUP_DURATION_NS,
                "In-enclave hot-tag cache lookup (hit or miss)",
            ),
            prefilter_derive: reg.histogram(
                names::TAG_PREFILTER_DERIVE_DURATION_NS,
                "Deriving the sampled 64-bit prefilter tag",
            ),
            prefilter_cache_skips: reg.counter(
                names::TAG_PREFILTER_CACHE_SKIPS_TOTAL,
                "Hot-cache probes skipped because the prefilter proved absence",
            ),
            prefilter_store_skips: reg.counter(
                names::TAG_PREFILTER_STORE_SKIPS_TOTAL,
                "Store GETs skipped because the negative filter proved absence",
            ),
            prefilter_refreshes: reg.counter(
                names::TAG_PREFILTER_REFRESHES_TOTAL,
                "Negative-filter snapshots fetched from the store",
            ),
            stream_chunks: reg.counter(
                names::STREAM_CHUNKS_TOTAL,
                "Chunks processed by streaming dedup sessions",
            ),
            stream_chunk_hits: reg.counter(
                names::STREAM_CHUNK_HITS_TOTAL,
                "Stream chunks satisfied without executing the function",
            ),
            stream_bytes: reg.counter(
                names::STREAM_BYTES_TOTAL,
                "Input bytes consumed by streaming dedup sessions",
            ),
            stream_flush_duration: reg.histogram(
                names::STREAM_FLUSH_DURATION_NS,
                "One mid-stream or final chunk-batch flush",
            ),
            chunker_forced_cuts: reg.counter(
                names::CHUNKER_FORCED_CUTS_TOTAL,
                "Chunk cuts forced by the max bound instead of content",
            ),
        }
    }
}

/// Shared state between a runtime and its resilience-wrapped clients.
#[derive(Debug)]
struct ResilienceHandles {
    stats: Arc<ResilienceStats>,
    replay: Arc<ReplayQueue>,
}

/// Configuration for the tiered tag pipeline ([`RuntimeBuilder::prefilter`]).
///
/// When enabled, every marked call derives a cheap 64-bit
/// [`prefilter tag`](crate::prefilter::prefilter_tag) before the full
/// SHA-256 comp-tag and consults it against the in-enclave hot cache and a
/// merged snapshot of the store's per-shard negative filters. A *definite
/// miss* skips the store GET round-trip; [`DedupRuntime::lookup`] skips the
/// full SHA-256 as well. The filters are conservative (never a false
/// negative), so the full comp-tag remains the sole correctness authority.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefilterConfig {
    /// The staleness budget: refresh the merged negative filter from the
    /// store after this many consults. The first consult always fetches.
    /// Staleness is safe in only one direction — entries published since
    /// the last refresh can cause a skipped GET on what would have been a
    /// hit (a wasted recompute), never a wrong answer.
    pub refresh_ops: u64,
}

impl Default for PrefilterConfig {
    fn default() -> Self {
        PrefilterConfig { refresh_ops: 1024 }
    }
}

/// Client-side view of the store's negative filters: every per-shard filter
/// ORed into one, refreshed from the store on the staleness budget.
#[derive(Debug)]
struct ClientFilter {
    /// The merged filter, `None` until the first successful refresh (which
    /// conservatively proves nothing absent).
    merged: Option<NegativeFilter>,
    /// Store epoch of the last snapshot (observability only).
    epoch: u64,
    /// Consults since the last refresh attempt.
    ops_since_refresh: u64,
    config: PrefilterConfig,
}

/// ORs the store's per-shard filters into one client-side view. Shard
/// shapes always agree (the store sizes them identically), but a mismatch
/// just marks the merge incomplete — conservative, never wrong.
fn merge_shard_filters(shards: Vec<NegativeFilter>) -> Option<NegativeFilter> {
    let mut iter = shards.into_iter();
    let mut merged = iter.next()?;
    for shard in iter {
        merged.merge_from(&shard);
    }
    Some(merged)
}

/// The asynchronous PUT worker: a background thread draining a channel of
/// `PUT_REQUEST`s through its own store connection.
struct AsyncPutter {
    sender: Option<Sender<Message>>,
    pending: Arc<(Mutex<u64>, Condvar)>,
    rejected: Arc<AtomicU64>,
    degraded: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for AsyncPutter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncPutter").finish_non_exhaustive()
    }
}

impl AsyncPutter {
    fn spawn(
        mut client: Box<dyn StoreClient>,
        replay: Option<Arc<ReplayQueue>>,
        telemetry: RuntimeTelemetry,
    ) -> Self {
        let (sender, receiver) = mpsc::channel::<Message>();
        let pending = Arc::new((Mutex::new(0u64), Condvar::new()));
        let rejected = Arc::new(AtomicU64::new(0));
        let degraded = Arc::new(AtomicU64::new(0));
        let pending_worker = Arc::clone(&pending);
        let rejected_worker = Arc::clone(&rejected);
        let degraded_worker = Arc::clone(&degraded);
        let handle = std::thread::spawn(move || {
            while let Ok(message) = receiver.recv() {
                let response = client.roundtrip(&message);
                match response {
                    Ok(Message::PutResponse(body)) if !body.accepted => {
                        rejected_worker.fetch_add(1, Ordering::Relaxed);
                        telemetry.rejected_puts.inc();
                    }
                    Ok(Message::BatchResponse(results)) => {
                        let rejected = results
                            .iter()
                            .filter(|r| r.status == BatchStatus::Rejected)
                            .count() as u64;
                        rejected_worker.fetch_add(rejected, Ordering::Relaxed);
                        telemetry.rejected_puts.add(rejected);
                    }
                    Err(CoreError::StoreUnavailable(_)) => {
                        // Graceful degradation: park the PUT for replay once
                        // the store answers again. Without the resilience
                        // layer the failure is dropped (legacy behavior).
                        if let Some(replay) = &replay {
                            degraded_worker.fetch_add(1, Ordering::Relaxed);
                            telemetry.degraded_calls.inc();
                            match message {
                                // A failed batch degrades item by item, so
                                // partial replay capacity still saves the
                                // newest results.
                                Message::BatchRequest { app, items } => {
                                    for item in items {
                                        match item {
                                            BatchItem::Put { tag, record } => {
                                                replay.push(Message::PutRequest {
                                                    app,
                                                    tag,
                                                    record,
                                                });
                                            }
                                            BatchItem::PutPrefiltered {
                                                tag,
                                                prefilter,
                                                record,
                                            } => {
                                                replay.push(Message::PutPrefiltered {
                                                    app,
                                                    tag,
                                                    prefilter,
                                                    record,
                                                });
                                            }
                                            BatchItem::Get { .. }
                                            | BatchItem::GetPrefiltered { .. } => {}
                                        }
                                    }
                                }
                                other => {
                                    replay.push(other);
                                }
                            }
                        }
                    }
                    _ => {}
                }
                let (lock, cvar) = &*pending_worker;
                let mut count = lock_recover(lock);
                *count -= 1;
                cvar.notify_all();
            }
        });
        AsyncPutter {
            sender: Some(sender),
            pending,
            rejected,
            degraded,
            handle: Some(handle),
        }
    }

    fn submit(&self, message: Message) -> Result<(), CoreError> {
        let (lock, _) = &*self.pending;
        *lock_recover(lock) += 1;
        match self.sender.as_ref().expect("sender lives until drop").send(message) {
            Ok(()) => Ok(()),
            Err(_) => {
                let (lock, cvar) = &*self.pending;
                *lock_recover(lock) -= 1;
                cvar.notify_all();
                Err(CoreError::AsyncPutClosed)
            }
        }
    }

    fn flush(&self) {
        let (lock, cvar) = &*self.pending;
        let mut count = lock_recover(lock);
        while *count > 0 {
            count = cvar.wait(count).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl Drop for AsyncPutter {
    fn drop(&mut self) {
        self.sender.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

enum ClientSpec {
    InProcess {
        store: Arc<ResultStore>,
        authority: Arc<SessionAuthority>,
    },
    InProcessRemote {
        store: Arc<ResultStore>,
        authority: Arc<SessionAuthority>,
        store_platform: Arc<Platform>,
    },
    Tcp {
        addr: std::net::SocketAddr,
        authority: Arc<SessionAuthority>,
    },
    // The Mutex cell makes the spec Sync so reconnect closures can share
    // it; the client is taken out (once) at build time.
    Custom(Mutex<Option<Box<dyn StoreClient>>>),
    Factory(Arc<Mutex<Connector>>),
}

impl std::fmt::Debug for ClientSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ClientSpec::InProcess { .. } => "InProcess",
            ClientSpec::InProcessRemote { .. } => "InProcessRemote",
            ClientSpec::Tcp { .. } => "Tcp",
            ClientSpec::Custom(_) => "Custom",
            ClientSpec::Factory(_) => "Factory",
        };
        write!(f, "ClientSpec::{name}")
    }
}

/// Builder for [`DedupRuntime`].
#[derive(Debug)]
pub struct RuntimeBuilder {
    platform: Arc<Platform>,
    app_code: Vec<u8>,
    client_spec: Option<ClientSpec>,
    registry: LibraryRegistry,
    mode: DedupMode,
    policy: DedupPolicy,
    async_put: bool,
    app_id: Option<u64>,
    rng_seed: Option<u64>,
    resilience: Option<ResilienceConfig>,
    hot_cache: Option<HotCacheConfig>,
    prefilter: Option<PrefilterConfig>,
}

impl RuntimeBuilder {
    fn new(platform: Arc<Platform>, app_code: &[u8]) -> Self {
        RuntimeBuilder {
            platform,
            app_code: app_code.to_vec(),
            client_spec: None,
            registry: LibraryRegistry::new(),
            mode: DedupMode::CrossApp,
            policy: DedupPolicy::Always,
            async_put: false,
            app_id: None,
            rng_seed: None,
            resilience: None,
            hot_cache: None,
            prefilter: None,
        }
    }

    /// Connects to an in-process store co-located on the same platform.
    pub fn in_process_store(
        mut self,
        store: Arc<ResultStore>,
        authority: Arc<SessionAuthority>,
    ) -> Self {
        self.client_spec = Some(ClientSpec::InProcess { store, authority });
        self
    }

    /// Connects to a store whose enclave lives on another platform (the
    /// two-machine deployment) without going through TCP.
    pub fn remote_store(
        mut self,
        store: Arc<ResultStore>,
        authority: Arc<SessionAuthority>,
        store_platform: Arc<Platform>,
    ) -> Self {
        self.client_spec =
            Some(ClientSpec::InProcessRemote { store, authority, store_platform });
        self
    }

    /// Connects to a TCP store server.
    pub fn tcp_store(
        mut self,
        addr: std::net::SocketAddr,
        authority: Arc<SessionAuthority>,
    ) -> Self {
        self.client_spec = Some(ClientSpec::Tcp { addr, authority });
        self
    }

    /// Uses a custom [`StoreClient`] (e.g. a test double). Asynchronous PUT
    /// is unavailable with a custom client.
    pub fn client(mut self, client: Box<dyn StoreClient>) -> Self {
        self.client_spec = Some(ClientSpec::Custom(Mutex::new(Some(client))));
        self
    }

    /// Uses a connector factory producing freshly connected clients. Each
    /// invocation must run the full handshake, which makes reconnection —
    /// and therefore [`RuntimeBuilder::resilience`] and asynchronous PUT —
    /// available for arbitrary client types (chaos wrappers, test doubles).
    pub fn client_factory(mut self, factory: Connector) -> Self {
        self.client_spec = Some(ClientSpec::Factory(Arc::new(Mutex::new(factory))));
        self
    }

    /// Routes every store round-trip through a multi-node
    /// [`ClusterClient`](crate::cluster::ClusterClient): consistent-hash
    /// routing, R-way replication, and per-node failover re-attestation.
    /// Clones of the handle share ring, hints, and breaker state, so the
    /// synchronous path and the asynchronous PUT worker cooperate; the
    /// cluster already fails over between replicas, while
    /// [`RuntimeBuilder::resilience`] composes on top as the outer line of
    /// defence for whole-cluster outages.
    pub fn cluster_store(self, cluster: crate::cluster::ClusterClient) -> Self {
        self.client_factory(Box::new(move || {
            Ok(Box::new(cluster.clone()) as Box<dyn StoreClient>)
        }))
    }

    /// Wraps every store client in the fault-tolerant resilience layer:
    /// retry with capped exponential backoff, transparent reconnect with
    /// re-attestation, a circuit breaker, and graceful degradation (GETs
    /// fall back to local execution, PUTs are queued for replay). With
    /// this enabled, store outages never fail a marked call.
    pub fn resilience(mut self, config: ResilienceConfig) -> Self {
        self.resilience = Some(config);
        self
    }

    /// Registers a trusted library whose functions may be marked.
    pub fn trusted_library(mut self, library: TrustedLibrary) -> Self {
        self.registry.add(library);
        self
    }

    /// Selects the result-protection mode (default: [`DedupMode::CrossApp`]).
    pub fn mode(mut self, mode: DedupMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the deduplication policy (default: [`DedupPolicy::Always`]).
    /// [`DedupPolicy::Adaptive`] implements the paper's §VII future
    /// direction: per-function dynamic analysis of whether deduplication
    /// pays off.
    pub fn policy(mut self, policy: DedupPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the asynchronous PUT worker thread.
    pub fn async_put(mut self, enabled: bool) -> Self {
        self.async_put = enabled;
        self
    }

    /// Overrides the application id (defaults to the enclave id).
    pub fn app_id(mut self, id: u64) -> Self {
        self.app_id = Some(id);
        self
    }

    /// Seeds the runtime RNG for reproducible experiments.
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = Some(seed);
        self
    }

    /// Enables the bounded in-enclave hot-tag cache: a result recently
    /// resolved for a tag — reused from the store or computed locally — is
    /// answered again with no enclave transition and no store round-trip.
    /// Off by default because the cache competes with the application for
    /// EPC; its pages are charged against the enclave's memory budget.
    pub fn hot_cache(mut self, config: HotCacheConfig) -> Self {
        self.hot_cache = Some(config);
        self
    }

    /// Enables the tiered tag pipeline: a cheap sampled prefilter tag gates
    /// the hot-cache probe, and a merged snapshot of the store's negative
    /// filters lets definite-miss calls skip the GET round-trip (and lets
    /// [`DedupRuntime::lookup`] skip the full SHA-256 entirely). Off by
    /// default: the extra tier changes the per-call transition profile, so
    /// existing deployments opt in explicitly.
    pub fn prefilter(mut self, config: PrefilterConfig) -> Self {
        self.prefilter = Some(config);
        self
    }

    /// Creates the application enclave, connects the store client(s), and
    /// builds the runtime.
    ///
    /// # Errors
    ///
    /// - [`CoreError::UnexpectedResponse`] if no store was configured, or
    ///   async PUT was requested with a custom client.
    /// - [`CoreError::Enclave`] / [`CoreError::Channel`] /
    ///   [`CoreError::Store`] on enclave creation or connection failure.
    pub fn build(self) -> Result<Arc<DedupRuntime>, CoreError> {
        let enclave = self.platform.create_enclave(&self.app_code)?;
        let spec = self.client_spec.ok_or_else(|| {
            CoreError::UnexpectedResponse("no store configured on builder".into())
        })?;

        let resilience_handles =
            self.resilience.as_ref().map(|config| ResilienceHandles {
                stats: Arc::new(ResilienceStats::default()),
                replay: Arc::new(ReplayQueue::new(config.replay_capacity)),
            });

        let (main_client, async_putter) = match spec {
            ClientSpec::Custom(cell) => {
                let client = cell
                    .into_inner()
                    .expect("custom client cell poisoned")
                    .expect("custom client present until build");
                if self.resilience.is_some() {
                    return Err(CoreError::UnexpectedResponse(
                        "resilience requires a reconnectable store client; use \
                         client_factory instead of client"
                            .into(),
                    ));
                }
                if self.async_put {
                    return Err(CoreError::UnexpectedResponse(
                        "async put requires a reconnectable store client".into(),
                    ));
                }
                (client, None)
            }
            spec => {
                let spec = Arc::new(spec);
                let build_client =
                    |salt: u64| -> Result<Box<dyn StoreClient>, CoreError> {
                        match (&self.resilience, &resilience_handles) {
                            (Some(config), Some(handles)) => {
                                let mut config = config.clone();
                                // Distinct jitter streams per client so the sync
                                // path and the PUT worker do not back off in
                                // lockstep.
                                config.jitter_seed = config.jitter_seed.map(|s| s ^ salt);
                                Ok(Box::new(ResilientClient::new(
                                    Self::connector_for(&spec, &self.platform, &enclave),
                                    config,
                                    Arc::clone(&handles.stats),
                                    Arc::clone(&handles.replay),
                                )))
                            }
                            _ => Self::make_client(&spec, &self.platform, &enclave),
                        }
                    };
                let main_client = build_client(0)?;
                let async_putter = if self.async_put {
                    let put_client = build_client(0xA5)?;
                    let replay =
                        resilience_handles.as_ref().map(|h| Arc::clone(&h.replay));
                    Some(AsyncPutter::spawn(
                        put_client,
                        replay,
                        RuntimeTelemetry::from_global(),
                    ))
                } else {
                    None
                };
                (main_client, async_putter)
            }
        };

        let app_id = AppId(self.app_id.unwrap_or_else(|| enclave.id()));
        let rng = match self.rng_seed {
            Some(seed) => SystemRng::seeded(seed),
            None => SystemRng::new(),
        };

        Ok(Arc::new(DedupRuntime {
            enclave,
            app_id,
            registry: self.registry,
            client: Mutex::new(main_client),
            mode: self.mode,
            policy: self.policy,
            profiler: AdaptiveProfiler::new(),
            rng: Mutex::new(rng),
            stats: AtomicStats::default(),
            telemetry: RuntimeTelemetry::from_global(),
            async_putter,
            resilience: resilience_handles,
            hot_cache: self.hot_cache.map(|c| Mutex::new(HotTagCache::new(c))),
            prefilter: self.prefilter.map(|config| {
                Mutex::new(ClientFilter {
                    merged: None,
                    epoch: 0,
                    ops_since_refresh: 0,
                    config,
                })
            }),
        }))
    }

    /// A connector that rebuilds a client from `spec` on every call — for
    /// TCP that means a fresh attested handshake with a new session key.
    fn connector_for(
        spec: &Arc<ClientSpec>,
        platform: &Arc<Platform>,
        enclave: &Arc<Enclave>,
    ) -> Connector {
        let spec = Arc::clone(spec);
        let platform = Arc::clone(platform);
        let enclave = Arc::clone(enclave);
        Box::new(move || Self::make_client(&spec, &platform, &enclave))
    }

    fn make_client(
        spec: &ClientSpec,
        platform: &Arc<Platform>,
        enclave: &Arc<Enclave>,
    ) -> Result<Box<dyn StoreClient>, CoreError> {
        match spec {
            ClientSpec::InProcess { store, authority } => {
                Ok(Box::new(InProcessClient::connect(
                    Arc::clone(store),
                    authority,
                    platform,
                    enclave,
                )?))
            }
            ClientSpec::InProcessRemote { store, authority, store_platform } => {
                Ok(Box::new(InProcessClient::connect_remote(
                    Arc::clone(store),
                    authority,
                    platform,
                    enclave,
                    store_platform,
                )?))
            }
            ClientSpec::Tcp { addr, authority } => {
                Ok(Box::new(TcpClient::connect(*addr, platform, enclave, authority)?))
            }
            ClientSpec::Factory(factory) => (lock_recover(factory))(),
            ClientSpec::Custom(_) => Err(CoreError::UnexpectedResponse(
                "custom clients are moved at build time".into(),
            )),
        }
    }
}

/// The secure deduplication runtime linked against one application enclave.
#[derive(Debug)]
pub struct DedupRuntime {
    enclave: Arc<Enclave>,
    app_id: AppId,
    registry: LibraryRegistry,
    client: Mutex<Box<dyn StoreClient>>,
    mode: DedupMode,
    policy: DedupPolicy,
    profiler: AdaptiveProfiler,
    rng: Mutex<SystemRng>,
    stats: AtomicStats,
    telemetry: RuntimeTelemetry,
    async_putter: Option<AsyncPutter>,
    resilience: Option<ResilienceHandles>,
    hot_cache: Option<Mutex<HotTagCache>>,
    prefilter: Option<Mutex<ClientFilter>>,
}

impl DedupRuntime {
    /// Starts building a runtime for an application whose enclave code
    /// identity is `app_code`, hosted on `platform`.
    pub fn builder(platform: Arc<Platform>, app_code: &[u8]) -> RuntimeBuilder {
        RuntimeBuilder::new(platform, app_code)
    }

    /// The application's enclave.
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// Registry handles shared with the streaming session layer.
    pub(crate) fn telemetry(&self) -> &RuntimeTelemetry {
        &self.telemetry
    }

    /// The application id used for store quota accounting.
    pub fn app_id(&self) -> AppId {
        self.app_id
    }

    /// Resolves a function description against the registered trusted
    /// libraries (the verification step of §IV-B).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FunctionNotTrusted`] if the function is absent.
    pub fn resolve(&self, desc: &FuncDesc) -> Result<FuncIdentity, CoreError> {
        self.registry.resolve(desc)
    }

    /// Runs one marked computation over serialized input bytes.
    ///
    /// Implements Algorithms 1 and 2: derives the tag inside the enclave,
    /// queries the store through an OCALL, reuses the result on a verified
    /// hit, otherwise executes `compute` and publishes the encrypted
    /// result. With [`RuntimeBuilder::prefilter`] enabled the tag pipeline
    /// is tiered: a cheap sampled prefilter tag gates the hot-cache probe,
    /// and the store's negative filter lets definite misses skip the GET
    /// round-trip ([`DedupOutcome::MissFiltered`]).
    ///
    /// Returns the serialized result — a [`ResultBytes`] sharing the hot
    /// cache's buffer on a cached hit, no copy — and what happened.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on store/transport failures. A record that
    /// fails verification is *not* an error: the function is executed
    /// locally and [`DedupOutcome::MissAfterFailedVerify`] is reported.
    pub fn execute_raw(
        &self,
        identity: &FuncIdentity,
        input: &[u8],
        compute: impl FnOnce(&[u8]) -> Vec<u8>,
    ) -> Result<(ResultBytes, DedupOutcome), CoreError> {
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        self.telemetry.calls.inc();

        // Adaptive policy (§VII future work): bypass the store entirely
        // for functions where deduplication cannot pay off.
        let adaptive = match &self.policy {
            DedupPolicy::Always => None,
            DedupPolicy::Adaptive(config) => Some(*config),
        };
        if let Some(config) = &adaptive {
            if self.profiler.decide(identity, config) == PolicyDecision::Bypass {
                self.stats.bypasses.fetch_add(1, Ordering::Relaxed);
                self.telemetry.bypasses.inc();
                let started = std::time::Instant::now();
                let result = self.enclave.ecall("direct_execute", || compute(input));
                self.profiler.record_compute(
                    identity,
                    started.elapsed().as_nanos() as u64,
                    config,
                );
                return Ok((ResultBytes::new(result), DedupOutcome::BypassedByPolicy));
            }
        }

        let call_started = std::time::Instant::now();
        let call_span = self.telemetry.call_duration.start_span();
        let outcome = self.enclave.ecall("dedup_execute", || {
            // Inside the application enclave. Tier 0 of the tag pipeline:
            // the cheap sampled prefilter tag (when enabled). The full
            // SHA-256 comp-tag is derived lazily — only once a tier
            // actually needs it.
            let prefilter = self.prefilter.as_ref().map(|_| {
                self.telemetry.prefilter_derive.time(|| prefilter_tag(identity, input))
            });
            let mut tag_slot: Option<CompTag> = None;
            let derive_tag = |slot: &mut Option<CompTag>| -> CompTag {
                *slot.get_or_insert_with(|| {
                    self.telemetry.tag_derive.time(|| tag_for(identity, input))
                })
            };

            // Tier 1 — hot-tag cache: a recently resolved result is
            // answered without leaving the enclave. The prefilter multiset
            // gates the probe: a definite "not cached" skips the full-tag
            // derivation and the lookup.
            if let Some(cache) = &self.hot_cache {
                let mut guard = lock_recover(cache);
                let gate = match prefilter {
                    Some(p) => guard.may_contain(p),
                    None => true,
                };
                if gate {
                    let tag = derive_tag(&mut tag_slot);
                    let lookup = self.telemetry.hotcache_lookup.time(|| guard.get(&tag));
                    drop(guard);
                    if let Some(result) = lookup {
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        self.telemetry.cache_hits.inc();
                        self.stats
                            .reused_bytes
                            .fetch_add(result.len() as u64, Ordering::Relaxed);
                        self.telemetry.reused_bytes.add(result.len() as u64);
                        return Ok((
                            ResultBytes::from_shared(result),
                            DedupOutcome::HitLocalCache,
                            0u64,
                        ));
                    }
                    self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.cache_misses.inc();
                } else {
                    drop(guard);
                    self.telemetry.prefilter_cache_skips.inc();
                }
            }

            // Tier 2 — the store's negative filter: a complete merged
            // filter that lacks the prefilter tag *proves* no stored
            // result exists, so the GET round-trip below is pure waste.
            let filtered = match prefilter {
                Some(p) if self.filter_proves_absent(p) => {
                    self.telemetry.prefilter_store_skips.inc();
                    self.stats.filtered_misses.fetch_add(1, Ordering::Relaxed);
                    true
                }
                _ => false,
            };

            // OCALL: synchronous GET roundtrip (tag out, record back),
            // skipped when the filter already proved the answer.
            let mut degraded = false;
            let found = if filtered {
                None
            } else {
                let tag = derive_tag(&mut tag_slot);
                let get_request = Message::GetRequest { app: self.app_id, tag };
                let response =
                    self.enclave.ocall_with_bytes("get_request", 48, 0, || {
                        lock_recover(&self.client).roundtrip(&get_request)
                    });

                // Graceful degradation (resilience layer only): an
                // unreachable store is a miss, never an application error —
                // Algorithm 1's fallback is always "just execute".
                match response {
                    Ok(Message::GetResponse(body)) => body.record,
                    Ok(other) => {
                        return Err(CoreError::UnexpectedResponse(format!("{other:?}")))
                    }
                    Err(CoreError::StoreUnavailable(_)) if self.resilience.is_some() => {
                        degraded = true;
                        None
                    }
                    Err(err) => return Err(err),
                }
            };

            if let Some(record) = found {
                self.enclave.charge_boundary_bytes(record.wire_size());
                let recovered = self.telemetry.rce_recover.time(|| match &self.mode {
                    DedupMode::CrossApp => rce::recover_result(identity, input, &record),
                    DedupMode::SingleKey(key) => {
                        rce::recover_result_single_key(key, &record)
                    }
                    DedupMode::Convergent => {
                        rce::recover_result_convergent(identity, input, &record)
                    }
                });
                match recovered {
                    Ok(result) => {
                        let result = ResultBytes::new(result);
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        self.telemetry.hits.inc();
                        self.stats
                            .reused_bytes
                            .fetch_add(result.len() as u64, Ordering::Relaxed);
                        self.telemetry.reused_bytes.add(result.len() as u64);
                        if let Some(cache) = &self.hot_cache {
                            lock_recover(cache).insert(
                                &self.enclave,
                                derive_tag(&mut tag_slot),
                                result.shared(),
                                prefilter,
                            );
                        }
                        return Ok((result, DedupOutcome::Hit, 0u64));
                    }
                    Err(CoreError::VerificationFailed) => {
                        // Fig. 3: ⊥ ⇒ behave as a miss, but do not publish
                        // (the tag slot is taken; overwriting is the store's
                        // anti-poisoning policy decision).
                        self.stats.verify_failures.fetch_add(1, Ordering::Relaxed);
                        self.telemetry.verify_failures.inc();
                        self.stats.misses.fetch_add(1, Ordering::Relaxed);
                        self.telemetry.misses.inc();
                        let compute_started = std::time::Instant::now();
                        let result = ResultBytes::new(compute(input));
                        let compute_ns = compute_started.elapsed().as_nanos() as u64;
                        return Ok((
                            result,
                            DedupOutcome::MissAfterFailedVerify,
                            compute_ns,
                        ));
                    }
                    Err(other) => return Err(other),
                }
            }

            // Fresh computation: execute inside the enclave.
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            self.telemetry.misses.inc();
            let compute_started = std::time::Instant::now();
            let result = ResultBytes::new(compute(input));
            let compute_ns = compute_started.elapsed().as_nanos() as u64;
            let tag = derive_tag(&mut tag_slot);
            if let Some(cache) = &self.hot_cache {
                lock_recover(cache).insert(
                    &self.enclave,
                    tag,
                    result.shared(),
                    prefilter,
                );
            }

            // Encrypt and publish.
            let record = self.telemetry.rce_encrypt.time(|| {
                let mut rng = lock_recover(&self.rng);
                match &self.mode {
                    DedupMode::CrossApp => {
                        rce::encrypt_result(identity, input, &result, &mut rng)
                    }
                    DedupMode::SingleKey(key) => {
                        rce::encrypt_result_single_key(key, &result, &mut rng)
                    }
                    DedupMode::Convergent => {
                        rce::encrypt_result_convergent(identity, input, &result, &mut rng)
                    }
                }
            });
            let record_size = record.wire_size();
            // When the filter tier is enabled the PUT carries the prefilter
            // tag so the store can keep its negative filters complete.
            let put_request = match prefilter {
                Some(p) => Message::PutPrefiltered {
                    app: self.app_id,
                    tag,
                    prefilter: p,
                    record,
                },
                None => Message::PutRequest { app: self.app_id, tag, record },
            };

            match &self.async_putter {
                Some(putter) => {
                    // Asynchronous PUT: enqueue and return immediately; the
                    // worker thread performs the OCALL on its own channel.
                    putter.submit(put_request)?;
                }
                None => {
                    let response = self.enclave.ocall_with_bytes(
                        "put_request",
                        record_size + 48,
                        1,
                        || lock_recover(&self.client).roundtrip(&put_request),
                    );
                    match response {
                        Ok(Message::PutResponse(body)) => {
                            if !body.accepted {
                                self.stats.rejected_puts.fetch_add(1, Ordering::Relaxed);
                                self.telemetry.rejected_puts.inc();
                            }
                        }
                        Ok(other) => {
                            return Err(CoreError::UnexpectedResponse(format!(
                                "{other:?}"
                            )))
                        }
                        Err(CoreError::StoreUnavailable(_))
                            if self.resilience.is_some() =>
                        {
                            // The result is still correct — park the PUT in
                            // the bounded replay queue for later delivery.
                            degraded = true;
                            if let Some(handles) = &self.resilience {
                                handles.replay.push(put_request);
                            }
                        }
                        Err(err) => return Err(err),
                    }
                }
            }

            if degraded {
                self.stats.degraded_calls.fetch_add(1, Ordering::Relaxed);
                self.telemetry.degraded_calls.inc();
            }
            let outcome =
                if filtered { DedupOutcome::MissFiltered } else { DedupOutcome::Miss };
            Ok((result, outcome, compute_ns))
        });
        drop(call_span);

        let (result, outcome, compute_ns) = outcome?;
        if let Some(config) = &adaptive {
            let total_ns = call_started.elapsed().as_nanos() as u64;
            match outcome {
                DedupOutcome::Hit | DedupOutcome::HitLocalCache => {
                    self.profiler.record_dedup_overhead(identity, total_ns, config)
                }
                DedupOutcome::Miss
                | DedupOutcome::MissFiltered
                | DedupOutcome::MissAfterFailedVerify => {
                    self.profiler.record_compute(identity, compute_ns, config);
                    self.profiler.record_dedup_overhead(
                        identity,
                        total_ns.saturating_sub(compute_ns),
                        config,
                    );
                }
                DedupOutcome::BypassedByPolicy => {
                    unreachable!("bypass returns before the dedup path")
                }
            }
        }
        Ok((result, outcome))
    }

    /// Runs a batch of marked computations with O(1) enclave transitions
    /// and at most one network round-trip per direction.
    ///
    /// Where [`execute_raw`](DedupRuntime::execute_raw) costs one ECALL
    /// plus one or two OCALLs *per call*, this pipelines the whole batch:
    ///
    /// 1. one ECALL covers tag derivation, hot-cache lookups, and all
    ///    cryptographic work for every item;
    /// 2. one OCALL sends a single [`Message::BatchRequest`] carrying every
    ///    unresolved GET (one network round-trip);
    /// 3. misses are computed locally and their records are published in a
    ///    single batched PUT — one more OCALL, or zero with async PUT.
    ///
    /// A batch that is answered entirely by the hot-tag cache performs no
    /// OCALL at all. Results are returned in call order.
    ///
    /// Degradation is **per item**, matching the resilience layer's
    /// contract: when the store is unreachable, every unresolved item falls
    /// back to local execution and its PUT is parked in the replay queue as
    /// an individual `PUT_REQUEST`, so partial replay capacity still saves
    /// the newest results.
    ///
    /// The batch path does not consult the adaptive policy profiler;
    /// callers batching work have already decided deduplication pays off.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on store/transport failures when no resilience
    /// layer is configured (with resilience, store outages degrade instead
    /// of failing). Items that fail record verification are not errors —
    /// they are reported as [`DedupOutcome::MissAfterFailedVerify`].
    pub fn execute_batch(
        &self,
        calls: Vec<BatchCall<'_>>,
    ) -> Result<Vec<(ResultBytes, DedupOutcome)>, CoreError> {
        if calls.is_empty() {
            return Ok(Vec::new());
        }
        let n = calls.len();
        self.stats.calls.fetch_add(n as u64, Ordering::Relaxed);
        self.telemetry.calls.add(n as u64);
        let _batch_span = self.telemetry.batch_duration.start_span();

        // ONE ECALL for the whole batch.
        let outcome = self.enclave.ecall("dedup_execute_batch", || {
            let mut identities = Vec::with_capacity(n);
            let mut inputs = Vec::with_capacity(n);
            let mut computes = Vec::with_capacity(n);
            for call in calls {
                identities.push(call.identity);
                inputs.push(call.input);
                computes.push(Some(call.compute));
            }
            // Tier 0: cheap prefilter tags for the whole batch (when the
            // filter tier is enabled). Full comp-tags are still derived for
            // every item — each one either enters the batch GET or ends in
            // a PUT — but the prefilters gate the cache probes and let
            // proven-absent items skip the batch GET entirely.
            let prefilters: Option<Vec<u64>> = self.prefilter.as_ref().map(|_| {
                identities
                    .iter()
                    .zip(&inputs)
                    .map(|(identity, input)| {
                        self.telemetry
                            .prefilter_derive
                            .time(|| prefilter_tag(identity, input))
                    })
                    .collect()
            });
            let tags: Vec<_> = identities
                .iter()
                .zip(&inputs)
                .map(|(identity, input)| {
                    self.telemetry.tag_derive.time(|| tag_for(identity, input))
                })
                .collect();
            let prefilter_of = |i: usize| prefilters.as_ref().map(|ps| ps[i]);

            // Phase 1: hot-tag cache, no boundary crossing.
            let mut slots: Vec<Option<(ResultBytes, DedupOutcome)>> = vec![None; n];
            let mut pending: Vec<usize> = Vec::with_capacity(n);
            if let Some(cache) = &self.hot_cache {
                let mut cache = lock_recover(cache);
                for i in 0..n {
                    let gate = match prefilter_of(i) {
                        Some(p) => cache.may_contain(p),
                        None => true,
                    };
                    if !gate {
                        self.telemetry.prefilter_cache_skips.inc();
                        pending.push(i);
                        continue;
                    }
                    match self.telemetry.hotcache_lookup.time(|| cache.get(&tags[i])) {
                        Some(result) => {
                            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                            self.telemetry.cache_hits.inc();
                            self.stats
                                .reused_bytes
                                .fetch_add(result.len() as u64, Ordering::Relaxed);
                            self.telemetry.reused_bytes.add(result.len() as u64);
                            slots[i] = Some((
                                ResultBytes::from_shared(result),
                                DedupOutcome::HitLocalCache,
                            ));
                        }
                        None => {
                            self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                            self.telemetry.cache_misses.inc();
                            pending.push(i);
                        }
                    }
                }
            } else {
                pending.extend(0..n);
            }

            // Tier 2: consult the merged negative filter once per pending
            // item — proven-absent items never enter the batch GET; they
            // fall straight through to compute-and-publish below.
            let mut skip_get = vec![false; pending.len()];
            if prefilters.is_some() {
                for (slot_pos, &i) in pending.iter().enumerate() {
                    let p = prefilter_of(i).expect("prefilters computed for the batch");
                    if self.filter_proves_absent(p) {
                        self.telemetry.prefilter_store_skips.inc();
                        self.stats.filtered_misses.fetch_add(1, Ordering::Relaxed);
                        skip_get[slot_pos] = true;
                    }
                }
            }

            // Phase 2: ONE OCALL resolves every unresolved tag against the
            // store in a single network round-trip.
            let mut degraded = false;
            let mut found: Vec<Option<speed_wire::Record>> =
                (0..pending.len()).map(|_| None).collect();
            let get_positions: Vec<usize> =
                (0..pending.len()).filter(|&pos| !skip_get[pos]).collect();
            if !get_positions.is_empty() {
                // With the filter tier enabled the GETs carry their
                // prefilter tags, so the store can answer definite misses
                // straight from its (authoritative, never stale) shard
                // filters without dictionary-lock work — the server-side
                // complement of the client's merged-filter skip above.
                let get_items: Vec<BatchItem> = get_positions
                    .iter()
                    .map(|&pos| {
                        let tag = tags[pending[pos]];
                        match prefilter_of(pending[pos]) {
                            Some(prefilter) => {
                                BatchItem::GetPrefiltered { tag, prefilter }
                            }
                            None => BatchItem::Get { tag },
                        }
                    })
                    .collect();
                let args_len = 48 * get_items.len();
                let request =
                    Message::BatchRequest { app: self.app_id, items: get_items };
                let response = self.enclave.ocall_with_bytes(
                    "batch_get_request",
                    args_len,
                    0,
                    || lock_recover(&self.client).roundtrip(&request),
                );
                match response {
                    Ok(Message::BatchResponse(results))
                        if results.len() == get_positions.len() =>
                    {
                        for (k, result) in results.into_iter().enumerate() {
                            found[get_positions[k]] = result.record;
                        }
                    }
                    Ok(other) => {
                        return Err(CoreError::UnexpectedResponse(format!("{other:?}")))
                    }
                    Err(CoreError::StoreUnavailable(_)) if self.resilience.is_some() => {
                        // Per-item degradation: every unresolved item falls
                        // back to local execution below.
                        degraded = true;
                    }
                    Err(err) => return Err(err),
                }
            }

            // Phase 3: verify hits, compute misses, collect batched PUTs.
            let mut put_items: Vec<BatchItem> = Vec::new();
            for (slot_pos, &i) in pending.iter().enumerate() {
                let identity = &identities[i];
                let input = inputs[i];
                if let Some(record) = found.get_mut(slot_pos).and_then(Option::take) {
                    self.enclave.charge_boundary_bytes(record.wire_size());
                    let recovered =
                        self.telemetry.rce_recover.time(|| match &self.mode {
                            DedupMode::CrossApp => {
                                rce::recover_result(identity, input, &record)
                            }
                            DedupMode::SingleKey(key) => {
                                rce::recover_result_single_key(key, &record)
                            }
                            DedupMode::Convergent => {
                                rce::recover_result_convergent(identity, input, &record)
                            }
                        });
                    match recovered {
                        Ok(result) => {
                            let result = ResultBytes::new(result);
                            self.stats.hits.fetch_add(1, Ordering::Relaxed);
                            self.telemetry.hits.inc();
                            self.stats
                                .reused_bytes
                                .fetch_add(result.len() as u64, Ordering::Relaxed);
                            self.telemetry.reused_bytes.add(result.len() as u64);
                            if let Some(cache) = &self.hot_cache {
                                lock_recover(cache).insert(
                                    &self.enclave,
                                    tags[i],
                                    result.shared(),
                                    prefilter_of(i),
                                );
                            }
                            slots[i] = Some((result, DedupOutcome::Hit));
                            continue;
                        }
                        Err(CoreError::VerificationFailed) => {
                            // Fig. 3: ⊥ ⇒ execute locally, publish nothing.
                            self.stats.verify_failures.fetch_add(1, Ordering::Relaxed);
                            self.telemetry.verify_failures.inc();
                            self.stats.misses.fetch_add(1, Ordering::Relaxed);
                            self.telemetry.misses.inc();
                            let compute =
                                computes[i].take().expect("each compute runs once");
                            let result = ResultBytes::new(compute(input));
                            slots[i] =
                                Some((result, DedupOutcome::MissAfterFailedVerify));
                            continue;
                        }
                        Err(other) => return Err(other),
                    }
                }

                // Miss (filtered, degraded, or plain): execute inside the
                // enclave. Filtered items never touched the store, so they
                // do not count as degraded even during an outage.
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                self.telemetry.misses.inc();
                if degraded && !skip_get[slot_pos] {
                    self.stats.degraded_calls.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.degraded_calls.inc();
                }
                let compute = computes[i].take().expect("each compute runs once");
                let result = ResultBytes::new(compute(input));
                if let Some(cache) = &self.hot_cache {
                    lock_recover(cache).insert(
                        &self.enclave,
                        tags[i],
                        result.shared(),
                        prefilter_of(i),
                    );
                }
                let record = self.telemetry.rce_encrypt.time(|| {
                    let mut rng = lock_recover(&self.rng);
                    match &self.mode {
                        DedupMode::CrossApp => {
                            rce::encrypt_result(identity, input, &result, &mut rng)
                        }
                        DedupMode::SingleKey(key) => {
                            rce::encrypt_result_single_key(key, &result, &mut rng)
                        }
                        DedupMode::Convergent => rce::encrypt_result_convergent(
                            identity, input, &result, &mut rng,
                        ),
                    }
                });
                let item = match prefilter_of(i) {
                    Some(prefilter) => {
                        BatchItem::PutPrefiltered { tag: tags[i], prefilter, record }
                    }
                    None => BatchItem::Put { tag: tags[i], record },
                };
                put_items.push(item);
                let outcome = if skip_get[slot_pos] {
                    DedupOutcome::MissFiltered
                } else {
                    DedupOutcome::Miss
                };
                slots[i] = Some((result, outcome));
            }

            // Phase 4: publish every fresh record in one batched PUT.
            if !put_items.is_empty() {
                if degraded {
                    // The store is already known unreachable: park each PUT
                    // individually so replay delivers item by item.
                    if let Some(handles) = &self.resilience {
                        for item in put_items {
                            match item {
                                BatchItem::Put { tag, record } => {
                                    handles.replay.push(Message::PutRequest {
                                        app: self.app_id,
                                        tag,
                                        record,
                                    });
                                }
                                BatchItem::PutPrefiltered { tag, prefilter, record } => {
                                    handles.replay.push(Message::PutPrefiltered {
                                        app: self.app_id,
                                        tag,
                                        prefilter,
                                        record,
                                    });
                                }
                                BatchItem::Get { .. }
                                | BatchItem::GetPrefiltered { .. } => {}
                            }
                        }
                    }
                } else {
                    let wire_len: usize =
                        put_items.iter().map(BatchItem::wire_size).sum();
                    let put_request =
                        Message::BatchRequest { app: self.app_id, items: put_items };
                    match &self.async_putter {
                        Some(putter) => putter.submit(put_request)?,
                        None => {
                            let response = self.enclave.ocall_with_bytes(
                                "batch_put_request",
                                wire_len + 48,
                                0,
                                || lock_recover(&self.client).roundtrip(&put_request),
                            );
                            match response {
                                Ok(Message::BatchResponse(results)) => {
                                    let rejected = results
                                        .iter()
                                        .filter(|r| r.status == BatchStatus::Rejected)
                                        .count()
                                        as u64;
                                    self.stats
                                        .rejected_puts
                                        .fetch_add(rejected, Ordering::Relaxed);
                                    self.telemetry.rejected_puts.add(rejected);
                                }
                                Ok(other) => {
                                    return Err(CoreError::UnexpectedResponse(format!(
                                        "{other:?}"
                                    )))
                                }
                                Err(CoreError::StoreUnavailable(_))
                                    if self.resilience.is_some() =>
                                {
                                    // The batch PUT failed as a unit, but it
                                    // degrades item by item into the replay
                                    // queue.
                                    if let (
                                        Some(handles),
                                        Message::BatchRequest { app, items },
                                    ) = (&self.resilience, put_request)
                                    {
                                        for item in items {
                                            let replayed = match item {
                                                BatchItem::Put { tag, record } => {
                                                    Some(Message::PutRequest {
                                                        app,
                                                        tag,
                                                        record,
                                                    })
                                                }
                                                BatchItem::PutPrefiltered {
                                                    tag,
                                                    prefilter,
                                                    record,
                                                } => Some(Message::PutPrefiltered {
                                                    app,
                                                    tag,
                                                    prefilter,
                                                    record,
                                                }),
                                                BatchItem::Get { .. }
                                                | BatchItem::GetPrefiltered { .. } => {
                                                    None
                                                }
                                            };
                                            if let Some(message) = replayed {
                                                self.stats
                                                    .degraded_calls
                                                    .fetch_add(1, Ordering::Relaxed);
                                                self.telemetry.degraded_calls.inc();
                                                handles.replay.push(message);
                                            }
                                        }
                                    }
                                }
                                Err(err) => return Err(err),
                            }
                        }
                    }
                }
            }

            Ok(slots
                .into_iter()
                .map(|slot| slot.expect("every batch slot resolved"))
                .collect::<Vec<_>>())
        });
        outcome
    }

    /// Convenience: resolve + execute in one call.
    ///
    /// # Errors
    ///
    /// As [`resolve`](DedupRuntime::resolve) and
    /// [`execute_raw`](DedupRuntime::execute_raw).
    pub fn execute(
        &self,
        desc: &FuncDesc,
        input: &[u8],
        compute: impl FnOnce(&[u8]) -> Vec<u8>,
    ) -> Result<(ResultBytes, DedupOutcome), CoreError> {
        let identity = self.resolve(desc)?;
        self.execute_raw(&identity, input, compute)
    }

    /// Probes the tiered tag pipeline for an already-stored result without
    /// ever executing or publishing anything.
    ///
    /// The ladder runs cheapest-first: prefilter-gated hot-cache probe,
    /// then the merged negative filter, then the full comp-tag and a store
    /// GET. On a filter-proven miss the probe returns `Ok(None)` *without
    /// computing the full SHA-256 at all* — for large inputs that is the
    /// dominant cost of a negative lookup. A record that fails verification
    /// also yields `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on store/transport failures (with the
    /// resilience layer, an unreachable store reads as `Ok(None)`).
    pub fn lookup(
        &self,
        identity: &FuncIdentity,
        input: &[u8],
    ) -> Result<Option<ResultBytes>, CoreError> {
        self.enclave.ecall("dedup_lookup", || {
            let prefilter = self.prefilter.as_ref().map(|_| {
                self.telemetry.prefilter_derive.time(|| prefilter_tag(identity, input))
            });
            let mut tag_slot: Option<CompTag> = None;
            let derive_tag = |slot: &mut Option<CompTag>| -> CompTag {
                *slot.get_or_insert_with(|| {
                    self.telemetry.tag_derive.time(|| tag_for(identity, input))
                })
            };

            if let Some(cache) = &self.hot_cache {
                let mut guard = lock_recover(cache);
                let gate = match prefilter {
                    Some(p) => guard.may_contain(p),
                    None => true,
                };
                if gate {
                    let tag = derive_tag(&mut tag_slot);
                    let lookup = self.telemetry.hotcache_lookup.time(|| guard.get(&tag));
                    drop(guard);
                    if let Some(result) = lookup {
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        self.telemetry.cache_hits.inc();
                        self.stats
                            .reused_bytes
                            .fetch_add(result.len() as u64, Ordering::Relaxed);
                        self.telemetry.reused_bytes.add(result.len() as u64);
                        return Ok(Some(ResultBytes::from_shared(result)));
                    }
                    self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.cache_misses.inc();
                } else {
                    drop(guard);
                    self.telemetry.prefilter_cache_skips.inc();
                }
            }

            if let Some(p) = prefilter {
                if self.filter_proves_absent(p) {
                    // Definite miss: the full SHA-256 was never derived.
                    self.telemetry.prefilter_store_skips.inc();
                    return Ok(None);
                }
            }

            let tag = derive_tag(&mut tag_slot);
            let get_request = Message::GetRequest { app: self.app_id, tag };
            let response = self.enclave.ocall_with_bytes("get_request", 48, 0, || {
                lock_recover(&self.client).roundtrip(&get_request)
            });
            let found = match response {
                Ok(Message::GetResponse(body)) => body.record,
                Ok(other) => {
                    return Err(CoreError::UnexpectedResponse(format!("{other:?}")))
                }
                Err(CoreError::StoreUnavailable(_)) if self.resilience.is_some() => None,
                Err(err) => return Err(err),
            };
            let Some(record) = found else { return Ok(None) };

            self.enclave.charge_boundary_bytes(record.wire_size());
            let recovered = self.telemetry.rce_recover.time(|| match &self.mode {
                DedupMode::CrossApp => rce::recover_result(identity, input, &record),
                DedupMode::SingleKey(key) => rce::recover_result_single_key(key, &record),
                DedupMode::Convergent => {
                    rce::recover_result_convergent(identity, input, &record)
                }
            });
            match recovered {
                Ok(result) => {
                    let result = ResultBytes::new(result);
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.hits.inc();
                    self.stats
                        .reused_bytes
                        .fetch_add(result.len() as u64, Ordering::Relaxed);
                    self.telemetry.reused_bytes.add(result.len() as u64);
                    if let Some(cache) = &self.hot_cache {
                        lock_recover(cache).insert(
                            &self.enclave,
                            tag,
                            result.shared(),
                            prefilter,
                        );
                    }
                    Ok(Some(result))
                }
                Err(CoreError::VerificationFailed) => {
                    self.stats.verify_failures.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.verify_failures.inc();
                    Ok(None)
                }
                Err(other) => Err(other),
            }
        })
    }

    /// Consults (and lazily refreshes) the merged client-side negative
    /// filter. `true` means *proof* of absence: the filter is complete and
    /// does not contain the prefilter tag. Refresh failures silently keep
    /// the stale view — the filter is an accelerator, never a correctness
    /// dependency.
    fn filter_proves_absent(&self, prefilter: u64) -> bool {
        let Some(cell) = &self.prefilter else { return false };
        let mut state = lock_recover(cell);
        let stale =
            state.merged.is_none() || state.ops_since_refresh >= state.config.refresh_ops;
        if stale {
            state.ops_since_refresh = 0;
            let response = self.enclave.ocall_with_bytes("filter_request", 1, 0, || {
                lock_recover(&self.client).roundtrip(&Message::FilterRequest)
            });
            if let Ok(Message::FilterResponse(body)) = response {
                self.telemetry.prefilter_refreshes.inc();
                state.epoch = body.epoch;
                state.merged = merge_shard_filters(body.shards);
            }
        }
        state.ops_since_refresh += 1;
        match &state.merged {
            Some(filter) => !filter.may_contain(prefilter),
            None => false,
        }
    }

    /// Waits until all asynchronous PUTs submitted so far have completed.
    /// No-op when async PUT is disabled.
    pub fn flush(&self) {
        if let Some(putter) = &self.async_putter {
            putter.flush();
        }
    }

    /// Current hot-tag cache occupancy as `(entries, bytes)`, or `None`
    /// when the cache is disabled. Exposed so harnesses and operators can
    /// check the configured bounds are actually respected.
    pub fn hot_cache_usage(&self) -> Option<(usize, usize)> {
        self.hot_cache.as_ref().map(|cache| {
            let cache = cache.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            (cache.len(), cache.bytes())
        })
    }

    /// A snapshot of the runtime counters.
    pub fn stats(&self) -> RuntimeStats {
        let async_rejected =
            self.async_putter.as_ref().map_or(0, |p| p.rejected.load(Ordering::Relaxed));
        let async_degraded =
            self.async_putter.as_ref().map_or(0, |p| p.degraded.load(Ordering::Relaxed));
        let (retries, breaker_transitions, replayed_puts) = match &self.resilience {
            Some(handles) => (
                handles.stats.retries.load(Ordering::Relaxed),
                handles.stats.breaker_transitions.load(Ordering::Relaxed),
                handles.stats.replayed_puts.load(Ordering::Relaxed),
            ),
            None => (0, 0, 0),
        };
        RuntimeStats {
            calls: self.stats.calls.load(Ordering::Relaxed),
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            verify_failures: self.stats.verify_failures.load(Ordering::Relaxed),
            rejected_puts: self.stats.rejected_puts.load(Ordering::Relaxed)
                + async_rejected,
            reused_bytes: self.stats.reused_bytes.load(Ordering::Relaxed),
            bypasses: self.stats.bypasses.load(Ordering::Relaxed),
            degraded_calls: self.stats.degraded_calls.load(Ordering::Relaxed)
                + async_degraded,
            retries,
            breaker_transitions,
            replayed_puts,
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.stats.cache_misses.load(Ordering::Relaxed),
            filtered_misses: self.stats.filtered_misses.load(Ordering::Relaxed),
        }
    }

    /// Fetches the store's counter snapshot — aggregate totals plus one
    /// [`speed_wire::ShardStatsBody`] per dictionary shard — over the
    /// runtime's store connection.
    ///
    /// # Errors
    ///
    /// Propagates transport failures, or
    /// [`CoreError::UnexpectedResponse`] if the store replies with
    /// anything but a stats response.
    pub fn store_stats(&self) -> Result<StatsBody, CoreError> {
        let response = lock_recover(&self.client).roundtrip(&Message::StatsRequest)?;
        match response {
            Message::StatsResponse(body) => Ok(body),
            other => Err(CoreError::UnexpectedResponse(format!(
                "expected stats response, got {other:?}"
            ))),
        }
    }

    /// PUTs currently parked in the replay queue, waiting for the store to
    /// recover. Zero when the resilience layer is not configured.
    pub fn pending_replays(&self) -> usize {
        self.resilience.as_ref().map_or(0, |handles| handles.replay.len())
    }

    /// PUTs evicted from the bounded replay queue because it overflowed
    /// during an outage. Zero when the resilience layer is not configured.
    pub fn dropped_replays(&self) -> u64 {
        self.resilience.as_ref().map_or(0, |handles| handles.replay.dropped())
    }

    /// The adaptive profiler's `(compute_ns, dedup_overhead_ns)` estimates
    /// for a function, once both have been observed.
    pub fn profile_estimates(&self, identity: &FuncIdentity) -> Option<(f64, f64)> {
        self.profiler.estimates(identity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_enclave::CostModel;
    use speed_store::StoreConfig;
    use std::sync::atomic::AtomicUsize;

    fn setup() -> (Arc<Platform>, Arc<ResultStore>, Arc<SessionAuthority>) {
        let platform = Platform::new(CostModel::default_sgx());
        let store =
            Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
        let authority = Arc::new(SessionAuthority::with_seed(5));
        (platform, store, authority)
    }

    fn library() -> TrustedLibrary {
        let mut lib = TrustedLibrary::new("testlib", "1.0");
        lib.register("double()", b"double code");
        lib.register("reverse()", b"reverse code");
        lib
    }

    fn desc_double() -> FuncDesc {
        FuncDesc::new("testlib", "1.0", "double()")
    }

    fn runtime(
        platform: &Arc<Platform>,
        store: &Arc<ResultStore>,
        authority: &Arc<SessionAuthority>,
        code: &[u8],
    ) -> Arc<DedupRuntime> {
        DedupRuntime::builder(Arc::clone(platform), code)
            .in_process_store(Arc::clone(store), Arc::clone(authority))
            .trusted_library(library())
            .rng_seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn initial_then_subsequent_computation() {
        let (platform, store, authority) = setup();
        let rt = runtime(&platform, &store, &authority, b"app-1");
        let executions = AtomicUsize::new(0);
        let compute = |input: &[u8]| {
            executions.fetch_add(1, Ordering::Relaxed);
            input.iter().map(|b| b.wrapping_mul(2)).collect()
        };

        let (result, outcome) = rt.execute(&desc_double(), b"\x01\x02", compute).unwrap();
        assert_eq!(result, vec![2, 4]);
        assert_eq!(outcome, DedupOutcome::Miss);

        let (result, outcome) = rt
            .execute(&desc_double(), b"\x01\x02", |_| panic!("must not execute"))
            .unwrap();
        assert_eq!(result, vec![2, 4]);
        assert_eq!(outcome, DedupOutcome::Hit);
        assert_eq!(executions.load(Ordering::Relaxed), 1);

        let stats = rt.stats();
        assert_eq!((stats.calls, stats.hits, stats.misses), (2, 1, 1));
        assert_eq!(stats.reused_bytes, 2);
    }

    #[test]
    fn cross_application_sharing() {
        let (platform, store, authority) = setup();
        let rt_a = runtime(&platform, &store, &authority, b"app-a");
        let rt_b = runtime(&platform, &store, &authority, b"app-b");

        rt_a.execute(&desc_double(), b"shared", |input| input.to_vec()).unwrap();
        // A *different application* with the same trusted library and input
        // reuses A's result without re-executing.
        let (result, outcome) =
            rt_b.execute(&desc_double(), b"shared", |_| panic!("should dedup")).unwrap();
        assert_eq!(result, b"shared");
        assert_eq!(outcome, DedupOutcome::Hit);
    }

    #[test]
    fn different_function_does_not_collide() {
        let (platform, store, authority) = setup();
        let rt = runtime(&platform, &store, &authority, b"app");
        rt.execute(&desc_double(), b"x", |_| vec![1]).unwrap();
        let (result, outcome) = rt
            .execute(&FuncDesc::new("testlib", "1.0", "reverse()"), b"x", |_| vec![2])
            .unwrap();
        assert_eq!(result, vec![2]);
        assert_eq!(outcome, DedupOutcome::Miss);
    }

    #[test]
    fn untrusted_function_is_rejected() {
        let (platform, store, authority) = setup();
        let rt = runtime(&platform, &store, &authority, b"app");
        let err = rt
            .execute(&FuncDesc::new("evil", "6.6", "backdoor()"), b"x", |_| vec![])
            .unwrap_err();
        assert!(matches!(err, CoreError::FunctionNotTrusted { .. }));
        // The rejected call never reaches the dedup path.
        assert_eq!(rt.stats().calls, 0);
        assert_eq!(rt.stats().misses, 0);
    }

    #[test]
    fn single_key_mode_intra_app_dedup() {
        let (platform, store, authority) = setup();
        let key = Key128::from_bytes([9u8; 16]);
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"sk-app")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .mode(DedupMode::SingleKey(key))
            .build()
            .unwrap();
        rt.execute(&desc_double(), b"in", |i| i.to_vec()).unwrap();
        let (_, outcome) =
            rt.execute(&desc_double(), b"in", |_| panic!("dedup")).unwrap();
        assert_eq!(outcome, DedupOutcome::Hit);
    }

    #[test]
    fn single_key_mode_wrong_key_fails_verification() {
        let (platform, store, authority) = setup();
        let rt_good = DedupRuntime::builder(Arc::clone(&platform), b"good")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .mode(DedupMode::SingleKey(Key128::from_bytes([1u8; 16])))
            .build()
            .unwrap();
        let rt_other = DedupRuntime::builder(Arc::clone(&platform), b"other")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .mode(DedupMode::SingleKey(Key128::from_bytes([2u8; 16])))
            .build()
            .unwrap();

        rt_good.execute(&desc_double(), b"m", |_| vec![42]).unwrap();
        // The single-key brittleness (§III-B): a different key cannot reuse.
        let (result, outcome) =
            rt_other.execute(&desc_double(), b"m", |_| vec![43]).unwrap();
        assert_eq!(result, vec![43]);
        assert_eq!(outcome, DedupOutcome::MissAfterFailedVerify);
        assert_eq!(rt_other.stats().verify_failures, 1);
    }

    #[test]
    fn convergent_mode_cross_app_dedup() {
        let (platform, store, authority) = setup();
        let build = |code: &[u8]| {
            DedupRuntime::builder(Arc::clone(&platform), code)
                .in_process_store(Arc::clone(&store), Arc::clone(&authority))
                .trusted_library(library())
                .mode(DedupMode::Convergent)
                .build()
                .unwrap()
        };
        let rt_a = build(b"ce-app-a");
        let rt_b = build(b"ce-app-b");
        let identity = rt_a.resolve(&desc_double()).unwrap();
        rt_a.execute_raw(&identity, b"shared", |d| d.to_vec()).unwrap();
        let identity_b = rt_b.resolve(&desc_double()).unwrap();
        let (result, outcome) =
            rt_b.execute_raw(&identity_b, b"shared", |_| panic!("must reuse")).unwrap();
        assert_eq!(outcome, DedupOutcome::Hit);
        assert_eq!(result, b"shared");
    }

    #[test]
    fn convergent_and_rce_records_do_not_cross_decrypt() {
        let (platform, store, authority) = setup();
        let ce = DedupRuntime::builder(Arc::clone(&platform), b"ce")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .mode(DedupMode::Convergent)
            .build()
            .unwrap();
        let rce_rt = DedupRuntime::builder(Arc::clone(&platform), b"rce")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .build()
            .unwrap();
        let identity = ce.resolve(&desc_double()).unwrap();
        ce.execute_raw(&identity, b"m", |d| d.to_vec()).unwrap();
        // The RCE runtime finds the CE record but cannot verify it.
        let identity_rce = rce_rt.resolve(&desc_double()).unwrap();
        let (_, outcome) =
            rce_rt.execute_raw(&identity_rce, b"m", |d| d.to_vec()).unwrap();
        assert_eq!(outcome, DedupOutcome::MissAfterFailedVerify);
    }

    #[test]
    fn async_put_publishes_after_flush() {
        let (platform, store, authority) = setup();
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"async-app")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .async_put(true)
            .build()
            .unwrap();
        let (_, outcome) = rt.execute(&desc_double(), b"x", |i| i.to_vec()).unwrap();
        assert_eq!(outcome, DedupOutcome::Miss);
        rt.flush();
        assert_eq!(store.stats().puts, 1);

        // After the flush the result is reusable.
        let (_, outcome) = rt.execute(&desc_double(), b"x", |_| panic!("dedup")).unwrap();
        assert_eq!(outcome, DedupOutcome::Hit);
    }

    #[test]
    fn ecall_ocall_pattern_matches_paper() {
        let (platform, store, authority) = setup();
        let rt = runtime(&platform, &store, &authority, b"count-app");
        let before = rt.enclave().stats();
        rt.execute(&desc_double(), b"y", |i| i.to_vec()).unwrap();
        let after = rt.enclave().stats();
        // One ECALL into the dedup routine; two OCALLs (GET + sync PUT).
        assert_eq!(after.ecalls - before.ecalls, 1);
        assert_eq!(after.ocalls - before.ocalls, 2);

        rt.execute(&desc_double(), b"y", |_| panic!()).unwrap();
        let hit_stats = rt.enclave().stats();
        // Hit path: one ECALL, one OCALL (GET only).
        assert_eq!(hit_stats.ecalls - after.ecalls, 1);
        assert_eq!(hit_stats.ocalls - after.ocalls, 1);
    }

    #[test]
    fn adaptive_policy_bypasses_cheap_function() {
        let (platform, store, authority) = setup();
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"adaptive-app")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .policy(DedupPolicy::Adaptive(crate::AdaptiveConfig {
                min_speedup: 1.0,
                warmup_calls: 2,
                probe_interval: 100,
                ewma_alpha: 0.5,
            }))
            .build()
            .unwrap();
        let identity = rt.resolve(&desc_double()).unwrap();

        // A trivially cheap function with all-distinct inputs: every dedup
        // attempt is a miss, so overhead dominates and the policy should
        // start bypassing.
        let mut bypassed = false;
        for i in 0..40u32 {
            let input = i.to_le_bytes();
            let (_, outcome) = rt.execute_raw(&identity, &input, |d| d.to_vec()).unwrap();
            if outcome == DedupOutcome::BypassedByPolicy {
                bypassed = true;
            }
        }
        assert!(bypassed, "cheap function never got bypassed");
        assert!(rt.stats().bypasses > 0);
        let (compute, overhead) = rt.profile_estimates(&identity).unwrap();
        assert!(compute < overhead, "compute {compute} overhead {overhead}");
    }

    #[test]
    fn adaptive_policy_keeps_dedup_for_expensive_function() {
        let (platform, store, authority) = setup();
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"adaptive-slow")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .policy(DedupPolicy::Adaptive(crate::AdaptiveConfig::default()))
            .build()
            .unwrap();
        let identity = rt.resolve(&desc_double()).unwrap();

        // Expensive compute (2 ms busy loop): dedup overhead is tiny in
        // comparison, so the policy must keep deduplicating.
        let slow = |input: &[u8]| {
            let start = std::time::Instant::now();
            while start.elapsed() < std::time::Duration::from_millis(2) {
                std::hint::black_box(0u8);
            }
            input.to_vec()
        };
        for i in 0..10u32 {
            let (_, outcome) = rt.execute_raw(&identity, &i.to_le_bytes(), slow).unwrap();
            assert_ne!(outcome, DedupOutcome::BypassedByPolicy, "call {i}");
        }
        // And repeated inputs still hit.
        let (_, outcome) =
            rt.execute_raw(&identity, &0u32.to_le_bytes(), |_| panic!("hit")).unwrap();
        assert_eq!(outcome, DedupOutcome::Hit);
        assert_eq!(rt.stats().bypasses, 0);
    }

    /// A factory-built in-process client whose availability is switched by
    /// a shared flag — the store "goes down" and "comes back".
    fn flaky_factory(
        platform: &Arc<Platform>,
        store: &Arc<ResultStore>,
        authority: &Arc<SessionAuthority>,
        up: &Arc<std::sync::atomic::AtomicBool>,
    ) -> crate::resilience::Connector {
        #[derive(Debug)]
        struct Gated {
            inner: InProcessClient,
            up: Arc<std::sync::atomic::AtomicBool>,
        }
        impl StoreClient for Gated {
            fn roundtrip(&mut self, request: &Message) -> Result<Message, CoreError> {
                if !self.up.load(Ordering::Relaxed) {
                    return Err(CoreError::UnexpectedResponse("store down".into()));
                }
                self.inner.roundtrip(request)
            }
        }
        let platform = Arc::clone(platform);
        let store = Arc::clone(store);
        let authority = Arc::clone(authority);
        let up = Arc::clone(up);
        // Build a dedicated enclave identity for the channel ends; the
        // connector runs the full attestation on every call.
        let enclave = platform.create_enclave(b"flaky-client").unwrap();
        Box::new(move || {
            let inner = InProcessClient::connect(
                Arc::clone(&store),
                &authority,
                &platform,
                &enclave,
            )?;
            Ok(Box::new(Gated { inner, up: Arc::clone(&up) }) as Box<dyn StoreClient>)
        })
    }

    fn fast_resilience() -> crate::ResilienceConfig {
        crate::ResilienceConfig {
            retry: crate::RetryPolicy {
                max_attempts: 2,
                base_delay: std::time::Duration::from_micros(100),
                max_delay: std::time::Duration::from_millis(1),
                jitter: 0.5,
            },
            breaker: crate::BreakerConfig {
                failure_threshold: 100, // effectively disabled
                cooldown: std::time::Duration::from_millis(1),
            },
            call_budget: std::time::Duration::from_secs(1),
            replay_capacity: 32,
            jitter_seed: Some(11),
        }
    }

    #[test]
    fn degraded_get_falls_back_to_local_execution() {
        let (platform, store, authority) = setup();
        let up = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"degraded-app")
            .client_factory(flaky_factory(&platform, &store, &authority, &up))
            .resilience(fast_resilience())
            .trusted_library(library())
            .build()
            .unwrap();

        // Store down: the call still succeeds, executed locally, and the
        // PUT is parked for replay.
        let (result, outcome) = rt
            .execute(&desc_double(), b"\x03", |input| {
                input.iter().map(|b| b.wrapping_mul(2)).collect()
            })
            .unwrap();
        assert_eq!(result, vec![6]);
        assert_eq!(outcome, DedupOutcome::Miss);
        let stats = rt.stats();
        assert_eq!(stats.degraded_calls, 1);
        assert!(stats.retries > 0);
        assert_eq!(rt.pending_replays(), 1);
        assert_eq!(store.stats().puts, 0);
    }

    #[test]
    fn replay_queue_drains_after_recovery() {
        let (platform, store, authority) = setup();
        let up = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"replay-app")
            .client_factory(flaky_factory(&platform, &store, &authority, &up))
            .resilience(fast_resilience())
            .trusted_library(library())
            .build()
            .unwrap();

        // Three calls while down: three parked PUTs.
        for i in 0..3u8 {
            let (_, outcome) =
                rt.execute(&desc_double(), &[i], |input| input.to_vec()).unwrap();
            assert_eq!(outcome, DedupOutcome::Miss);
        }
        assert_eq!(rt.pending_replays(), 3);

        // Store recovers: the next successful round-trip drains the queue.
        up.store(true, Ordering::Relaxed);
        let (_, outcome) =
            rt.execute(&desc_double(), &[9], |input| input.to_vec()).unwrap();
        assert_eq!(outcome, DedupOutcome::Miss);
        assert_eq!(rt.pending_replays(), 0);
        assert_eq!(rt.stats().replayed_puts, 3);
        // The replayed results are now hits.
        let (_, outcome) =
            rt.execute(&desc_double(), &[0], |_| panic!("must hit")).unwrap();
        assert_eq!(outcome, DedupOutcome::Hit);
    }

    #[test]
    fn breaker_open_degrades_without_touching_store() {
        let (platform, store, authority) = setup();
        let up = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut config = fast_resilience();
        config.breaker.failure_threshold = 2;
        config.breaker.cooldown = std::time::Duration::from_secs(60);
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"breaker-app")
            .client_factory(flaky_factory(&platform, &store, &authority, &up))
            .resilience(config)
            .trusted_library(library())
            .build()
            .unwrap();

        // First call trips the breaker (2 failed attempts).
        rt.execute(&desc_double(), b"a", |i| i.to_vec()).unwrap();
        assert!(rt.stats().breaker_transitions >= 1);
        let retries_after_trip = rt.stats().retries;
        // Later calls fail fast: no new retries, still correct results.
        let (result, outcome) = rt.execute(&desc_double(), b"b", |i| i.to_vec()).unwrap();
        assert_eq!(result, b"b");
        assert_eq!(outcome, DedupOutcome::Miss);
        assert_eq!(rt.stats().retries, retries_after_trip);
        assert_eq!(rt.stats().degraded_calls, 2);
    }

    #[test]
    fn async_put_degrades_to_replay_queue() {
        let (platform, store, authority) = setup();
        let up = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"async-degraded")
            .client_factory(flaky_factory(&platform, &store, &authority, &up))
            .resilience(fast_resilience())
            .trusted_library(library())
            .async_put(true)
            .build()
            .unwrap();

        // Warm call while up (also connects the PUT worker's client).
        rt.execute(&desc_double(), b"warm", |i| i.to_vec()).unwrap();
        rt.flush();
        assert_eq!(store.stats().puts, 1);

        // Down: GET degrades and the async PUT lands in the replay queue.
        up.store(false, Ordering::Relaxed);
        rt.execute(&desc_double(), b"dark", |i| i.to_vec()).unwrap();
        rt.flush();
        assert_eq!(rt.pending_replays(), 1);
        assert!(rt.stats().degraded_calls >= 1);

        // Recovery: any successful round-trip drains the queue.
        up.store(true, Ordering::Relaxed);
        rt.execute(&desc_double(), b"light", |i| i.to_vec()).unwrap();
        rt.flush();
        assert_eq!(rt.pending_replays(), 0);
        let (_, outcome) =
            rt.execute(&desc_double(), b"dark", |_| panic!("must hit")).unwrap();
        assert_eq!(outcome, DedupOutcome::Hit);
    }

    #[test]
    fn resilience_rejects_moved_custom_client() {
        let (platform, store, authority) = setup();
        let client = InProcessClient::connect(
            Arc::clone(&store),
            &authority,
            &platform,
            &platform.create_enclave(b"c").unwrap(),
        )
        .unwrap();
        let result = DedupRuntime::builder(Arc::clone(&platform), b"custom-res")
            .client(Box::new(client))
            .resilience(crate::ResilienceConfig::default())
            .trusted_library(library())
            .build();
        assert!(matches!(result, Err(CoreError::UnexpectedResponse(_))));
    }

    #[test]
    fn client_factory_enables_async_put_without_resilience() {
        let (platform, store, authority) = setup();
        let up = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"factory-async")
            .client_factory(flaky_factory(&platform, &store, &authority, &up))
            .trusted_library(library())
            .async_put(true)
            .build()
            .unwrap();
        rt.execute(&desc_double(), b"x", |i| i.to_vec()).unwrap();
        rt.flush();
        assert_eq!(store.stats().puts, 1);
    }

    #[test]
    fn builder_requires_store() {
        let platform = Platform::new(CostModel::no_sgx());
        let result = DedupRuntime::builder(platform, b"no-store").build();
        assert!(matches!(result, Err(CoreError::UnexpectedResponse(_))));
    }

    #[test]
    fn batch_of_hits_costs_two_transitions_and_one_roundtrip() {
        let (platform, store, authority) = setup();
        let seeder = runtime(&platform, &store, &authority, b"seed-app");
        let identity = seeder.resolve(&desc_double()).unwrap();
        let inputs: Vec<[u8; 4]> = (0..8u32).map(|i| i.to_le_bytes()).collect();
        for input in &inputs {
            seeder.execute_raw(&identity, input, |d| d.to_vec()).unwrap();
        }

        let rt = runtime(&platform, &store, &authority, b"batch-app");
        let identity = rt.resolve(&desc_double()).unwrap();
        let store_gets_before = store.stats().gets;
        let before = rt.enclave().stats();
        let calls = inputs
            .iter()
            .map(|input| {
                BatchCall::new(identity, input.as_slice(), |_| panic!("all hits"))
            })
            .collect();
        let results = rt.execute_batch(calls).unwrap();
        let after = rt.enclave().stats();

        assert_eq!(results.len(), 8);
        for (i, (result, outcome)) in results.iter().enumerate() {
            assert_eq!(*outcome, DedupOutcome::Hit, "item {i}");
            assert_eq!(result, &inputs[i].to_vec(), "item {i}");
        }
        // The paper-motivating claim: N lookups, O(1) transitions. One
        // ECALL into the batch routine, one OCALL for the batched GET.
        assert_eq!(after.ecalls - before.ecalls, 1);
        assert_eq!(after.ocalls - before.ocalls, 1);
        assert!(after.transitions() - before.transitions() <= 2);
        // And a single store-side batch message served all 8 lookups.
        assert_eq!(store.stats().gets - store_gets_before, 8);
        assert_eq!(rt.stats().hits, 8);
    }

    #[test]
    fn batch_mixed_hits_and_misses_in_order() {
        let (platform, store, authority) = setup();
        let seeder = runtime(&platform, &store, &authority, b"seed-mixed");
        let identity = seeder.resolve(&desc_double()).unwrap();
        // Seed even inputs only.
        for i in (0..6u32).step_by(2) {
            seeder.execute_raw(&identity, &i.to_le_bytes(), |d| d.to_vec()).unwrap();
        }

        let rt = runtime(&platform, &store, &authority, b"mixed-app");
        let identity = rt.resolve(&desc_double()).unwrap();
        let inputs: Vec<[u8; 4]> = (0..6u32).map(|i| i.to_le_bytes()).collect();
        let calls = inputs
            .iter()
            .map(|input| BatchCall::new(identity, input.as_slice(), |d| d.to_vec()))
            .collect();
        let results = rt.execute_batch(calls).unwrap();

        for (i, (result, outcome)) in results.iter().enumerate() {
            let expected =
                if i % 2 == 0 { DedupOutcome::Hit } else { DedupOutcome::Miss };
            assert_eq!(*outcome, expected, "item {i}");
            assert_eq!(result, &inputs[i].to_vec(), "item {i}");
        }
        let stats = rt.stats();
        assert_eq!((stats.calls, stats.hits, stats.misses), (6, 3, 3));

        // The batched PUTs landed: everything hits now.
        let calls = inputs
            .iter()
            .map(|input| {
                BatchCall::new(identity, input.as_slice(), |_| panic!("all stored"))
            })
            .collect();
        let results = rt.execute_batch(calls).unwrap();
        assert!(results.iter().all(|(_, o)| *o == DedupOutcome::Hit));
    }

    #[test]
    fn empty_batch_is_free() {
        let (platform, store, authority) = setup();
        let rt = runtime(&platform, &store, &authority, b"empty-batch");
        let before = rt.enclave().stats();
        let results = rt.execute_batch(Vec::new()).unwrap();
        assert!(results.is_empty());
        assert_eq!(rt.enclave().stats().transitions(), before.transitions());
        assert_eq!(rt.stats().calls, 0);
    }

    #[test]
    fn hot_cache_serves_repeats_without_ocalls() {
        let (platform, store, authority) = setup();
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"cache-app")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .hot_cache(crate::HotCacheConfig::default())
            .build()
            .unwrap();

        let (_, outcome) = rt.execute(&desc_double(), b"warm", |i| i.to_vec()).unwrap();
        assert_eq!(outcome, DedupOutcome::Miss);
        let store_gets = store.stats().gets;

        let before = rt.enclave().stats();
        let (result, outcome) =
            rt.execute(&desc_double(), b"warm", |_| panic!("cached")).unwrap();
        let after = rt.enclave().stats();
        assert_eq!(result, b"warm");
        assert_eq!(outcome, DedupOutcome::HitLocalCache);
        // One ECALL (the dedup routine), zero OCALLs, zero store traffic.
        assert_eq!(after.ocalls - before.ocalls, 0);
        assert_eq!(store.stats().gets, store_gets);
        let stats = rt.stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        assert_eq!(stats.reused_bytes, 4);
    }

    #[test]
    fn hot_cache_batch_all_cached_skips_store_entirely() {
        let (platform, store, authority) = setup();
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"cache-batch")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .hot_cache(crate::HotCacheConfig::default())
            .build()
            .unwrap();
        let identity = rt.resolve(&desc_double()).unwrap();
        let inputs: Vec<[u8; 4]> = (0..4u32).map(|i| i.to_le_bytes()).collect();

        // First batch warms the cache (all misses).
        let calls = inputs
            .iter()
            .map(|input| BatchCall::new(identity, input.as_slice(), |d| d.to_vec()))
            .collect();
        rt.execute_batch(calls).unwrap();

        // Second batch: answered in-enclave, not a single OCALL.
        let store_gets = store.stats().gets;
        let before = rt.enclave().stats();
        let calls = inputs
            .iter()
            .map(|input| BatchCall::new(identity, input.as_slice(), |_| panic!("cached")))
            .collect();
        let results = rt.execute_batch(calls).unwrap();
        let after = rt.enclave().stats();
        assert!(results.iter().all(|(_, o)| *o == DedupOutcome::HitLocalCache));
        assert_eq!(after.ocalls - before.ocalls, 0);
        assert_eq!(after.ecalls - before.ecalls, 1);
        assert_eq!(store.stats().gets, store_gets);
        assert_eq!(rt.stats().cache_hits, 4);
    }

    #[test]
    fn batch_degrades_item_by_item_when_store_down() {
        let (platform, store, authority) = setup();
        let up = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"batch-degraded")
            .client_factory(flaky_factory(&platform, &store, &authority, &up))
            .resilience(fast_resilience())
            .trusted_library(library())
            .build()
            .unwrap();
        let identity = rt.resolve(&desc_double()).unwrap();
        let inputs: Vec<[u8; 4]> = (0..3u32).map(|i| i.to_le_bytes()).collect();

        // Store down: every item still succeeds via local execution, and
        // each PUT is parked individually.
        let calls = inputs
            .iter()
            .map(|input| BatchCall::new(identity, input.as_slice(), |d| d.to_vec()))
            .collect();
        let results = rt.execute_batch(calls).unwrap();
        assert!(results.iter().all(|(_, o)| *o == DedupOutcome::Miss));
        assert_eq!(rt.stats().degraded_calls, 3);
        assert_eq!(rt.pending_replays(), 3);
        assert_eq!(store.stats().puts, 0);

        // Recovery: one successful round-trip drains the queue item by item.
        up.store(true, Ordering::Relaxed);
        rt.execute(&desc_double(), b"recovered", |i| i.to_vec()).unwrap();
        assert_eq!(rt.pending_replays(), 0);
        assert_eq!(rt.stats().replayed_puts, 3);

        // The replayed records are now batch hits.
        let calls = inputs
            .iter()
            .map(|input| {
                BatchCall::new(identity, input.as_slice(), |_| panic!("replayed"))
            })
            .collect();
        let results = rt.execute_batch(calls).unwrap();
        assert!(results.iter().all(|(_, o)| *o == DedupOutcome::Hit));
    }

    #[test]
    fn batch_async_put_publishes_after_flush() {
        let (platform, store, authority) = setup();
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"batch-async")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .async_put(true)
            .build()
            .unwrap();
        let identity = rt.resolve(&desc_double()).unwrap();
        let inputs: Vec<[u8; 4]> = (0..5u32).map(|i| i.to_le_bytes()).collect();

        let before = rt.enclave().stats();
        let calls = inputs
            .iter()
            .map(|input| BatchCall::new(identity, input.as_slice(), |d| d.to_vec()))
            .collect();
        let results = rt.execute_batch(calls).unwrap();
        let after = rt.enclave().stats();
        assert!(results.iter().all(|(_, o)| *o == DedupOutcome::Miss));
        // Async PUT: the publishing OCALL happens on the worker's channel,
        // so the caller still paid only 1 ECALL + 1 OCALL.
        assert_eq!(after.ecalls - before.ecalls, 1);
        assert_eq!(after.ocalls - before.ocalls, 1);

        rt.flush();
        assert_eq!(store.stats().puts, 5);
        let calls = inputs
            .iter()
            .map(|input| BatchCall::new(identity, input.as_slice(), |_| panic!("hit")))
            .collect();
        let results = rt.execute_batch(calls).unwrap();
        assert!(results.iter().all(|(_, o)| *o == DedupOutcome::Hit));
    }

    #[test]
    fn stats_default_is_zeroed() {
        let (platform, store, authority) = setup();
        let rt = runtime(&platform, &store, &authority, b"fresh");
        assert_eq!(rt.stats(), RuntimeStats::default());
    }

    #[test]
    fn store_stats_surface_per_shard_counters() {
        let (platform, store, authority) = setup();
        let rt = runtime(&platform, &store, &authority, b"shard-stats");
        let (_, outcome) =
            rt.execute(&desc_double(), b"\x05", |input| input.to_vec()).unwrap();
        assert_eq!(outcome, DedupOutcome::Miss);
        rt.flush();
        let stats = rt.store_stats().unwrap();
        assert_eq!(stats.shards.len(), store.shard_count());
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.shards.iter().map(|s| s.entries).sum::<u64>(), 1);
    }

    fn prefilter_runtime(
        platform: &Arc<Platform>,
        store: &Arc<ResultStore>,
        authority: &Arc<SessionAuthority>,
        code: &[u8],
        config: PrefilterConfig,
    ) -> Arc<DedupRuntime> {
        DedupRuntime::builder(Arc::clone(platform), code)
            .in_process_store(Arc::clone(store), Arc::clone(authority))
            .trusted_library(library())
            .prefilter(config)
            .build()
            .unwrap()
    }

    #[test]
    fn filtered_miss_skips_the_get_round_trip() {
        let (platform, store, authority) = setup();
        let rt = prefilter_runtime(
            &platform,
            &store,
            &authority,
            b"filter-app",
            PrefilterConfig::default(),
        );

        // First call on an empty store: the first consult fetches the
        // filter snapshot (one OCALL), which proves absence, so the GET is
        // skipped — filter + PUT, never a GET.
        let before = rt.enclave().stats();
        let (result, outcome) = rt.execute(&desc_double(), b"a", |i| i.to_vec()).unwrap();
        let after = rt.enclave().stats();
        assert_eq!(result, b"a");
        assert_eq!(outcome, DedupOutcome::MissFiltered);
        assert_eq!(after.ecalls - before.ecalls, 1);
        assert_eq!(after.ocalls - before.ocalls, 2, "filter refresh + PUT, no GET");
        assert_eq!(store.stats().gets, 0);

        // Second distinct input: the cached snapshot still proves absence —
        // one ECALL and the PUT OCALL only.
        let (_, outcome) = rt.execute(&desc_double(), b"b", |i| i.to_vec()).unwrap();
        let done = rt.enclave().stats();
        assert_eq!(outcome, DedupOutcome::MissFiltered);
        assert_eq!(done.ecalls - after.ecalls, 1);
        assert_eq!(done.ocalls - after.ocalls, 1, "cached filter + PUT, no GET");
        assert_eq!(store.stats().gets, 0);
        assert_eq!(store.stats().puts, 2);
        assert_eq!(rt.stats().filtered_misses, 2);
        assert_eq!(rt.stats().misses, 2);
    }

    #[test]
    fn refreshed_filter_turns_known_tags_into_hits() {
        let (platform, store, authority) = setup();
        // refresh_ops: 1 ⇒ every consult refetches the snapshot, so the
        // client always sees the store's latest filter.
        let rt = prefilter_runtime(
            &platform,
            &store,
            &authority,
            b"refresh-app",
            PrefilterConfig { refresh_ops: 1 },
        );

        let (_, outcome) = rt.execute(&desc_double(), b"m", |i| i.to_vec()).unwrap();
        assert_eq!(outcome, DedupOutcome::MissFiltered);

        // The PUT carried the prefilter tag; the refreshed filter now says
        // "maybe present", so the call falls through to the GET and hits.
        // No false negative: a published result is always reachable.
        let (result, outcome) =
            rt.execute(&desc_double(), b"m", |_| panic!("must dedup")).unwrap();
        assert_eq!(outcome, DedupOutcome::Hit);
        assert_eq!(result, b"m");
        assert_eq!(store.stats().gets, 1);
    }

    #[test]
    fn filter_refresh_honors_the_staleness_budget() {
        let (platform, store, authority) = setup();
        let rt = prefilter_runtime(
            &platform,
            &store,
            &authority,
            b"budget-app",
            PrefilterConfig { refresh_ops: 2 },
        );

        let mut ocalls = Vec::new();
        for input in [b"q1".as_slice(), b"q2", b"q3"] {
            let before = rt.enclave().stats().ocalls;
            let (_, outcome) = rt.execute(&desc_double(), input, |i| i.to_vec()).unwrap();
            assert_eq!(outcome, DedupOutcome::MissFiltered);
            ocalls.push(rt.enclave().stats().ocalls - before);
        }
        // Consult 1 refreshes (cold), consult 2 rides the snapshot, consult
        // 3 crosses the budget and refreshes again.
        assert_eq!(ocalls, vec![2, 1, 2]);
    }

    #[test]
    fn prefilter_gates_the_hot_cache_probe() {
        let (platform, store, authority) = setup();
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"gate-app")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .hot_cache(HotCacheConfig::default())
            .prefilter(PrefilterConfig::default())
            .build()
            .unwrap();

        // Cold call: the cache's prefilter multiset proves "not cached", so
        // the probe (and its full-tag derivation) is skipped entirely —
        // cache_misses stays zero because no probe ever ran.
        let (_, outcome) = rt.execute(&desc_double(), b"g", |i| i.to_vec()).unwrap();
        assert_eq!(outcome, DedupOutcome::MissFiltered);
        assert_eq!(rt.stats().cache_misses, 0);

        // Warm call: the multiset admits the prefilter, the probe runs and
        // hits without leaving the enclave.
        let before = rt.enclave().stats();
        let (_, outcome) =
            rt.execute(&desc_double(), b"g", |_| panic!("cached")).unwrap();
        let after = rt.enclave().stats();
        assert_eq!(outcome, DedupOutcome::HitLocalCache);
        assert_eq!(rt.stats().cache_hits, 1);
        assert_eq!(after.ocalls - before.ocalls, 0);
    }

    #[test]
    fn cache_hits_share_one_buffer_across_calls() {
        let (platform, store, authority) = setup();
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"share-app")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .hot_cache(HotCacheConfig::default())
            .build()
            .unwrap();

        rt.execute(&desc_double(), b"buf", |_| vec![7u8; 4096]).unwrap();
        let (first, o1) = rt.execute(&desc_double(), b"buf", |_| panic!()).unwrap();
        let (second, o2) = rt.execute(&desc_double(), b"buf", |_| panic!()).unwrap();
        assert_eq!(o1, DedupOutcome::HitLocalCache);
        assert_eq!(o2, DedupOutcome::HitLocalCache);
        // Zero-copy: both hits alias the cache's buffer instead of cloning.
        assert_eq!(first.as_ptr(), second.as_ptr());
    }

    #[test]
    fn hot_cache_usage_accounts_shared_buffers_once() {
        let (platform, store, authority) = setup();
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"usage-app")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .hot_cache(HotCacheConfig { max_entries: 8, max_bytes: 1 << 20 })
            .build()
            .unwrap();

        rt.execute(&desc_double(), b"u1", |_| vec![1u8; 1000]).unwrap();
        rt.execute(&desc_double(), b"u2", |_| vec![2u8; 500]).unwrap();
        let (entries, bytes) = rt.hot_cache_usage().unwrap();
        assert_eq!(entries, 2);
        // Result bytes plus the fixed per-entry bookkeeping overhead —
        // each buffer charged exactly once.
        assert!((1500..1500 + 2 * 128).contains(&bytes), "bytes = {bytes}");

        // Hits hand out references to the same buffers; usage accounting
        // must not drift while callers hold (or drop) those references.
        let held: Vec<_> = (0..4)
            .map(|_| rt.execute(&desc_double(), b"u1", |_| panic!()).unwrap().0)
            .collect();
        assert_eq!(rt.hot_cache_usage().unwrap(), (2, bytes));
        drop(held);
        assert_eq!(rt.hot_cache_usage().unwrap(), (2, bytes));
    }

    #[test]
    fn lookup_probes_without_computing_or_publishing() {
        let (platform, store, authority) = setup();
        let rt = prefilter_runtime(
            &platform,
            &store,
            &authority,
            b"lookup-app",
            PrefilterConfig::default(),
        );
        let identity = rt.resolve(&desc_double()).unwrap();

        // Absent, cold filter: the refresh OCALL runs, proves absence, and
        // the probe returns before deriving the full SHA-256 or GETting.
        let before = rt.enclave().stats();
        assert_eq!(rt.lookup(&identity, b"absent-1").unwrap(), None);
        let after = rt.enclave().stats();
        assert_eq!(after.ecalls - before.ecalls, 1);
        assert_eq!(after.ocalls - before.ocalls, 1, "filter refresh only");

        // Absent, warm filter: pure in-enclave rejection — zero OCALLs.
        assert_eq!(rt.lookup(&identity, b"absent-2").unwrap(), None);
        let warm = rt.enclave().stats();
        assert_eq!(warm.ecalls - after.ecalls, 1);
        assert_eq!(warm.ocalls - after.ocalls, 0);
        assert_eq!(store.stats().gets, 0);

        // A probe is not a call: it never executes, publishes, or counts
        // as a miss.
        assert_eq!(rt.stats().calls, 0);
        assert_eq!(rt.stats().misses, 0);
        assert_eq!(store.stats().puts, 0);

        // Publish through a second runtime, then prove the probe can still
        // find it (the stale client filter is refreshed on budget, so use
        // a fresh runtime whose first consult fetches the latest filter).
        rt.execute_raw(&identity, b"present", |i| i.to_vec()).unwrap();
        let rt2 = prefilter_runtime(
            &platform,
            &store,
            &authority,
            b"lookup-app-2",
            PrefilterConfig::default(),
        );
        let identity2 = rt2.resolve(&desc_double()).unwrap();
        let found = rt2.lookup(&identity2, b"present").unwrap();
        assert_eq!(found.as_deref(), Some(b"present".as_slice()));
        assert_eq!(rt2.stats().hits, 1);
    }

    #[test]
    fn batch_filtered_misses_skip_the_batch_get() {
        let (platform, store, authority) = setup();
        let rt = prefilter_runtime(
            &platform,
            &store,
            &authority,
            b"batch-filter",
            PrefilterConfig::default(),
        );
        let identity = rt.resolve(&desc_double()).unwrap();
        let inputs: Vec<[u8; 4]> = (0..6u32).map(|i| i.to_le_bytes()).collect();

        let before = rt.enclave().stats();
        let calls = inputs
            .iter()
            .map(|input| BatchCall::new(identity, input.as_slice(), |d| d.to_vec()))
            .collect();
        let results = rt.execute_batch(calls).unwrap();
        let after = rt.enclave().stats();
        assert!(results.iter().all(|(_, o)| *o == DedupOutcome::MissFiltered));
        // One ECALL; the filter refresh and the batched PUT are the only
        // OCALLs — the batch GET round-trip never happened.
        assert_eq!(after.ecalls - before.ecalls, 1);
        assert_eq!(after.ocalls - before.ocalls, 2);
        assert_eq!(store.stats().gets, 0);
        assert_eq!(store.stats().puts, 6);
        assert_eq!(rt.stats().filtered_misses, 6);

        // A fresh runtime (cold filter ⇒ first consult sees the published
        // tags) resolves the same batch as hits through the batch GET.
        let rt2 = prefilter_runtime(
            &platform,
            &store,
            &authority,
            b"batch-filter-2",
            PrefilterConfig::default(),
        );
        let identity2 = rt2.resolve(&desc_double()).unwrap();
        let calls = inputs
            .iter()
            .map(|input| BatchCall::new(identity2, input.as_slice(), |_| panic!("hit")))
            .collect();
        let results = rt2.execute_batch(calls).unwrap();
        assert!(results.iter().all(|(_, o)| *o == DedupOutcome::Hit));
    }
}
