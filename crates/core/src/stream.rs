//! Streaming chunked deduplication: [`StreamSession`] and
//! [`DedupRuntime::execute_stream`].
//!
//! A session splits an incoming byte stream into content-defined chunks
//! (see [`crate::chunker`]) and runs each chunk through the full dedup
//! ladder as its own marked call: prefilter tag, hot-cache probe, merged
//! negative filter, batched store GET, RCE recovery, batched PUT. Chunks
//! are flushed in batches over [`DedupRuntime::execute_batch`], so a
//! session inherits everything the batch path already provides — O(1)
//! enclave transitions per flush, cluster routing, and per-item outage
//! degradation (a mid-stream store outage turns the affected chunks into
//! locally computed misses; the stream keeps going and its state remains
//! valid for the next push).
//!
//! The per-chunk function identity is the caller's identity: a chunk of
//! input bytes is deduplicated against *any* stream of *any* session that
//! produced the same chunk under the same function, which is exactly what
//! turns partial overlap between large inputs into partial hits.

// hot-path: deny-clone
//
// Chunk results stay behind `ResultBytes` from the batch path all the way
// into `StreamOutcome::parts`; this module must never copy a chunk result.

use crate::chunker::{Chunker, ChunkerConfig, ChunkerStats};
use crate::error::CoreError;
use crate::func::FuncIdentity;
use crate::result_bytes::ResultBytes;
use crate::runtime::{BatchCall, DedupOutcome, DedupRuntime};

/// Streaming policy for one session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    /// Chunk boundary policy.
    pub chunker: ChunkerConfig,
    /// Completed chunks buffered before a mid-stream flush through
    /// [`DedupRuntime::execute_batch`]. Larger batches amortize enclave
    /// transitions and round-trips; smaller batches bound session memory.
    pub flush_chunks: usize,
}

impl StreamConfig {
    /// The default policy: [`ChunkerConfig::DEFAULT`] with 32-chunk
    /// flushes.
    pub const DEFAULT: StreamConfig =
        StreamConfig { chunker: ChunkerConfig::DEFAULT, flush_chunks: 32 };

    /// A small policy for tests: [`ChunkerConfig::SMALL`] with 8-chunk
    /// flushes.
    pub const SMALL: StreamConfig =
        StreamConfig { chunker: ChunkerConfig::SMALL, flush_chunks: 8 };
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig::DEFAULT
    }
}

/// Counters describing one finished stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Chunks the stream was split into.
    pub chunks: u64,
    /// Chunks satisfied without executing the function (store hit or
    /// in-enclave hot-cache hit).
    pub chunk_hits: u64,
    /// Chunks that executed the function (any miss flavor).
    pub chunk_misses: u64,
    /// Chunker cuts forced by the `max` bound.
    pub forced_cuts: u64,
    /// Input bytes consumed.
    pub bytes_in: u64,
    /// Result bytes produced across all chunks.
    pub bytes_out: u64,
    /// Mid-stream and final batch flushes performed.
    pub flushes: u64,
}

/// The result of a finished stream: one [`ResultBytes`] per chunk, in
/// stream order, plus the per-chunk outcomes and counters.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Per-chunk results, in stream order. Hits are `Arc`-shared with the
    /// hot cache — reassembly via [`concat`](StreamOutcome::concat) is the
    /// only copy the streaming path ever makes.
    pub parts: Vec<ResultBytes>,
    /// Per-chunk dedup outcomes, parallel to `parts`.
    pub outcomes: Vec<DedupOutcome>,
    /// Counters for the whole stream.
    pub stats: StreamStats,
}

impl StreamOutcome {
    /// Reassembles the full output by concatenating the chunk results.
    pub fn concat(&self) -> Vec<u8> {
        let total: usize = self.parts.iter().map(|p| p.len()).sum();
        let mut out = Vec::with_capacity(total);
        for part in &self.parts {
            out.extend_from_slice(part.as_slice());
        }
        out
    }
}

/// An open streaming dedup session; create one with
/// [`DedupRuntime::open_stream`].
///
/// Push input fragments of any size with [`push`](StreamSession::push) —
/// chunk boundaries are split-invariant — then call
/// [`finish`](StreamSession::finish) for the tail chunk and the collected
/// [`StreamOutcome`].
pub struct StreamSession<'r, F> {
    runtime: &'r DedupRuntime,
    identity: FuncIdentity,
    compute: F,
    chunker: Chunker,
    flush_chunks: usize,
    pending: Vec<Vec<u8>>,
    parts: Vec<ResultBytes>,
    outcomes: Vec<DedupOutcome>,
    flushes: u64,
}

impl<'r, F> StreamSession<'r, F>
where
    F: Fn(&[u8]) -> Vec<u8>,
{
    pub(crate) fn new(
        runtime: &'r DedupRuntime,
        identity: FuncIdentity,
        config: StreamConfig,
        compute: F,
    ) -> Self {
        StreamSession {
            runtime,
            identity,
            compute,
            chunker: Chunker::new(config.chunker),
            flush_chunks: config.flush_chunks.max(1),
            pending: Vec::new(),
            parts: Vec::new(),
            outcomes: Vec::new(),
            flushes: 0,
        }
    }

    /// Chunks resolved so far (a resumability probe for callers that
    /// checkpoint mid-stream).
    pub fn chunks_resolved(&self) -> usize {
        self.parts.len()
    }

    /// Consumes the next fragment of the input stream, flushing completed
    /// chunks through the batch dedup path whenever `flush_chunks` of
    /// them have accumulated.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from the batch path. With the resilience
    /// layer configured, a store outage is *not* an error: the affected
    /// chunks degrade to local execution and the session stays usable.
    pub fn push(&mut self, bytes: &[u8]) -> Result<(), CoreError> {
        let pending = &mut self.pending;
        self.chunker.push(bytes, |chunk| pending.push(chunk));
        if self.pending.len() >= self.flush_chunks {
            self.flush_pending()?;
        }
        Ok(())
    }

    /// Flushes the final partial chunk and returns the collected
    /// [`StreamOutcome`].
    ///
    /// # Errors
    ///
    /// As [`push`](StreamSession::push).
    pub fn finish(mut self) -> Result<StreamOutcome, CoreError> {
        if let Some(tail) = self.chunker.finish() {
            self.pending.push(tail);
        }
        self.flush_pending()?;

        let chunker: ChunkerStats = self.chunker.stats();
        let mut stats = StreamStats {
            chunks: chunker.chunks,
            forced_cuts: chunker.forced_cuts,
            bytes_in: chunker.bytes,
            bytes_out: self.parts.iter().map(|p| p.len() as u64).sum(),
            flushes: self.flushes,
            ..StreamStats::default()
        };
        for outcome in &self.outcomes {
            match outcome {
                DedupOutcome::Hit | DedupOutcome::HitLocalCache => {
                    stats.chunk_hits += 1;
                }
                _ => stats.chunk_misses += 1,
            }
        }

        let telemetry = self.runtime.telemetry();
        telemetry.stream_chunks.add(stats.chunks);
        telemetry.stream_chunk_hits.add(stats.chunk_hits);
        telemetry.stream_bytes.add(stats.bytes_in);
        telemetry.chunker_forced_cuts.add(stats.forced_cuts);

        Ok(StreamOutcome { parts: self.parts, outcomes: self.outcomes, stats })
    }

    /// Runs every buffered chunk through one `execute_batch` call.
    fn flush_pending(&mut self) -> Result<(), CoreError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.flushes += 1;
        let chunks = std::mem::take(&mut self.pending);
        let runtime = self.runtime;
        let identity = self.identity;
        let compute = &self.compute;
        let calls: Vec<BatchCall<'_>> = chunks
            .iter()
            .map(|chunk| {
                BatchCall::new(identity, chunk.as_slice(), move |input| compute(input))
            })
            .collect();
        let results = runtime
            .telemetry()
            .stream_flush_duration
            .time(|| runtime.execute_batch(calls))?;
        for (part, outcome) in results {
            self.parts.push(part);
            self.outcomes.push(outcome);
        }
        Ok(())
    }
}

impl<F> std::fmt::Debug for StreamSession<'_, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSession")
            .field("chunks_resolved", &self.parts.len())
            .field("pending_chunks", &self.pending.len())
            .field("pending_bytes", &self.chunker.pending_len())
            .finish_non_exhaustive()
    }
}

impl DedupRuntime {
    /// Opens a streaming dedup session for `identity`.
    ///
    /// `compute` is the per-chunk fallback: it receives one chunk's bytes
    /// and must return that chunk's result. For the reassembled stream
    /// output to be meaningful, `compute` must be *chunk-local* — the
    /// output for a chunk depends only on that chunk's bytes (compression
    /// with per-chunk framing, per-record parsing, hashing, filtering all
    /// qualify; a stateful scan across chunk boundaries does not).
    pub fn open_stream<F>(
        &self,
        identity: FuncIdentity,
        config: StreamConfig,
        compute: F,
    ) -> StreamSession<'_, F>
    where
        F: Fn(&[u8]) -> Vec<u8>,
    {
        StreamSession::new(self, identity, config, compute)
    }

    /// Convenience: stream a whole in-memory input through
    /// [`open_stream`](DedupRuntime::open_stream) in one call.
    ///
    /// # Errors
    ///
    /// As [`StreamSession::push`] / [`StreamSession::finish`].
    pub fn execute_stream<F>(
        &self,
        identity: FuncIdentity,
        config: StreamConfig,
        input: &[u8],
        compute: F,
    ) -> Result<StreamOutcome, CoreError>
    where
        F: Fn(&[u8]) -> Vec<u8>,
    {
        let mut session = self.open_stream(identity, config, compute);
        session.push(input)?;
        session.finish()
    }
}
