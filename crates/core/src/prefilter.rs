//! Cheap prefilter tags — the first rung of the tiered tag pipeline.
//!
//! The full comp-tag `t ← Hash(func, m)` is a SHA-256 over the entire input,
//! which is exactly the right collision resistance for *correctness* but far
//! more work than a *negative* answer needs. A [`prefilter_tag`] is a 64-bit
//! fingerprint over the function identity, the input length, and a sparse
//! sample of the input bytes: first and last 64 bytes plus a handful of
//! strided probes through the middle. Deriving it reads at most ~200 bytes
//! regardless of input size.
//!
//! Properties that make it usable as a filter key:
//!
//! - **Deterministic**: the same `(func, input)` always yields the same
//!   prefilter tag, so equal computations always collide (no false
//!   negatives at this tier — the tiering stays conservative).
//! - **Cheap**: O(1) bytes touched; no block cipher, no compression
//!   function — an FNV-1a accumulation finished with a splitmix64 mix.
//! - **Approximate**: *different* inputs may collide (same length, same
//!   sampled bytes). A collision only costs a wasted fall-through to the
//!   full-tag path; the full comp-tag remains the sole correctness
//!   authority.
//!
//! The prefilter tag is consulted against the in-enclave hot cache and the
//! store's negative filters ([`speed_wire::NegativeFilter`]) before any
//! SHA-256 or store round-trip is spent.

// hot-path: deny-clone

use crate::func::FuncIdentity;

/// Bytes sampled verbatim from each end of the input.
const EDGE_SAMPLE: usize = 64;

/// Number of strided single-byte probes through the middle of the input.
const MID_PROBES: usize = 16;

/// Inputs no longer than this are hashed in full (cheaper than sampling).
const FULL_HASH_LEN: usize = 2 * EDGE_SAMPLE;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Derives the 64-bit prefilter tag for `(func, input)`.
///
/// See the module docs for the contract: deterministic, O(1) bytes
/// touched, collisions allowed (they only cost a fall-through to the full
/// SHA-256 comp-tag).
pub fn prefilter_tag(func: &FuncIdentity, input: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &byte in func.as_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    // The input length participates directly: most non-duplicate pairs
    // already differ here, before any byte is sampled.
    for byte in (input.len() as u64).to_le_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    if input.len() <= FULL_HASH_LEN {
        for &byte in input {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    } else {
        for &byte in &input[..EDGE_SAMPLE] {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        for &byte in &input[input.len() - EDGE_SAMPLE..] {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        // Strided probes through the middle, spread across the unsampled
        // region so localized edits still perturb the tag with good odds.
        let middle = &input[EDGE_SAMPLE..input.len() - EDGE_SAMPLE];
        let stride = (middle.len() / MID_PROBES).max(1);
        for probe in middle.iter().step_by(stride).take(MID_PROBES) {
            h = (h ^ u64::from(*probe)).wrapping_mul(FNV_PRIME);
        }
    }
    splitmix64(h)
}

/// SplitMix64 finalizer: spreads the FNV accumulator's entropy across all
/// 64 bits so the Bloom filter's derived probe positions are well mixed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{FuncDesc, LibraryRegistry, TrustedLibrary};

    fn identity(code: &[u8]) -> FuncIdentity {
        let mut library = TrustedLibrary::new("lib", "1");
        library.register("f()", code);
        let mut registry = LibraryRegistry::new();
        registry.add(library);
        registry.resolve(&FuncDesc::new("lib", "1", "f()")).unwrap()
    }

    #[test]
    fn deterministic_for_equal_inputs() {
        let f = identity(b"code");
        let input = vec![7u8; 4096];
        assert_eq!(prefilter_tag(&f, &input), prefilter_tag(&f, &input));
    }

    #[test]
    fn distinguishes_function_identity() {
        let input = vec![7u8; 256];
        assert_ne!(
            prefilter_tag(&identity(b"code v1"), &input),
            prefilter_tag(&identity(b"code v2"), &input)
        );
    }

    #[test]
    fn distinguishes_length() {
        let f = identity(b"code");
        assert_ne!(
            prefilter_tag(&f, &vec![0u8; 1000]),
            prefilter_tag(&f, &vec![0u8; 1001])
        );
    }

    #[test]
    fn distinguishes_edits_at_the_edges() {
        let f = identity(b"code");
        let base = vec![1u8; 8192];
        let mut head = base.as_slice().to_vec(); // allow-clone: test fixture
        head[0] = 2;
        let mut tail = base.as_slice().to_vec(); // allow-clone: test fixture
        *tail.last_mut().unwrap() = 2;
        assert_ne!(prefilter_tag(&f, &base), prefilter_tag(&f, &head));
        assert_ne!(prefilter_tag(&f, &base), prefilter_tag(&f, &tail));
    }

    #[test]
    fn short_inputs_hash_every_byte() {
        let f = identity(b"code");
        for flip in 0..FULL_HASH_LEN {
            let mut input = vec![0u8; FULL_HASH_LEN];
            input[flip] = 1;
            assert_ne!(
                prefilter_tag(&f, &input),
                prefilter_tag(&f, &[0u8; FULL_HASH_LEN]),
                "flip at {flip} must perturb the tag"
            );
        }
    }

    #[test]
    fn collisions_are_rare_for_random_inputs() {
        let f = identity(b"code");
        let mut seen = std::collections::HashSet::new();
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..10_000 {
            // Cheap xorshift-derived inputs of varying length.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let len = 32 + (x % 512) as usize;
            let input: Vec<u8> =
                (0..len).map(|i| (x.rotate_left(i as u32 % 64) & 0xFF) as u8).collect();
            seen.insert(prefilter_tag(&f, &input));
        }
        // With 10k random inputs in a 64-bit space, collisions should be
        // essentially absent; tolerate a handful.
        assert!(seen.len() > 9_990, "too many collisions: {}", 10_000 - seen.len());
    }
}
