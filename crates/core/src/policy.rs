//! Adaptive deduplication strategy — the paper's stated future direction
//! (§VII): "explore an automatic extension to enable the application to
//! adjust its deduplication strategy via dynamic analyzing the underlying
//! computations during its runtime."
//!
//! The evaluation shows deduplication pays off only when the computation
//! is slow relative to the crypto/communication overhead (SIFT: 90×;
//! compression: barely 4×; paper conclusion: "SPEED is more suitable for
//! deduplicating a time-consuming function"). The adaptive policy measures
//! both sides *per function* at runtime and bypasses deduplication for
//! functions where it cannot win, re-probing periodically in case the
//! trade-off shifts (input sizes change, store warms up).

use std::collections::HashMap;

use std::sync::Mutex;

use crate::func::FuncIdentity;

/// When the runtime consults the store vs. executes directly.
#[derive(Clone, Debug, Default)]
pub enum DedupPolicy {
    /// Always deduplicate (the paper's prototype behaviour).
    #[default]
    Always,
    /// Measure per-function costs and bypass deduplication where it loses.
    Adaptive(AdaptiveConfig),
}

/// Tuning knobs for [`DedupPolicy::Adaptive`].
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Deduplicate only while `expected compute time ≥ min_speedup ×
    /// expected dedup cost`. 1.0 means "dedup whenever it breaks even".
    pub min_speedup: f64,
    /// Number of initial calls per function that always deduplicate, to
    /// gather measurements before any bypass decision.
    pub warmup_calls: u64,
    /// While bypassing, one call in `probe_interval` still deduplicates to
    /// refresh the measurements.
    pub probe_interval: u64,
    /// Exponential-moving-average weight for new samples (0, 1].
    pub ewma_alpha: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_speedup: 1.0,
            warmup_calls: 3,
            probe_interval: 16,
            ewma_alpha: 0.3,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Ewma {
    value: f64,
    initialized: bool,
}

impl Ewma {
    fn update(&mut self, sample: f64, alpha: f64) {
        if self.initialized {
            self.value = alpha * sample + (1.0 - alpha) * self.value;
        } else {
            self.value = sample;
            self.initialized = true;
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct FuncProfile {
    compute_ns: Ewma,
    dedup_overhead_ns: Ewma,
    calls: u64,
    bypassed_since_probe: u64,
}

/// What the policy decided for one call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyDecision {
    /// Go through the full dedup protocol.
    Dedup,
    /// Execute directly; deduplication is not expected to pay off.
    Bypass,
}

/// Per-function cost profiles driving adaptive decisions.
#[derive(Debug, Default)]
pub struct AdaptiveProfiler {
    profiles: Mutex<HashMap<FuncIdentity, FuncProfile>>,
}

impl AdaptiveProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        AdaptiveProfiler::default()
    }

    /// Decides whether this call should deduplicate.
    pub fn decide(&self, func: &FuncIdentity, config: &AdaptiveConfig) -> PolicyDecision {
        let mut profiles = self.profiles.lock().expect("profiler lock poisoned");
        let profile = profiles.entry(*func).or_default();
        profile.calls += 1;
        if profile.calls <= config.warmup_calls
            || !profile.compute_ns.initialized
            || !profile.dedup_overhead_ns.initialized
        {
            return PolicyDecision::Dedup;
        }
        let worth_it = profile.compute_ns.value
            >= config.min_speedup * profile.dedup_overhead_ns.value;
        if worth_it {
            profile.bypassed_since_probe = 0;
            return PolicyDecision::Dedup;
        }
        // Periodic probe while bypassing, so a shift in the trade-off is
        // noticed.
        profile.bypassed_since_probe += 1;
        if profile.bypassed_since_probe >= config.probe_interval {
            profile.bypassed_since_probe = 0;
            PolicyDecision::Dedup
        } else {
            PolicyDecision::Bypass
        }
    }

    /// Records the pure computation time of one executed call.
    pub fn record_compute(&self, func: &FuncIdentity, ns: u64, config: &AdaptiveConfig) {
        let mut profiles = self.profiles.lock().expect("profiler lock poisoned");
        let profile = profiles.entry(*func).or_default();
        profile.compute_ns.update(ns as f64, config.ewma_alpha);
    }

    /// Records the dedup overhead of one call: for a hit, the entire call
    /// time (tag + GET + decrypt); for a miss, call time minus compute
    /// time (tag + GET + encrypt + PUT).
    pub fn record_dedup_overhead(
        &self,
        func: &FuncIdentity,
        ns: u64,
        config: &AdaptiveConfig,
    ) {
        let mut profiles = self.profiles.lock().expect("profiler lock poisoned");
        let profile = profiles.entry(*func).or_default();
        profile.dedup_overhead_ns.update(ns as f64, config.ewma_alpha);
    }

    /// The profiled `(compute_ns, dedup_overhead_ns)` estimates, if both
    /// sides have been observed.
    pub fn estimates(&self, func: &FuncIdentity) -> Option<(f64, f64)> {
        let profiles = self.profiles.lock().expect("profiler lock poisoned");
        let profile = profiles.get(func)?;
        (profile.compute_ns.initialized && profile.dedup_overhead_ns.initialized)
            .then_some((profile.compute_ns.value, profile.dedup_overhead_ns.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{FuncDesc, LibraryRegistry, TrustedLibrary};

    fn identity(tag: &str) -> FuncIdentity {
        let mut library = TrustedLibrary::new("lib", "1");
        library.register("f()", tag.as_bytes());
        let mut registry = LibraryRegistry::new();
        registry.add(library);
        registry.resolve(&FuncDesc::new("lib", "1", "f()")).unwrap()
    }

    #[test]
    fn warmup_always_dedups() {
        let profiler = AdaptiveProfiler::new();
        let config = AdaptiveConfig::default();
        let func = identity("warm");
        for _ in 0..config.warmup_calls {
            assert_eq!(profiler.decide(&func, &config), PolicyDecision::Dedup);
        }
    }

    #[test]
    fn fast_function_gets_bypassed() {
        let profiler = AdaptiveProfiler::new();
        let config = AdaptiveConfig::default();
        let func = identity("fast");
        // Compute is 10µs but dedup costs 1ms: not worth it.
        for _ in 0..5 {
            profiler.decide(&func, &config);
            profiler.record_compute(&func, 10_000, &config);
            profiler.record_dedup_overhead(&func, 1_000_000, &config);
        }
        assert_eq!(profiler.decide(&func, &config), PolicyDecision::Bypass);
    }

    #[test]
    fn slow_function_keeps_dedup() {
        let profiler = AdaptiveProfiler::new();
        let config = AdaptiveConfig::default();
        let func = identity("slow");
        for _ in 0..5 {
            profiler.decide(&func, &config);
            profiler.record_compute(&func, 50_000_000, &config);
            profiler.record_dedup_overhead(&func, 1_000_000, &config);
        }
        assert_eq!(profiler.decide(&func, &config), PolicyDecision::Dedup);
    }

    #[test]
    fn bypassed_function_is_probed_periodically() {
        let profiler = AdaptiveProfiler::new();
        let config = AdaptiveConfig { probe_interval: 4, ..AdaptiveConfig::default() };
        let func = identity("probe");
        for _ in 0..5 {
            profiler.decide(&func, &config);
            profiler.record_compute(&func, 1_000, &config);
            profiler.record_dedup_overhead(&func, 1_000_000, &config);
        }
        let mut decisions = Vec::new();
        for _ in 0..8 {
            decisions.push(profiler.decide(&func, &config));
        }
        assert!(decisions.contains(&PolicyDecision::Bypass));
        assert!(decisions.contains(&PolicyDecision::Dedup), "{decisions:?}");
    }

    #[test]
    fn trade_off_shift_reverses_decision() {
        let profiler = AdaptiveProfiler::new();
        let config = AdaptiveConfig { probe_interval: 2, ..AdaptiveConfig::default() };
        let func = identity("shift");
        // Initially fast → bypass.
        for _ in 0..5 {
            profiler.decide(&func, &config);
            profiler.record_compute(&func, 1_000, &config);
            profiler.record_dedup_overhead(&func, 1_000_000, &config);
        }
        assert_eq!(profiler.decide(&func, &config), PolicyDecision::Bypass);
        // Workload becomes much heavier (probes keep measuring).
        for _ in 0..30 {
            if profiler.decide(&func, &config) == PolicyDecision::Dedup {
                profiler.record_compute(&func, 100_000_000, &config);
                profiler.record_dedup_overhead(&func, 1_000_000, &config);
            } else {
                profiler.record_compute(&func, 100_000_000, &config);
            }
        }
        assert_eq!(profiler.decide(&func, &config), PolicyDecision::Dedup);
    }

    #[test]
    fn profiles_are_per_function() {
        let profiler = AdaptiveProfiler::new();
        let config = AdaptiveConfig::default();
        let fast = identity("fast-fn");
        let slow = identity("slow-fn");
        for _ in 0..5 {
            profiler.decide(&fast, &config);
            profiler.record_compute(&fast, 1_000, &config);
            profiler.record_dedup_overhead(&fast, 1_000_000, &config);
            profiler.decide(&slow, &config);
            profiler.record_compute(&slow, 100_000_000, &config);
            profiler.record_dedup_overhead(&slow, 1_000_000, &config);
        }
        assert_eq!(profiler.decide(&fast, &config), PolicyDecision::Bypass);
        assert_eq!(profiler.decide(&slow, &config), PolicyDecision::Dedup);
    }

    #[test]
    fn estimates_exposed() {
        let profiler = AdaptiveProfiler::new();
        let config = AdaptiveConfig::default();
        let func = identity("est");
        assert!(profiler.estimates(&func).is_none());
        profiler.record_compute(&func, 2_000, &config);
        profiler.record_dedup_overhead(&func, 500, &config);
        let (compute, overhead) = profiler.estimates(&func).unwrap();
        assert_eq!(compute, 2_000.0);
        assert_eq!(overhead, 500.0);
    }
}
