//! Multi-node store mode: consistent-hash routing, R-way replication, and
//! failover re-attestation (ROADMAP item 3, specified in `docs/CLUSTER.md`).
//!
//! One store process is the scalability and availability ceiling of the
//! single-node deployment. [`ClusterClient`] removes it client-side, with
//! no coordinator in the data path:
//!
//! - **Routing** — computation tags are placed on a versioned
//!   [`HashRing`] of virtual nodes (generalizing the store's tag-lead-byte
//!   shard routing from one process to a node set). A tag's replica set is
//!   the first R distinct nodes clockwise from its ring point.
//! - **Replication** — PUTs go to all R replicas with write-quorum 1: the
//!   first `PUT_RESPONSE` acknowledges the call, and a replica that cannot
//!   be reached becomes a *hint* instead of an error.
//! - **Reads** — GETs read-from-any: replicas are tried in ring order and
//!   the first `found` record wins, so one lost node (or an undrained
//!   hint) never hides an acknowledged PUT.
//! - **Hinted handoff** — hints are owned by the cluster, not by a node:
//!   when any down node answers again the queue drains, and every hinted
//!   PUT is **re-routed through the current ring** at drain time, so a
//!   queued PUT cannot land on a node that has since left the ring.
//! - **Re-attestation** — each node gets its own
//!   [`ResilientClient`] (connector + circuit
//!   breaker), so members fail independently and every per-node reconnect
//!   runs the full attestation handshake again.
//!
//! The client implements [`StoreClient`], so a
//! [`DedupRuntime`](crate::DedupRuntime) adopts a cluster with one builder
//! call (`cluster_store`) and keeps its own resilience/replay layer as an
//! outer line of defence for whole-cluster outages.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use speed_telemetry::{names, Counter, Gauge};
use speed_wire::{
    AppId, BatchItem, BatchItemResult, BatchStatus, CompTag, FilterBody, Message,
    RingBody, RingNodeBody, StatsBody,
};

use crate::client::StoreClient;
use crate::error::CoreError;
use crate::resilience::{
    Connector, ReplayQueue, ResilienceConfig, ResilienceStats, ResilientClient,
    RetryPolicy,
};

/// Stable identity of one store node on the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer for ring
/// point placement (no external hash crate needed; tags are already
/// SHA-256 output, vnode points need the mixing).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A versioned consistent-hash ring of virtual nodes.
///
/// Each member contributes `vnodes × weight` points placed by mixing
/// `(node id, vnode index)`; a tag is owned by the first point clockwise
/// from its own ring position. Adding or removing one of N equally
/// weighted nodes therefore moves only ~K/N of K keys — the invariant
/// `tests/cluster.rs` checks as a property.
#[derive(Clone, Debug)]
pub struct HashRing {
    version: u64,
    points: Vec<(u64, NodeId)>,
    nodes: Vec<NodeId>,
}

impl HashRing {
    /// Builds a ring from `(node, weight)` members with `vnodes` virtual
    /// points per unit of weight. Zero-weight members own no keyspace.
    pub fn build(version: u64, members: &[(NodeId, u32)], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut points = Vec::new();
        let mut nodes = Vec::new();
        for &(node, weight) in members {
            if weight == 0 {
                continue;
            }
            nodes.push(node);
            for vnode in 0..vnodes.saturating_mul(weight as usize) {
                let point = mix64((u64::from(node.0) << 32) | vnode as u64);
                points.push((point, node));
            }
        }
        points.sort_unstable();
        nodes.sort_unstable();
        nodes.dedup();
        HashRing { version, points, nodes }
    }

    /// Builds a ring from a wire-level topology announcement.
    pub fn from_body(body: &RingBody, vnodes: usize) -> Self {
        let members: Vec<(NodeId, u32)> =
            body.nodes.iter().map(|n| (NodeId(n.id), n.weight)).collect();
        HashRing::build(body.version, &members, vnodes)
    }

    /// The topology version this ring was built from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Member nodes, sorted by id.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The ring position of a computation tag.
    pub fn point_of(tag: &CompTag) -> u64 {
        let mut first = [0u8; 8];
        first.copy_from_slice(&tag.as_bytes()[..8]);
        mix64(u64::from_le_bytes(first))
    }

    /// The node owning `tag` (the first replica), if the ring is non-empty.
    pub fn primary(&self, tag: &CompTag) -> Option<NodeId> {
        self.replicas(tag, 1).into_iter().next()
    }

    /// The first `r` distinct nodes clockwise from `tag`'s ring position.
    /// Returns fewer than `r` nodes only when the ring has fewer members.
    pub fn replicas(&self, tag: &CompTag, r: usize) -> Vec<NodeId> {
        if self.points.is_empty() || r == 0 {
            return Vec::new();
        }
        let want = r.min(self.nodes.len());
        let point = Self::point_of(tag);
        let start = self.points.partition_point(|&(p, _)| p < point);
        let mut picked = Vec::with_capacity(want);
        for step in 0..self.points.len() {
            let (_, node) = self.points[(start + step) % self.points.len()];
            if !picked.contains(&node) {
                picked.push(node);
                if picked.len() == want {
                    break;
                }
            }
        }
        picked
    }
}

/// Everything a [`ClusterClient`] needs to know.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Replica count R per tag (clamped to the member count). Default 2.
    pub replication: usize,
    /// Virtual ring points per unit of node weight. Default 64.
    pub vnodes: usize,
    /// Maximum hinted PUTs parked for down replicas; the oldest hint is
    /// evicted (and counted) when full. Default 1024.
    pub hint_capacity: usize,
    /// Per-node retry/breaker policy. The default fails over to the next
    /// replica instead of retrying the same node (`RetryPolicy::none()`),
    /// because with R ≥ 2 a sibling replica beats a backoff sleep.
    pub node_resilience: ResilienceConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replication: 2,
            vnodes: 64,
            hint_capacity: 1024,
            node_resilience: ResilienceConfig {
                retry: RetryPolicy::none(),
                ..ResilienceConfig::default()
            },
        }
    }
}

/// Monotonic counters describing a cluster client's activity (scalar
/// mirror of the `cluster_*` telemetry series).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClusterCounts {
    /// Requests routed to any node (one per node round-trip).
    pub routed: u64,
    /// Node round-trips that failed and moved on to the next replica
    /// (or were converted into a hint).
    pub failovers: u64,
    /// Acknowledged PUTs parked as hints because a replica was down.
    pub hinted_puts: u64,
    /// Hinted PUTs delivered after re-routing through the current ring.
    pub hints_replayed: u64,
    /// Hinted PUTs evicted because the bounded hint queue overflowed.
    pub hints_dropped: u64,
}

#[derive(Debug, Default)]
struct ClusterStats {
    routed: AtomicU64,
    failovers: AtomicU64,
}

/// Bounded FIFO of PUT messages owed to unreachable replicas. Unlike the
/// per-connection [`ReplayQueue`], hints carry no endpoint identity: the
/// drain re-routes each message through the ring *current at drain time*,
/// so a hint queued while node A owned the tag is delivered to whichever
/// nodes own it now.
struct HintQueue {
    inner: Mutex<VecDeque<Message>>,
    capacity: usize,
    hinted: AtomicU64,
    replayed: AtomicU64,
    dropped: AtomicU64,
    hinted_tm: Counter,
    replayed_tm: Counter,
    dropped_tm: Counter,
    depth_tm: Gauge,
}

impl HintQueue {
    fn new(capacity: usize) -> Self {
        let reg = speed_telemetry::global();
        HintQueue {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            hinted: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            hinted_tm: reg.counter(
                names::CLUSTER_HINTED_PUTS_TOTAL,
                "Acknowledged PUTs parked as hints because a replica was down",
            ),
            replayed_tm: reg.counter(
                names::CLUSTER_HINTS_REPLAYED_TOTAL,
                "Hinted PUTs delivered after re-routing through the current ring",
            ),
            dropped_tm: reg.counter(
                names::CLUSTER_HINTS_DROPPED_TOTAL,
                "Hinted PUTs evicted because the bounded hint queue overflowed",
            ),
            depth_tm: reg.gauge(
                names::CLUSTER_HINT_QUEUE_DEPTH,
                "PUTs currently parked in the cluster hint queue",
            ),
        }
    }

    fn push(&self, message: Message) {
        let mut queue = lock_recover(&self.inner);
        while queue.len() >= self.capacity {
            queue.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.dropped_tm.inc();
            self.depth_tm.sub(1);
        }
        queue.push_back(message);
        self.hinted.fetch_add(1, Ordering::Relaxed);
        self.hinted_tm.inc();
        self.depth_tm.add(1);
    }

    fn push_front(&self, message: Message) {
        lock_recover(&self.inner).push_front(message);
        self.depth_tm.add(1);
    }

    fn pop(&self) -> Option<Message> {
        let popped = lock_recover(&self.inner).pop_front();
        if popped.is_some() {
            self.depth_tm.sub(1);
        }
        popped
    }

    fn note_replayed(&self) {
        self.replayed.fetch_add(1, Ordering::Relaxed);
        self.replayed_tm.inc();
    }

    fn len(&self) -> usize {
        lock_recover(&self.inner).len()
    }
}

impl Drop for HintQueue {
    fn drop(&mut self) {
        // The depth gauge aggregates every live queue in the process.
        let remaining = self.len() as u64;
        if remaining > 0 {
            self.depth_tm.sub(remaining);
        }
    }
}

/// One member's failure domain: its own resilient (reconnect-and-re-attest)
/// client, breaker, counters, and `{node=N}` telemetry series.
struct NodeHandle {
    id: NodeId,
    client: Mutex<ResilientClient>,
    stats: Arc<ResilienceStats>,
    was_down: AtomicBool,
    routed_tm: Counter,
    failovers_tm: Counter,
    up_tm: Gauge,
    reattests_tm: Gauge,
}

impl fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeHandle").field("id", &self.id).finish_non_exhaustive()
    }
}

impl NodeHandle {
    fn new(id: NodeId, connector: Connector, config: &ClusterConfig) -> Arc<Self> {
        let reg = speed_telemetry::global();
        let label = id.to_string();
        let labels: [(&str, &str); 1] = [("node", label.as_str())];
        let mut node_config = config.node_resilience.clone();
        // De-correlate per-node jitter while keeping seeded runs seeded.
        node_config.jitter_seed =
            node_config.jitter_seed.map(|seed| seed ^ u64::from(id.0));
        let stats = Arc::new(ResilienceStats::default());
        // Hints are cluster-owned; the per-node replay queue stays empty.
        let replay = Arc::new(ReplayQueue::new(1));
        Arc::new(NodeHandle {
            id,
            client: Mutex::new(ResilientClient::new(
                connector,
                node_config,
                Arc::clone(&stats),
                replay,
            )),
            stats,
            was_down: AtomicBool::new(false),
            routed_tm: reg.counter_with(
                names::CLUSTER_ROUTED_REQUESTS_TOTAL,
                "Requests the cluster client routed to one node",
                &labels,
            ),
            failovers_tm: reg.counter_with(
                names::CLUSTER_FAILOVERS_TOTAL,
                "Requests that failed over past one unreachable replica",
                &labels,
            ),
            up_tm: reg.gauge_with(
                names::CLUSTER_NODE_UP,
                "1 while the node answered its last round-trip, 0 after a failure",
                &labels,
            ),
            reattests_tm: reg.gauge_with(
                names::CLUSTER_NODE_REATTESTATIONS,
                "Re-attested reconnects performed against one node",
                &labels,
            ),
        })
    }

    /// One routed round-trip. The second return value is `true` when this
    /// call observed the node *recovering* (first success after a failure)
    /// — the signal that hinted handoff should drain.
    fn send(&self, request: &Message) -> (Result<Message, CoreError>, bool) {
        self.routed_tm.inc();
        let result = lock_recover(&self.client).roundtrip(request);
        let recovered = match &result {
            Ok(_) => {
                self.up_tm.set(1);
                self.was_down.swap(false, Ordering::Relaxed)
            }
            Err(_) => {
                self.up_tm.set(0);
                self.was_down.store(true, Ordering::Relaxed);
                false
            }
        };
        self.reattests_tm.set(self.stats.reconnects.load(Ordering::Relaxed));
        (result, recovered)
    }

    fn note_failover(&self) {
        self.failovers_tm.inc();
    }
}

struct Topology {
    body: RingBody,
    ring: Arc<HashRing>,
    handles: BTreeMap<u32, Arc<NodeHandle>>,
}

struct ClusterShared {
    config: ClusterConfig,
    topology: RwLock<Topology>,
    hints: HintQueue,
    stats: ClusterStats,
    routed_total: AtomicU64,
    ring_version_tm: Gauge,
    ring_nodes_tm: Gauge,
}

fn lock_recover<'a, T>(mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn unavailable(why: &str) -> CoreError {
    CoreError::StoreUnavailable(why.into())
}

fn item_tag(item: &BatchItem) -> &CompTag {
    match item {
        BatchItem::Get { tag }
        | BatchItem::GetPrefiltered { tag, .. }
        | BatchItem::Put { tag, .. }
        | BatchItem::PutPrefiltered { tag, .. } => tag,
    }
}

/// The standalone PUT message equivalent to a batch PUT item (hints are
/// stored as standalone messages so the drain can route them one by one).
fn put_message_of(app: AppId, item: &BatchItem) -> Option<Message> {
    match item {
        BatchItem::Put { tag, record } => {
            Some(Message::PutRequest { app, tag: *tag, record: record.clone() })
        }
        BatchItem::PutPrefiltered { tag, prefilter, record } => {
            Some(Message::PutPrefiltered {
                app,
                tag: *tag,
                prefilter: *prefilter,
                record: record.clone(),
            })
        }
        BatchItem::Get { .. } | BatchItem::GetPrefiltered { .. } => None,
    }
}

fn message_tag(message: &Message) -> Option<&CompTag> {
    match message {
        Message::PutRequest { tag, .. } | Message::PutPrefiltered { tag, .. } => {
            Some(tag)
        }
        _ => None,
    }
}

impl ClusterShared {
    /// A consistent snapshot of the routing state: the ring plus the
    /// handles of every member (cheap Arc clones; no lock held while
    /// round-trips run).
    fn view(&self) -> (Arc<HashRing>, BTreeMap<u32, Arc<NodeHandle>>) {
        let topo = self.topology.read().unwrap_or_else(PoisonError::into_inner);
        (Arc::clone(&topo.ring), topo.handles.clone())
    }

    fn note_routed(&self) {
        self.stats.routed.fetch_add(1, Ordering::Relaxed);
        self.routed_total.fetch_add(1, Ordering::Relaxed);
    }

    fn note_failover(&self, handle: &NodeHandle) {
        handle.note_failover();
        self.stats.failovers.fetch_add(1, Ordering::Relaxed);
    }

    fn send(
        &self,
        handle: &NodeHandle,
        request: &Message,
    ) -> (Result<Message, CoreError>, bool) {
        self.note_routed();
        handle.send(request)
    }

    fn route_get(&self, request: &Message, tag: &CompTag) -> Result<Message, CoreError> {
        let (ring, handles) = self.view();
        let replicas = ring.replicas(tag, self.config.replication.max(1));
        if replicas.is_empty() {
            return Err(unavailable("cluster ring is empty"));
        }
        let mut miss = None;
        let mut recovered = false;
        let mut hit = None;
        for node in &replicas {
            let Some(handle) = handles.get(&node.0) else { continue };
            let (sent, rec) = self.send(handle, request);
            recovered |= rec;
            match sent {
                Ok(Message::GetResponse(body)) => {
                    if body.found {
                        hit = Some(Message::GetResponse(body));
                        break;
                    }
                    // Read-from-any: a miss on one replica may be an
                    // undrained hint — keep probing the rest of the set.
                    if miss.is_none() {
                        miss = Some(Message::GetResponse(body));
                    }
                }
                Ok(_) | Err(_) => self.note_failover(handle),
            }
        }
        if recovered {
            self.drain_hints();
        }
        hit.or(miss).ok_or_else(|| unavailable("no replica reachable for GET"))
    }

    fn route_put(&self, request: &Message, tag: &CompTag) -> Result<Message, CoreError> {
        let (ring, handles) = self.view();
        let replicas = ring.replicas(tag, self.config.replication.max(1));
        if replicas.is_empty() {
            return Err(unavailable("cluster ring is empty"));
        }
        let mut acked = None;
        let mut unreachable = 0usize;
        let mut recovered = false;
        for node in &replicas {
            let Some(handle) = handles.get(&node.0) else { continue };
            let (sent, rec) = self.send(handle, request);
            recovered |= rec;
            match sent {
                // An authoritative answer, accepted or refused; the first
                // replica's verdict acknowledges the call (write-quorum 1).
                Ok(response @ Message::PutResponse(_)) => {
                    if acked.is_none() {
                        acked = Some(response);
                    }
                }
                Ok(_) | Err(_) => {
                    self.note_failover(handle);
                    unreachable += 1;
                }
            }
        }
        let result = match acked {
            Some(response) => {
                if unreachable > 0 {
                    // Acknowledged but under-replicated: park a hint so the
                    // drain restores R-way replication later.
                    self.hints.push(request.clone());
                }
                Ok(response)
            }
            None => Err(unavailable("no replica acknowledged the PUT")),
        };
        if recovered {
            self.drain_hints();
        }
        result
    }

    fn route_batch(&self, app: AppId, items: &[BatchItem]) -> Result<Message, CoreError> {
        if items.is_empty() {
            return Ok(Message::BatchResponse(Vec::new()));
        }
        let (ring, handles) = self.view();
        if ring.is_empty() {
            return Err(unavailable("cluster ring is empty"));
        }
        let r = self.config.replication.max(1);
        let replicas: Vec<Vec<NodeId>> =
            items.iter().map(|item| ring.replicas(item_tag(item), r)).collect();
        let mut results: Vec<Option<BatchItemResult>> = vec![None; items.len()];
        let mut served_by: Vec<Option<NodeId>> = vec![None; items.len()];
        let mut recovered = false;

        // Round k sends every unresolved item to its k-th replica, grouped
        // into one sub-batch per node (round-trips stay O(nodes), and a
        // dead primary costs one extra round, not one per item).
        let max_rounds = replicas.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..max_rounds {
            let mut by_node: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for (i, reps) in replicas.iter().enumerate() {
                if results[i].is_none() {
                    if let Some(node) = reps.get(round) {
                        by_node.entry(node.0).or_default().push(i);
                    }
                }
            }
            if by_node.is_empty() {
                break;
            }
            for (node_id, idxs) in by_node {
                let Some(handle) = handles.get(&node_id) else { continue };
                let sub: Vec<BatchItem> =
                    idxs.iter().map(|&i| items[i].clone()).collect();
                let (sent, rec) =
                    self.send(handle, &Message::BatchRequest { app, items: sub });
                recovered |= rec;
                match sent {
                    Ok(Message::BatchResponse(rs)) if rs.len() == idxs.len() => {
                        for (result, &i) in rs.into_iter().zip(&idxs) {
                            results[i] = Some(result);
                            served_by[i] = Some(NodeId(node_id));
                        }
                    }
                    Ok(_) | Err(_) => self.note_failover(handle),
                }
            }
        }
        if results.iter().any(Option::is_none) {
            if recovered {
                self.drain_hints();
            }
            return Err(unavailable("no replica reachable for some batch items"));
        }
        let results: Vec<BatchItemResult> =
            results.into_iter().map(|r| r.expect("checked above")).collect();

        // Replicate accepted PUT items to the rest of their replica sets,
        // again one sub-batch per node; failures become hints.
        let mut secondary: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, item) in items.iter().enumerate() {
            if matches!(item, BatchItem::Get { .. } | BatchItem::GetPrefiltered { .. })
                || results[i].status != BatchStatus::Accepted
            {
                continue;
            }
            for node in &replicas[i] {
                if served_by[i] != Some(*node) {
                    secondary.entry(node.0).or_default().push(i);
                }
            }
        }
        for (node_id, idxs) in secondary {
            let Some(handle) = handles.get(&node_id) else { continue };
            let sub: Vec<BatchItem> = idxs.iter().map(|&i| items[i].clone()).collect();
            let (sent, rec) =
                self.send(handle, &Message::BatchRequest { app, items: sub });
            recovered |= rec;
            if !matches!(sent, Ok(Message::BatchResponse(_))) {
                self.note_failover(handle);
                for &i in &idxs {
                    if let Some(hint) = put_message_of(app, &items[i]) {
                        self.hints.push(hint);
                    }
                }
            }
        }
        if recovered {
            self.drain_hints();
        }
        Ok(Message::BatchResponse(results))
    }

    /// Fans a `FILTER_REQUEST` to every member and concatenates the shard
    /// filters. The union keeps the no-false-negative contract: a tag
    /// stored on node k is inserted in node k's filter, which is one of
    /// the shards the client merges. Any unreachable member fails the
    /// whole refresh, so the caller keeps its previous (stale but
    /// conservative) view rather than adopting a filter that silently
    /// omits a node.
    fn fanout_filters(&self) -> Result<Message, CoreError> {
        let (ring, handles) = self.view();
        if ring.is_empty() {
            return Err(unavailable("cluster ring is empty"));
        }
        let mut epoch = 0u64;
        let mut shards = Vec::new();
        for node in ring.nodes() {
            let Some(handle) = handles.get(&node.0) else { continue };
            let (sent, _) = self.send(handle, &Message::FilterRequest);
            match sent {
                Ok(Message::FilterResponse(body)) => {
                    epoch = epoch.max(body.epoch);
                    shards.extend(body.shards);
                }
                Ok(other) => {
                    return Err(CoreError::UnexpectedResponse(format!(
                        "node {} answered FilterRequest with {other:?}",
                        node.0
                    )));
                }
                Err(err) => {
                    self.note_failover(handle);
                    return Err(err);
                }
            }
        }
        Ok(Message::FilterResponse(FilterBody { epoch, shards }))
    }

    /// Fans a `STATS_REQUEST` to every member, summing the scalar counters
    /// and concatenating per-shard sections (a cluster of N nodes × S
    /// shards reports N·S shard sections). Unreachable members are
    /// skipped; at least one must answer.
    fn fanout_stats(&self) -> Result<Message, CoreError> {
        let (ring, handles) = self.view();
        if ring.is_empty() {
            return Err(unavailable("cluster ring is empty"));
        }
        let mut total = StatsBody::default();
        let mut answered = false;
        for node in ring.nodes() {
            let Some(handle) = handles.get(&node.0) else { continue };
            let (sent, _) = self.send(handle, &Message::StatsRequest);
            match sent {
                Ok(Message::StatsResponse(body)) => {
                    answered = true;
                    total.entries += body.entries;
                    total.gets += body.gets;
                    total.hits += body.hits;
                    total.puts += body.puts;
                    total.rejected_puts += body.rejected_puts;
                    total.stored_bytes += body.stored_bytes;
                    total.evictions += body.evictions;
                    total.shards.extend(body.shards);
                }
                Ok(_) | Err(_) => self.note_failover(handle),
            }
        }
        if answered {
            Ok(Message::StatsResponse(total))
        } else {
            Err(unavailable("no cluster member answered StatsRequest"))
        }
    }

    /// Routes a non-keyed message (metrics, sync, …) to the first member
    /// that answers, in ring order.
    fn route_any(&self, request: &Message) -> Result<Message, CoreError> {
        let (ring, handles) = self.view();
        let mut last_err = unavailable("cluster ring is empty");
        for node in ring.nodes() {
            let Some(handle) = handles.get(&node.0) else { continue };
            let (sent, _) = self.send(handle, request);
            match sent {
                Ok(response) => return Ok(response),
                Err(err) => {
                    self.note_failover(handle);
                    last_err = err;
                }
            }
        }
        Err(last_err)
    }

    /// Delivers parked hints, re-routing every message through the ring
    /// current *now* — the departed node a hint was originally owed to is
    /// irrelevant. A hint is retired once every current replica of its tag
    /// answers (duplicate PUTs are idempotent); the first unreachable
    /// replica stops the drain and the hint goes back to the head.
    fn drain_hints(&self) -> usize {
        let mut delivered = 0;
        while let Some(message) = self.hints.pop() {
            let (ring, handles) = self.view();
            let replicas = match message_tag(&message) {
                Some(tag) => ring.replicas(tag, self.config.replication.max(1)),
                None => Vec::new(), // not a PUT; drop it rather than loop
            };
            let mut all_answered = true;
            for node in &replicas {
                let Some(handle) = handles.get(&node.0) else { continue };
                let (sent, _) = self.send(handle, &message);
                if sent.is_err() {
                    self.note_failover(handle);
                    all_answered = false;
                    break;
                }
            }
            if all_answered {
                self.hints.note_replayed();
                delivered += 1;
            } else {
                self.hints.push_front(message);
                break;
            }
        }
        delivered
    }

    fn install(&self, body: RingBody, handles: BTreeMap<u32, Arc<NodeHandle>>) {
        let ring = Arc::new(HashRing::from_body(&body, self.config.vnodes));
        self.ring_version_tm.set(ring.version());
        self.ring_nodes_tm.set(ring.nodes().len() as u64);
        let mut topo = self.topology.write().unwrap_or_else(PoisonError::into_inner);
        *topo = Topology { body, ring, handles };
    }
}

/// Builder for a [`ClusterClient`]: declare members and their connectors.
pub struct ClusterBuilder {
    config: ClusterConfig,
    members: Vec<(RingNodeBody, Connector)>,
}

impl fmt::Debug for ClusterBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterBuilder")
            .field("members", &self.members.len())
            .finish_non_exhaustive()
    }
}

impl ClusterBuilder {
    /// Adds a weight-1 member with no advertised address.
    pub fn node(self, id: u32, connector: Connector) -> Self {
        self.member(RingNodeBody { id, addr: String::new(), weight: 1 }, connector)
    }

    /// Adds a member with an explicit address and ring weight.
    pub fn member(mut self, node: RingNodeBody, connector: Connector) -> Self {
        self.members.push((node, connector));
        self
    }

    /// Builds the client with topology version 1.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StoreUnavailable`] if no member has weight > 0.
    pub fn build(self) -> Result<ClusterClient, CoreError> {
        if !self.members.iter().any(|(n, _)| n.weight > 0) {
            return Err(unavailable("cluster has no members with weight > 0"));
        }
        let reg = speed_telemetry::global();
        let shared = ClusterShared {
            hints: HintQueue::new(self.config.hint_capacity),
            stats: ClusterStats::default(),
            routed_total: AtomicU64::new(0),
            ring_version_tm: reg.gauge(
                names::CLUSTER_RING_VERSION,
                "Version of the ring the cluster client currently routes by",
            ),
            ring_nodes_tm: reg.gauge(
                names::CLUSTER_RING_NODES,
                "Member nodes on the ring the cluster client currently routes by",
            ),
            topology: RwLock::new(Topology {
                body: RingBody::default(),
                ring: Arc::new(HashRing::build(0, &[], 1)),
                handles: BTreeMap::new(),
            }),
            config: self.config,
        };
        let mut body = RingBody { version: 1, nodes: Vec::new() };
        let mut handles = BTreeMap::new();
        for (node, connector) in self.members {
            handles.insert(
                node.id,
                NodeHandle::new(NodeId(node.id), connector, &shared.config),
            );
            body.nodes.push(node);
        }
        shared.install(body, handles);
        Ok(ClusterClient { shared: Arc::new(shared) })
    }
}

/// A [`StoreClient`] spanning a set of store nodes: consistent-hash
/// routing, R-way replication with write-quorum 1, read-from-any GETs,
/// hinted handoff, and independent per-node reconnect-and-re-attest.
///
/// Cloning is cheap and clones share all state (ring, hints, breakers), so
/// the synchronous client and the async-PUT worker of a runtime cooperate.
#[derive(Clone)]
pub struct ClusterClient {
    shared: Arc<ClusterShared>,
}

impl fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (ring, _) = self.shared.view();
        f.debug_struct("ClusterClient")
            .field("ring_version", &ring.version())
            .field("nodes", &ring.nodes().len())
            .field("hints", &self.shared.hints.len())
            .finish_non_exhaustive()
    }
}

impl ClusterClient {
    /// Starts declaring a cluster.
    pub fn builder(config: ClusterConfig) -> ClusterBuilder {
        ClusterBuilder { config, members: Vec::new() }
    }

    /// The membership view the client currently routes by.
    pub fn ring_body(&self) -> RingBody {
        self.shared.topology.read().unwrap_or_else(PoisonError::into_inner).body.clone()
    }

    /// The version of the ring the client currently routes by.
    pub fn ring_version(&self) -> u64 {
        let (ring, _) = self.shared.view();
        ring.version()
    }

    /// The current replica set of `tag`, primary first.
    pub fn replicas_of(&self, tag: &CompTag) -> Vec<NodeId> {
        let (ring, _) = self.shared.view();
        ring.replicas(tag, self.shared.config.replication.max(1))
    }

    /// Scalar counters (mirrors of the `cluster_*` telemetry series).
    pub fn counts(&self) -> ClusterCounts {
        ClusterCounts {
            routed: self.shared.stats.routed.load(Ordering::Relaxed),
            failovers: self.shared.stats.failovers.load(Ordering::Relaxed),
            hinted_puts: self.shared.hints.hinted.load(Ordering::Relaxed),
            hints_replayed: self.shared.hints.replayed.load(Ordering::Relaxed),
            hints_dropped: self.shared.hints.dropped.load(Ordering::Relaxed),
        }
    }

    /// PUTs currently parked in the hint queue.
    pub fn hint_depth(&self) -> usize {
        self.shared.hints.len()
    }

    /// Re-attested reconnects performed against node `id` so far.
    pub fn reattestations(&self, id: u32) -> u64 {
        let (_, handles) = self.shared.view();
        handles.get(&id).map(|h| h.stats.reconnects.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Attempts to deliver parked hints now (also triggered automatically
    /// whenever a down node is observed answering again). Returns the
    /// number of hints delivered.
    pub fn drain_hints(&self) -> usize {
        self.shared.drain_hints()
    }

    /// Adds (or re-weights) a member and bumps the topology version.
    /// Existing tags whose replica set changes are served by the new
    /// owners from the next request on; ~K/N of K keys move.
    pub fn add_node(&self, node: RingNodeBody, connector: Connector) {
        let (mut body, mut handles) = {
            let topo =
                self.shared.topology.read().unwrap_or_else(PoisonError::into_inner);
            (topo.body.clone(), topo.handles.clone())
        };
        body.version += 1;
        body.nodes.retain(|n| n.id != node.id);
        handles.insert(
            node.id,
            NodeHandle::new(NodeId(node.id), connector, &self.shared.config),
        );
        body.nodes.push(node);
        self.shared.install(body, handles);
    }

    /// Removes a member and bumps the topology version. Hints parked for
    /// the departed node are re-routed to the new owners at drain time —
    /// a queued PUT cannot land on a node that left the ring.
    pub fn remove_node(&self, id: u32) {
        let (mut body, mut handles) = {
            let topo =
                self.shared.topology.read().unwrap_or_else(PoisonError::into_inner);
            (topo.body.clone(), topo.handles.clone())
        };
        body.version += 1;
        body.nodes.retain(|n| n.id != id);
        handles.remove(&id);
        self.shared.install(body, handles);
    }

    /// Fetches the ring view of the first member that answers.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StoreUnavailable`] if no member answers, or
    /// [`CoreError::UnexpectedResponse`] on a non-ring reply.
    pub fn fetch_ring(&self) -> Result<RingBody, CoreError> {
        match self.shared.route_any(&Message::RingRequest)? {
            Message::RingResponse(body) => Ok(body),
            other => Err(CoreError::UnexpectedResponse(format!(
                "RingRequest answered with {other:?}"
            ))),
        }
    }

    /// Adopts a newer membership view, building connectors for previously
    /// unknown members via `connect`. A view whose version is not strictly
    /// newer is ignored (returns `false`).
    ///
    /// # Errors
    ///
    /// Propagates `connect` failures; the current topology is kept.
    pub fn apply_ring_with(
        &self,
        body: &RingBody,
        connect: &mut dyn FnMut(&RingNodeBody) -> Result<Connector, CoreError>,
    ) -> Result<bool, CoreError> {
        let current = {
            let topo =
                self.shared.topology.read().unwrap_or_else(PoisonError::into_inner);
            (topo.body.version, topo.handles.clone())
        };
        if body.version <= current.0 {
            return Ok(false);
        }
        let mut handles = BTreeMap::new();
        for node in &body.nodes {
            if node.weight == 0 {
                continue;
            }
            let handle = match current.1.get(&node.id) {
                Some(existing) => Arc::clone(existing),
                None => {
                    NodeHandle::new(NodeId(node.id), connect(node)?, &self.shared.config)
                }
            };
            handles.insert(node.id, handle);
        }
        self.shared.install(body.clone(), handles);
        Ok(true)
    }
}

impl StoreClient for ClusterClient {
    fn roundtrip(&mut self, request: &Message) -> Result<Message, CoreError> {
        match request {
            Message::GetRequest { tag, .. } => self.shared.route_get(request, tag),
            Message::PutRequest { tag, .. } | Message::PutPrefiltered { tag, .. } => {
                self.shared.route_put(request, tag)
            }
            Message::BatchRequest { app, items } => self.shared.route_batch(*app, items),
            Message::FilterRequest => self.shared.fanout_filters(),
            Message::StatsRequest => self.shared.fanout_stats(),
            Message::RingRequest => Ok(Message::RingResponse(self.ring_body())),
            other => self.shared.route_any(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{OutageSwitch, SwitchedClient};
    use crate::client::InProcessClient;
    use speed_enclave::{CostModel, Platform};
    use speed_store::{ResultStore, StoreConfig};
    use speed_wire::{GetResponseBody, Record, SessionAuthority};
    use std::time::Duration;

    fn tag_of(seed: u64) -> CompTag {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&seed.to_le_bytes());
        bytes[8] = 0xA5;
        CompTag::from_bytes(bytes)
    }

    fn record_of(fill: u8) -> Record {
        Record {
            challenge: vec![fill; 16],
            wrapped_key: [fill; 16],
            nonce: [fill; 12],
            boxed_result: vec![fill; 24],
        }
    }

    fn members(n: u32) -> Vec<(NodeId, u32)> {
        (0..n).map(|id| (NodeId(id), 1)).collect()
    }

    #[test]
    fn ring_spreads_keys_roughly_evenly() {
        let ring = HashRing::build(1, &members(3), 64);
        let mut counts = BTreeMap::new();
        for seed in 0..3000u64 {
            let node = ring.primary(&tag_of(seed)).unwrap();
            *counts.entry(node.0).or_insert(0u32) += 1;
        }
        for (&node, &count) in &counts {
            let share = f64::from(count) / 3000.0;
            assert!(
                (0.15..=0.55).contains(&share),
                "node {node} owns {share:.2} of the keyspace"
            );
        }
    }

    #[test]
    fn adding_a_node_moves_keys_only_to_it() {
        let before = HashRing::build(1, &members(3), 64);
        let after = HashRing::build(2, &members(4), 64);
        let mut moved = 0u32;
        let total = 4000u64;
        for seed in 0..total {
            let tag = tag_of(seed);
            let old = before.primary(&tag).unwrap();
            let new = after.primary(&tag).unwrap();
            if old != new {
                // The consistent-hash invariant: ownership only ever moves
                // *to the new node*, never shuffles between survivors.
                assert_eq!(new, NodeId(3), "tag {seed} moved {old:?} → {new:?}");
                moved += 1;
            }
        }
        let share = f64::from(moved) / total as f64;
        assert!((0.10..=0.45).contains(&share), "moved share {share:.2}, want ~1/4");
    }

    #[test]
    fn replicas_are_distinct_and_bounded() {
        let ring = HashRing::build(1, &members(3), 32);
        for seed in 0..200u64 {
            let replicas = ring.replicas(&tag_of(seed), 2);
            assert_eq!(replicas.len(), 2);
            assert_ne!(replicas[0], replicas[1]);
            // Asking for more replicas than members returns every member.
            assert_eq!(ring.replicas(&tag_of(seed), 9).len(), 3);
        }
    }

    #[test]
    fn weighted_nodes_own_proportionally_more() {
        let ring = HashRing::build(1, &[(NodeId(0), 1), (NodeId(1), 3)], 64);
        let mut heavy = 0u32;
        for seed in 0..4000u64 {
            if ring.primary(&tag_of(seed)) == Some(NodeId(1)) {
                heavy += 1;
            }
        }
        let share = f64::from(heavy) / 4000.0;
        assert!((0.60..=0.90).contains(&share), "weight-3 node owns {share:.2}");
    }

    struct TestCluster {
        client: ClusterClient,
        stores: Vec<Arc<ResultStore>>,
        switches: Vec<Arc<OutageSwitch>>,
    }

    fn fast_node_resilience() -> ResilienceConfig {
        ResilienceConfig {
            retry: RetryPolicy::none(),
            breaker: crate::resilience::BreakerConfig {
                failure_threshold: 100, // keep the breaker out of unit tests
                cooldown: Duration::from_millis(1),
            },
            call_budget: Duration::from_secs(1),
            replay_capacity: 1,
            jitter_seed: Some(7),
        }
    }

    fn test_cluster(n: u32) -> TestCluster {
        let platform = Platform::new(CostModel::no_sgx());
        let authority = Arc::new(SessionAuthority::with_seed(99));
        let enclave = platform.create_enclave(b"cluster-test").unwrap();
        let mut builder = ClusterClient::builder(ClusterConfig {
            node_resilience: fast_node_resilience(),
            ..ClusterConfig::default()
        });
        let mut stores = Vec::new();
        let mut switches = Vec::new();
        for id in 0..n {
            let store =
                Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
            let switch = Arc::new(OutageSwitch::new());
            let connector: Connector =
                {
                    let store = Arc::clone(&store);
                    let switch = Arc::clone(&switch);
                    let authority = Arc::clone(&authority);
                    let platform = Arc::clone(&platform);
                    let enclave = Arc::clone(&enclave);
                    Box::new(move || {
                        if switch.is_down() {
                            return Err(unavailable("node is down"));
                        }
                        let inner = InProcessClient::connect(
                            Arc::clone(&store),
                            &authority,
                            &platform,
                            &enclave,
                        )?;
                        Ok(Box::new(SwitchedClient::new(
                            Box::new(inner),
                            Arc::clone(&switch),
                        )) as Box<dyn StoreClient>)
                    })
                };
            builder = builder.node(id, connector);
            stores.push(store);
            switches.push(switch);
        }
        TestCluster { client: builder.build().unwrap(), stores, switches }
    }

    fn get(client: &mut ClusterClient, seed: u64) -> bool {
        match client
            .roundtrip(&Message::GetRequest { app: AppId(1), tag: tag_of(seed) })
            .unwrap()
        {
            Message::GetResponse(GetResponseBody { found, .. }) => found,
            other => panic!("unexpected response {other:?}"),
        }
    }

    fn put(client: &mut ClusterClient, seed: u64) -> Result<Message, CoreError> {
        client.roundtrip(&Message::PutRequest {
            app: AppId(1),
            tag: tag_of(seed),
            record: record_of(seed as u8),
        })
    }

    #[test]
    fn put_replicates_to_r_nodes_and_get_reads_any() {
        let mut cluster = test_cluster(3);
        assert!(matches!(
            put(&mut cluster.client, 7).unwrap(),
            Message::PutResponse(body) if body.accepted
        ));
        // The record lives on exactly R = 2 of the 3 stores.
        let holders: usize = cluster
            .stores
            .iter()
            .filter(|s| {
                matches!(
                    s.handle(Message::GetRequest { app: AppId(1), tag: tag_of(7) }),
                    Message::GetResponse(body) if body.found
                )
            })
            .count();
        assert_eq!(holders, 2);
        assert!(get(&mut cluster.client, 7));
        assert!(!get(&mut cluster.client, 8));
    }

    #[test]
    fn killed_primary_fails_over_and_hints_drain_on_rejoin() {
        let mut cluster = test_cluster(3);
        let replicas = cluster.client.replicas_of(&tag_of(42));
        let primary = replicas[0].0 as usize;
        // Warm-up miss: attests a session to both replicas, so the later
        // rejoin is a *re*-attestation, not the initial handshake.
        assert!(!get(&mut cluster.client, 42));

        // Kill the primary: the PUT is still acknowledged (by the second
        // replica) and a hint is parked for the dead node.
        cluster.switches[primary].set_down(true);
        assert!(matches!(
            put(&mut cluster.client, 42).unwrap(),
            Message::PutResponse(body) if body.accepted
        ));
        assert_eq!(cluster.client.hint_depth(), 1);
        assert!(cluster.client.counts().failovers >= 1);
        // The GET fails over past the dead primary and still finds it.
        assert!(get(&mut cluster.client, 42));

        // Rejoin: the next request that touches the node triggers the
        // drain, restoring R-way replication on the revived primary.
        cluster.switches[primary].set_down(false);
        assert!(get(&mut cluster.client, 42));
        assert_eq!(cluster.client.hint_depth(), 0);
        assert_eq!(cluster.client.counts().hints_replayed, 1);
        assert!(matches!(
            cluster.stores[primary]
                .handle(Message::GetRequest { app: AppId(1), tag: tag_of(42) }),
            Message::GetResponse(body) if body.found
        ));
        // The rejoin reconnected — and therefore re-attested — the node.
        assert!(cluster.client.reattestations(primary as u32) >= 1);
    }

    #[test]
    fn hints_reroute_through_the_current_ring_after_departure() {
        let mut cluster = test_cluster(3);
        let replicas = cluster.client.replicas_of(&tag_of(11));
        let (primary, secondary) = (replicas[0].0, replicas[1].0);

        // Primary down at PUT time: acknowledged by the secondary, hinted.
        cluster.switches[primary as usize].set_down(true);
        assert!(put(&mut cluster.client, 11).is_ok());
        assert_eq!(cluster.client.hint_depth(), 1);

        // The primary *leaves the ring* before ever coming back. The hint
        // must not chase it: at drain time it re-routes to the current
        // owners of the tag.
        cluster.client.remove_node(primary);
        assert_eq!(cluster.client.drain_hints(), 1);
        let new_replicas = cluster.client.replicas_of(&tag_of(11));
        assert!(!new_replicas.contains(&NodeId(primary)));
        for node in &new_replicas {
            assert!(
                matches!(
                    cluster.stores[node.0 as usize]
                        .handle(Message::GetRequest { app: AppId(1), tag: tag_of(11) }),
                    Message::GetResponse(body) if body.found
                ),
                "current replica {node} should hold the re-routed PUT"
            );
        }
        // The departed node never received it.
        assert!(matches!(
            cluster.stores[primary as usize]
                .handle(Message::GetRequest { app: AppId(1), tag: tag_of(11) }),
            Message::GetResponse(body) if !body.found
        ));
        let _ = secondary;
    }

    #[test]
    fn whole_cluster_down_surfaces_store_unavailable() {
        let mut cluster = test_cluster(2);
        for switch in &cluster.switches {
            switch.set_down(true);
        }
        assert!(matches!(
            put(&mut cluster.client, 1),
            Err(CoreError::StoreUnavailable(_))
        ));
        assert!(matches!(
            cluster
                .client
                .roundtrip(&Message::GetRequest { app: AppId(1), tag: tag_of(1) }),
            Err(CoreError::StoreUnavailable(_))
        ));
        // No replica ever acknowledged, so nothing was parked as a hint.
        assert_eq!(cluster.client.hint_depth(), 0);
    }

    #[test]
    fn batch_splits_by_node_and_merges_in_request_order() {
        let mut cluster = test_cluster(3);
        let items: Vec<BatchItem> = (0..16u64)
            .map(|seed| BatchItem::Put {
                tag: tag_of(seed),
                record: record_of(seed as u8),
            })
            .collect();
        let response = cluster
            .client
            .roundtrip(&Message::BatchRequest { app: AppId(1), items })
            .unwrap();
        let Message::BatchResponse(results) = response else { panic!("not a batch") };
        assert_eq!(results.len(), 16);
        assert!(results.iter().all(|r| r.status == BatchStatus::Accepted));

        // Mixed batch: every GET finds its record, in request order.
        let items: Vec<BatchItem> = (0..16u64)
            .map(|seed| BatchItem::Get { tag: tag_of(seed) })
            .chain(std::iter::once(BatchItem::Get { tag: tag_of(999) }))
            .collect();
        let response = cluster
            .client
            .roundtrip(&Message::BatchRequest { app: AppId(1), items })
            .unwrap();
        let Message::BatchResponse(results) = response else { panic!("not a batch") };
        assert_eq!(results.len(), 17);
        assert!(results[..16].iter().all(|r| r.status == BatchStatus::Found));
        assert_eq!(results[16].status, BatchStatus::NotFound);
    }

    #[test]
    fn batch_survives_a_killed_node() {
        let mut cluster = test_cluster(3);
        cluster.switches[0].set_down(true);
        let items: Vec<BatchItem> = (0..12u64)
            .map(|seed| BatchItem::Put {
                tag: tag_of(seed),
                record: record_of(seed as u8),
            })
            .collect();
        let response = cluster
            .client
            .roundtrip(&Message::BatchRequest { app: AppId(1), items })
            .unwrap();
        let Message::BatchResponse(results) = response else { panic!("not a batch") };
        assert!(results.iter().all(|r| r.status == BatchStatus::Accepted));
        let items: Vec<BatchItem> =
            (0..12u64).map(|seed| BatchItem::Get { tag: tag_of(seed) }).collect();
        let response = cluster
            .client
            .roundtrip(&Message::BatchRequest { app: AppId(1), items })
            .unwrap();
        let Message::BatchResponse(results) = response else { panic!("not a batch") };
        assert!(results.iter().all(|r| r.status == BatchStatus::Found));
    }

    #[test]
    fn filters_union_across_nodes_and_fail_closed() {
        let mut cluster = test_cluster(3);
        for seed in 0..6u64 {
            put(&mut cluster.client, seed).unwrap();
        }
        let Message::FilterResponse(body) =
            cluster.client.roundtrip(&Message::FilterRequest).unwrap()
        else {
            panic!("not a filter response")
        };
        let per_node = match cluster.stores[0].handle(Message::FilterRequest) {
            Message::FilterResponse(b) => b.shards.len(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(body.shards.len(), per_node * 3);
        // With one member down the refresh fails (the caller keeps its
        // previous, conservative view) rather than shipping a partial
        // union that would break no-false-negatives.
        cluster.switches[1].set_down(true);
        assert!(cluster.client.roundtrip(&Message::FilterRequest).is_err());
    }

    #[test]
    fn stats_sum_across_nodes() {
        let mut cluster = test_cluster(3);
        for seed in 0..8u64 {
            put(&mut cluster.client, seed).unwrap();
            assert!(get(&mut cluster.client, seed));
        }
        let Message::StatsResponse(body) =
            cluster.client.roundtrip(&Message::StatsRequest).unwrap()
        else {
            panic!("not a stats response")
        };
        // 8 PUTs × R=2 replicas.
        assert_eq!(body.puts, 16);
        assert_eq!(body.entries, 16);
        assert!(body.hits >= 8);
    }

    #[test]
    fn ring_request_answers_with_the_local_view() {
        let mut cluster = test_cluster(3);
        let Message::RingResponse(body) =
            cluster.client.roundtrip(&Message::RingRequest).unwrap()
        else {
            panic!("not a ring response")
        };
        assert_eq!(body.version, 1);
        assert_eq!(body.nodes.len(), 3);
        cluster.client.remove_node(2);
        assert_eq!(cluster.client.ring_body().version, 2);
        assert_eq!(cluster.client.ring_body().nodes.len(), 2);
    }

    #[test]
    fn apply_ring_ignores_stale_views_and_adopts_newer_ones() {
        let cluster = test_cluster(2);
        let mut connect_calls = 0usize;
        let mut connect = |_: &RingNodeBody| -> Result<Connector, CoreError> {
            connect_calls += 1;
            Ok(Box::new(|| Err(unavailable("unused"))))
        };
        let stale = RingBody { version: 1, nodes: vec![] };
        assert!(!cluster.client.apply_ring_with(&stale, &mut connect).unwrap());

        let mut newer = cluster.client.ring_body();
        newer.version = 5;
        newer.nodes.push(RingNodeBody { id: 9, addr: "x:1".into(), weight: 1 });
        assert!(cluster.client.apply_ring_with(&newer, &mut connect).unwrap());
        assert_eq!(connect_calls, 1); // only the unknown node dialed
        assert_eq!(cluster.client.ring_version(), 5);
        assert_eq!(cluster.client.ring_body().nodes.len(), 3);
    }
}
