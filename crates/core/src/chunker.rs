//! Content-defined chunking for streaming deduplication.
//!
//! Whole-call dedup treats each input as atomic: two 10 MiB streams that
//! share 9 MiB score zero hits. The chunker splits a byte stream at
//! content-determined boundaries (a gear rolling hash, as in rdedup-style
//! CAS vaults), so identical *regions* of different streams produce
//! identical chunks — and therefore identical comp-tags — regardless of
//! where they sit in the stream. Partial overlap becomes partial hits.
//!
//! Properties the chunker guarantees (see `tests/chunker_props.rs`):
//!
//! - **Split invariance**: bytes are consumed one at a time from an
//!   internal buffer, so pushing a stream in any sequence of fragment
//!   sizes yields byte-identical chunks.
//! - **Bounds**: every chunk is at least `min` bytes (except a final
//!   short tail) and at most `max` bytes (a forced cut fires at `max`).
//! - **Edit locality**: the rolling hash is reset at each chunk start and
//!   a byte's influence expires after [`GEAR_WINDOW`] bytes, so a
//!   single-byte edit re-synchronizes chunk boundaries within a bounded
//!   number of chunks.

// hot-path: deny-clone

use std::fmt;

/// Bytes after which a byte stops influencing the gear hash: each update
/// shifts the accumulator left by one bit, so 64 updates flush it out.
pub const GEAR_WINDOW: usize = 64;

/// Boundary policy for the [`Chunker`].
///
/// `avg` must be a power of two; it sets the number of hash bits a
/// boundary must zero, so chunk lengths beyond `min` follow a geometric
/// distribution with mean `avg` (the expected chunk length is roughly
/// `min + avg`, clipped by `max`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkerConfig {
    /// Minimum chunk length in bytes; boundaries are not tested before it.
    pub min: usize,
    /// Target mean of the content-defined part of the chunk length.
    /// Must be a power of two.
    pub avg: usize,
    /// Hard upper bound; a cut is forced when a chunk reaches it.
    pub max: usize,
}

impl ChunkerConfig {
    /// The default streaming policy: 2 KiB / 8 KiB / 64 KiB.
    pub const DEFAULT: ChunkerConfig =
        ChunkerConfig { min: 2 * 1024, avg: 8 * 1024, max: 64 * 1024 };

    /// A small policy for tests and short streams: 64 B / 256 B / 1 KiB.
    pub const SMALL: ChunkerConfig = ChunkerConfig { min: 64, avg: 256, max: 1024 };

    /// Validates the bounds.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when `min` is zero, the bounds are
    /// not ordered `min ≤ avg ≤ max`, or `avg` is not a power of two.
    pub fn validate(&self) -> Result<(), String> {
        if self.min == 0 {
            return Err("chunker min bound must be positive".into());
        }
        if !(self.min <= self.avg && self.avg <= self.max) {
            return Err(format!(
                "chunker bounds must satisfy min <= avg <= max, got {}/{}/{}",
                self.min, self.avg, self.max
            ));
        }
        if !self.avg.is_power_of_two() {
            return Err(format!("chunker avg must be a power of two, got {}", self.avg));
        }
        Ok(())
    }

    /// The boundary mask: `avg = 2^k` selects the top `k` accumulator
    /// bits, which carry the longest byte history.
    fn mask(&self) -> u64 {
        let bits = self.avg.trailing_zeros();
        if bits == 0 {
            0
        } else {
            !0u64 << (64 - bits)
        }
    }
}

impl Default for ChunkerConfig {
    fn default() -> Self {
        ChunkerConfig::DEFAULT
    }
}

/// Deterministic per-byte gear constants (splitmix64 over the byte value),
/// computed at compile time so the table is identical in every build.
const GEAR: [u64; 256] = build_gear();

const fn build_gear() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        table[i] = z ^ (z >> 31);
        i += 1;
    }
    table
}

/// Counters describing a chunker's activity so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChunkerStats {
    /// Chunks emitted (including a final tail from [`Chunker::finish`]).
    pub chunks: u64,
    /// Cuts forced by the `max` bound rather than found by content.
    pub forced_cuts: u64,
    /// Input bytes consumed.
    pub bytes: u64,
}

/// An incremental content-defined chunker.
///
/// Feed bytes with [`push`](Chunker::push) in fragments of any size;
/// completed chunks are handed to the callback as owned buffers (each
/// chunk's bytes are written exactly once — no re-copy on emit). Call
/// [`finish`](Chunker::finish) to flush the final partial chunk.
pub struct Chunker {
    config: ChunkerConfig,
    mask: u64,
    hash: u64,
    buf: Vec<u8>,
    stats: ChunkerStats,
}

impl Chunker {
    /// Creates a chunker.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`ChunkerConfig::validate`].
    pub fn new(config: ChunkerConfig) -> Self {
        if let Err(reason) = config.validate() {
            panic!("invalid chunker config: {reason}");
        }
        Chunker {
            mask: config.mask(),
            config,
            hash: 0,
            buf: Vec::with_capacity(config.min),
            stats: ChunkerStats::default(),
        }
    }

    /// The active boundary policy.
    pub fn config(&self) -> ChunkerConfig {
        self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> ChunkerStats {
        self.stats
    }

    /// Bytes buffered in the current incomplete chunk.
    pub fn pending_len(&self) -> usize {
        self.buf.len()
    }

    /// Consumes `bytes`, invoking `emit` once per completed chunk.
    ///
    /// Chunk boundaries depend only on the byte stream, never on how it
    /// is split across `push` calls.
    pub fn push(&mut self, bytes: &[u8], mut emit: impl FnMut(Vec<u8>)) {
        self.stats.bytes += bytes.len() as u64;
        for &byte in bytes {
            self.buf.push(byte);
            self.hash = (self.hash << 1).wrapping_add(GEAR[byte as usize]);
            let len = self.buf.len();
            if len >= self.config.max {
                self.stats.forced_cuts += 1;
                emit(self.take_chunk());
            } else if len >= self.config.min && self.hash & self.mask == 0 {
                emit(self.take_chunk());
            }
        }
    }

    /// Flushes the final partial chunk, if any bytes are buffered. The
    /// tail may be shorter than `min` — it is the only chunk allowed to
    /// be.
    pub fn finish(&mut self) -> Option<Vec<u8>> {
        if self.buf.is_empty() {
            return None;
        }
        Some(self.take_chunk())
    }

    fn take_chunk(&mut self) -> Vec<u8> {
        self.stats.chunks += 1;
        self.hash = 0;
        std::mem::replace(&mut self.buf, Vec::with_capacity(self.config.min))
    }
}

impl fmt::Debug for Chunker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Chunker")
            .field("config", &self.config)
            .field("pending", &self.buf.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// Chunks a whole in-memory buffer in one call.
pub fn chunk_all(config: ChunkerConfig, bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut chunker = Chunker::new(config);
    let mut chunks = Vec::new();
    chunker.push(bytes, |chunk| chunks.push(chunk));
    if let Some(tail) = chunker.finish() {
        chunks.push(tail);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn chunks_reassemble_exactly() {
        let data = sample(40_000, 7);
        let chunks = chunk_all(ChunkerConfig::SMALL, &data);
        let rebuilt: Vec<u8> = chunks.concat();
        assert_eq!(rebuilt, data);
        assert!(chunks.len() > 10, "expected many chunks, got {}", chunks.len());
    }

    #[test]
    fn bounds_hold_except_tail() {
        let config = ChunkerConfig::SMALL;
        let data = sample(50_000, 9);
        let chunks = chunk_all(config, &data);
        for (i, chunk) in chunks.iter().enumerate() {
            assert!(chunk.len() <= config.max, "chunk {i} over max");
            if i + 1 < chunks.len() {
                assert!(chunk.len() >= config.min, "chunk {i} under min");
            }
        }
    }

    #[test]
    fn split_size_does_not_change_chunks() {
        let data = sample(30_000, 11);
        let whole = chunk_all(ChunkerConfig::SMALL, &data);
        for split in [1usize, 3, 7, 64, 1000, 29_999] {
            let mut chunker = Chunker::new(ChunkerConfig::SMALL);
            let mut chunks = Vec::new();
            for piece in data.chunks(split) {
                chunker.push(piece, |c| chunks.push(c));
            }
            if let Some(tail) = chunker.finish() {
                chunks.push(tail);
            }
            assert_eq!(chunks, whole, "split size {split} changed the chunks");
        }
    }

    #[test]
    fn empty_stream_yields_no_chunks() {
        let mut chunker = Chunker::new(ChunkerConfig::SMALL);
        chunker.push(&[], |_| panic!("no chunk expected"));
        assert!(chunker.finish().is_none());
        assert_eq!(chunker.stats(), ChunkerStats::default());
    }

    #[test]
    fn uniform_input_forces_max_cuts() {
        // A constant byte gives a constant (per-offset) hash pattern; if it
        // never matches the mask every cut is forced at max.
        let config = ChunkerConfig::SMALL;
        let data = vec![0u8; 10 * config.max];
        let chunks = chunk_all(config, &data);
        let stats_forced = chunks.iter().filter(|c| c.len() == config.max).count();
        assert!(stats_forced > 0 || chunks.iter().all(|c| c.len() <= config.max));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_avg_panics() {
        let _ = Chunker::new(ChunkerConfig { min: 16, avg: 100, max: 1000 });
    }

    #[test]
    #[should_panic(expected = "min <= avg <= max")]
    fn unordered_bounds_panic() {
        let _ = Chunker::new(ChunkerConfig { min: 512, avg: 256, max: 1024 });
    }
}
