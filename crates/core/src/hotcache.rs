//! Bounded in-enclave hot-tag cache.
//!
//! A marked computation whose tag was recently resolved — from the store or
//! by local execution — can be answered again without any enclave
//! transition or network round-trip at all: the plaintext result never
//! leaves the application enclave, so caching it inside is safe. The cache
//! is strictly bounded (entries and bytes) because it competes with the
//! application for scarce EPC; its pages are charged against the enclave's
//! memory budget the same way the store's metadata heap is.
//!
//! Entries hold their result behind a shared [`Arc`] buffer: a hit hands
//! back another reference to the same allocation instead of copying the
//! bytes, which makes the hit path O(1) regardless of result size.
//!
//! The cache also keeps a count-multiset of its entries' 64-bit prefilter
//! tags ([`crate::prefilter::prefilter_tag`]). [`HotTagCache::may_contain`]
//! answers "could this prefilter tag be cached?" without deriving the full
//! SHA-256 comp-tag — the first rung of the tiered tag pipeline. The answer
//! is conservative: entries cached without a known prefilter tag are
//! tracked in a separate counter that forces `may_contain` to `true`.

// hot-path: deny-clone

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use speed_enclave::Enclave;
use speed_wire::CompTag;

/// Size limits for the in-enclave hot-tag cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotCacheConfig {
    /// Maximum cached results.
    pub max_entries: usize,
    /// Maximum total plaintext result bytes held by the cache.
    pub max_bytes: usize,
}

impl Default for HotCacheConfig {
    fn default() -> Self {
        // Small by default: EPC is ~92 MiB usable on v1 hardware and the
        // application's own working set comes first.
        HotCacheConfig { max_entries: 1024, max_bytes: 4 * 1024 * 1024 }
    }
}

/// Fixed bookkeeping overhead charged per entry on top of the result bytes
/// (tag key, LRU index node, map slots).
const ENTRY_OVERHEAD: usize = 32 + 64;

#[derive(Debug)]
struct CacheEntry {
    result: Arc<Vec<u8>>,
    prefilter: Option<u64>,
    lru_seq: u64,
}

/// The cache proper. Callers hold it behind a `Mutex`; all methods take
/// `&mut self`.
#[derive(Debug)]
pub(crate) struct HotTagCache {
    config: HotCacheConfig,
    entries: HashMap<CompTag, CacheEntry>,
    lru: BTreeMap<u64, CompTag>,
    seq: u64,
    bytes: usize,
    /// EPC bytes currently committed for the cache (page granularity).
    committed: usize,
    /// Count-multiset of live entries' prefilter tags; counts decrement on
    /// eviction so `may_contain` tracks exactly the live population.
    prefilters: HashMap<u64, u32>,
    /// Live entries cached without a known prefilter tag. While non-zero,
    /// `may_contain` conservatively answers `true` for every key.
    unknown_prefilters: u32,
}

impl HotTagCache {
    pub(crate) fn new(config: HotCacheConfig) -> Self {
        HotTagCache {
            config,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            seq: 0,
            bytes: 0,
            committed: 0,
            prefilters: HashMap::new(),
            unknown_prefilters: 0,
        }
    }

    /// Looks up `tag`, bumping its recency. Returns a shared reference to
    /// the cached buffer — no bytes are copied on a hit.
    pub(crate) fn get(&mut self, tag: &CompTag) -> Option<Arc<Vec<u8>>> {
        let seq = self.seq;
        self.seq += 1;
        let entry = self.entries.get_mut(tag)?;
        self.lru.remove(&entry.lru_seq);
        entry.lru_seq = seq;
        self.lru.insert(seq, *tag);
        Some(Arc::clone(&entry.result)) // allow-clone: Arc refcount bump, not a byte copy
    }

    /// Whether an entry with this prefilter tag *may* be cached: `false`
    /// proves no cached entry can match, so the caller can skip deriving
    /// the full comp-tag for the cache probe. Conservative — entries with
    /// unknown prefilter tags force `true`.
    pub(crate) fn may_contain(&self, prefilter: u64) -> bool {
        self.unknown_prefilters > 0 || self.prefilters.contains_key(&prefilter)
    }

    /// Caches `result` under `tag`, evicting LRU entries as needed to stay
    /// within the configured bounds, and charging the enclave's memory
    /// budget for the pages the cache occupies. The buffer is shared, not
    /// copied; `prefilter` feeds the negative-lookup multiset (pass `None`
    /// when unknown — the cache stays correct, just less skippable).
    ///
    /// Results larger than the whole cache, and results that cannot be
    /// charged to the enclave (EPC exhausted), are silently not cached —
    /// the cache is an accelerator, never a correctness dependency.
    pub(crate) fn insert(
        &mut self,
        enclave: &Enclave,
        tag: CompTag,
        result: &Arc<Vec<u8>>,
        prefilter: Option<u64>,
    ) {
        let footprint = result.len() + ENTRY_OVERHEAD;
        if footprint > self.config.max_bytes || self.config.max_entries == 0 {
            return;
        }
        if self.entries.contains_key(&tag) {
            // Already cached (results for a tag are immutable); just bump.
            let _ = self.get(&tag);
            return;
        }
        while self.entries.len() >= self.config.max_entries
            || self.bytes + footprint > self.config.max_bytes
        {
            if !self.evict_lru(enclave) {
                return;
            }
        }
        while self.reserve(enclave, footprint).is_err() {
            // EPC exhausted: shed cache weight rather than failing the call;
            // an empty cache that still cannot reserve gives up silently.
            if !self.evict_lru(enclave) {
                return;
            }
        }
        match prefilter {
            Some(key) => *self.prefilters.entry(key).or_insert(0) += 1,
            None => self.unknown_prefilters += 1,
        }
        let seq = self.seq;
        self.seq += 1;
        self.bytes += footprint;
        self.entries.insert(
            tag,
            CacheEntry {
                result: Arc::clone(result), // allow-clone: Arc refcount bump, not a byte copy
                prefilter,
                lru_seq: seq,
            },
        );
        self.lru.insert(seq, tag);
    }

    /// Number of cached results.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Accounted in-enclave bytes (results plus per-entry overhead).
    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    fn evict_lru(&mut self, enclave: &Enclave) -> bool {
        let Some((&seq, &tag)) = self.lru.iter().next() else {
            return false;
        };
        self.lru.remove(&seq);
        if let Some(entry) = self.entries.remove(&tag) {
            match entry.prefilter {
                Some(key) => {
                    if let Some(count) = self.prefilters.get_mut(&key) {
                        *count -= 1;
                        if *count == 0 {
                            self.prefilters.remove(&key);
                        }
                    }
                }
                None => {
                    self.unknown_prefilters = self.unknown_prefilters.saturating_sub(1)
                }
            }
            self.release(enclave, entry.result.len() + ENTRY_OVERHEAD);
        }
        true
    }

    /// Page-pooled commit: only crossing a page boundary touches the
    /// enclave memory budget.
    fn reserve(
        &mut self,
        enclave: &Enclave,
        bytes: usize,
    ) -> Result<(), speed_enclave::EnclaveError> {
        let new_bytes = self.bytes + bytes;
        let needed =
            new_bytes.div_ceil(speed_enclave::PAGE_SIZE) * speed_enclave::PAGE_SIZE;
        if needed > self.committed {
            enclave.commit_memory(needed - self.committed)?;
            self.committed = needed;
        }
        Ok(())
    }

    fn release(&mut self, enclave: &Enclave, bytes: usize) {
        self.bytes = self.bytes.saturating_sub(bytes);
        let needed =
            self.bytes.div_ceil(speed_enclave::PAGE_SIZE) * speed_enclave::PAGE_SIZE;
        if needed < self.committed {
            let _ = enclave.release_memory(self.committed - needed);
            self.committed = needed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_enclave::{CostModel, Platform};

    fn tag(n: u8) -> CompTag {
        CompTag::from_bytes([n; 32])
    }

    fn enclave() -> std::sync::Arc<Enclave> {
        Platform::new(CostModel::no_sgx()).create_enclave(b"cache-test").unwrap()
    }

    fn shared(bytes: &[u8]) -> Arc<Vec<u8>> {
        Arc::new(bytes.to_vec())
    }

    #[test]
    fn get_miss_then_insert_then_hit() {
        let enclave = enclave();
        let mut cache = HotTagCache::new(HotCacheConfig::default());
        assert_eq!(cache.get(&tag(1)), None);
        cache.insert(&enclave, tag(1), &shared(b"result"), None);
        assert_eq!(
            cache.get(&tag(1)).as_deref().map(Vec::as_slice),
            Some(b"result".as_slice())
        );
    }

    #[test]
    fn hit_shares_the_buffer_instead_of_copying() {
        let enclave = enclave();
        let mut cache = HotTagCache::new(HotCacheConfig::default());
        let buffer = shared(&[7u8; 4096]);
        cache.insert(&enclave, tag(1), &buffer, Some(42));
        let first = cache.get(&tag(1)).unwrap();
        let second = cache.get(&tag(1)).unwrap();
        assert_eq!(first.as_ptr(), buffer.as_ptr(), "hit must alias the insert buffer");
        assert_eq!(second.as_ptr(), buffer.as_ptr());
    }

    #[test]
    fn prefilter_multiset_tracks_live_entries() {
        let enclave = enclave();
        let mut cache =
            HotTagCache::new(HotCacheConfig { max_entries: 2, max_bytes: 1 << 20 });
        assert!(!cache.may_contain(10));
        cache.insert(&enclave, tag(1), &shared(b"a"), Some(10));
        cache.insert(&enclave, tag(2), &shared(b"b"), Some(20));
        assert!(cache.may_contain(10));
        assert!(cache.may_contain(20));
        assert!(!cache.may_contain(30));
        // Evicting tag(1) (LRU) removes its prefilter from the multiset.
        cache.insert(&enclave, tag(3), &shared(b"c"), Some(30));
        assert!(!cache.may_contain(10));
        assert!(cache.may_contain(30));
    }

    #[test]
    fn unknown_prefilter_forces_conservative_answers() {
        let enclave = enclave();
        let mut cache =
            HotTagCache::new(HotCacheConfig { max_entries: 2, max_bytes: 1 << 20 });
        cache.insert(&enclave, tag(1), &shared(b"a"), None);
        assert!(cache.may_contain(999), "unknown prefilter must answer maybe");
        // Evict the unknown-prefilter entry; exact answers resume.
        cache.insert(&enclave, tag(2), &shared(b"b"), Some(5));
        cache.insert(&enclave, tag(3), &shared(b"c"), Some(6));
        assert!(!cache.may_contain(999));
        assert!(cache.may_contain(5));
    }

    #[test]
    fn entry_bound_evicts_lru() {
        let enclave = enclave();
        let mut cache =
            HotTagCache::new(HotCacheConfig { max_entries: 2, max_bytes: 1 << 20 });
        cache.insert(&enclave, tag(1), &shared(b"a"), None);
        cache.insert(&enclave, tag(2), &shared(b"b"), None);
        // Touch 1 so 2 becomes LRU.
        cache.get(&tag(1));
        cache.insert(&enclave, tag(3), &shared(b"c"), None);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&tag(1)).is_some());
        assert!(cache.get(&tag(2)).is_none());
        assert!(cache.get(&tag(3)).is_some());
    }

    #[test]
    fn byte_bound_evicts_until_fit() {
        let enclave = enclave();
        let mut cache = HotTagCache::new(HotCacheConfig {
            max_entries: 100,
            max_bytes: 3 * (100 + ENTRY_OVERHEAD),
        });
        for n in 1..=3u8 {
            cache.insert(&enclave, tag(n), &shared(&[n; 100]), None);
        }
        assert_eq!(cache.len(), 3);
        cache.insert(&enclave, tag(4), &shared(&[4u8; 100]), None);
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&tag(1)).is_none(), "oldest entry evicted");
    }

    #[test]
    fn oversized_result_is_not_cached() {
        let enclave = enclave();
        let mut cache =
            HotTagCache::new(HotCacheConfig { max_entries: 8, max_bytes: 64 });
        cache.insert(&enclave, tag(1), &shared(&[0u8; 1024]), Some(1));
        assert_eq!(cache.len(), 0);
        assert!(!cache.may_contain(1), "uncached entry must not poison the multiset");
    }

    #[test]
    fn duplicate_insert_keeps_single_entry() {
        let enclave = enclave();
        let mut cache = HotTagCache::new(HotCacheConfig::default());
        cache.insert(&enclave, tag(1), &shared(b"r"), Some(4));
        cache.insert(&enclave, tag(1), &shared(b"r"), Some(4));
        assert_eq!(cache.len(), 1);
        // Evicting the single entry clears the multiset exactly once.
        assert!(cache.may_contain(4));
    }

    #[test]
    fn memory_is_charged_and_released() {
        let enclave = enclave();
        let before = enclave.committed_bytes();
        let mut cache =
            HotTagCache::new(HotCacheConfig { max_entries: 4, max_bytes: 1 << 20 });
        for n in 1..=4u8 {
            cache.insert(&enclave, tag(n), &shared(&vec![n; 8 * 1024]), None);
        }
        assert!(enclave.committed_bytes() > before);
        // Evict everything by inserting over the entry bound.
        for n in 5..=8u8 {
            cache.insert(&enclave, tag(n), &shared(&[n]), None);
        }
        assert!(enclave.committed_bytes() < before + 64 * 1024);
    }

    /// Differential property: the cache behaves exactly like a reference
    /// model — a map plus a precise LRU list — for any stream of gets and
    /// inserts, never exceeds its configured bounds, and its prefilter
    /// multiset answers `may_contain` exactly for the live population.
    #[test]
    fn cache_matches_lru_model_under_random_ops() {
        use std::collections::BTreeMap;
        const CONFIG: HotCacheConfig = HotCacheConfig { max_entries: 3, max_bytes: 512 };

        speed_testkit::check(
            "cache_matches_lru_model_under_random_ops",
            0x5EED_3001,
            |rng| {
                let len = rng.range_usize(0, 50);
                (0..len)
                    .map(|_| (rng.chance(0.5), rng.byte() % 8, rng.byte()))
                    .collect::<Vec<(bool, u8, u8)>>()
            },
            |ops: &Vec<(bool, u8, u8)>| {
                let enclave = enclave();
                let mut cache = HotTagCache::new(CONFIG);
                let mut model: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
                let mut lru: Vec<u8> = Vec::new(); // front = least recent
                let model_bytes = |m: &BTreeMap<u8, Vec<u8>>| -> usize {
                    m.values().map(|v| v.len() + ENTRY_OVERHEAD).sum()
                };
                for (index, &(is_get, tag_seed, len)) in ops.iter().enumerate() {
                    if is_get {
                        let got = cache.get(&tag(tag_seed));
                        let expected = model.get(&tag_seed);
                        assert_eq!(
                            got.as_deref(),
                            expected,
                            "op {index}: GET divergence"
                        );
                        if expected.is_some() {
                            lru.retain(|t| *t != tag_seed);
                            lru.push(tag_seed);
                        }
                    } else {
                        // The result is a function of the tag, as in the
                        // runtime (results for a tag are immutable).
                        let result = vec![tag_seed; usize::from(len % 100)];
                        // Prefilter tags are a function of the input too.
                        let prefilter = u64::from(tag_seed) * 1000;
                        cache.insert(
                            &enclave,
                            tag(tag_seed),
                            &Arc::new(result.clone()),
                            Some(prefilter),
                        );
                        let footprint = result.len() + ENTRY_OVERHEAD;
                        if footprint > CONFIG.max_bytes {
                            // Too big to ever cache: no model change.
                        } else if model.contains_key(&tag_seed) {
                            // Duplicate insert just bumps recency.
                            lru.retain(|t| *t != tag_seed);
                            lru.push(tag_seed);
                        } else {
                            while model.len() >= CONFIG.max_entries
                                || model_bytes(&model) + footprint > CONFIG.max_bytes
                            {
                                let victim = lru.remove(0);
                                model.remove(&victim);
                            }
                            model.insert(tag_seed, result);
                            lru.push(tag_seed);
                        }
                    }
                    assert_eq!(cache.len(), model.len(), "op {index}: entry count");
                    assert_eq!(
                        cache.bytes(),
                        model_bytes(&model),
                        "op {index}: accounted bytes"
                    );
                    assert!(cache.len() <= CONFIG.max_entries, "op {index}: bound");
                    assert!(cache.bytes() <= CONFIG.max_bytes, "op {index}: bytes");
                    // The prefilter multiset answers exactly for the model's
                    // live population (every insert supplied a prefilter).
                    for seed in 0..8u8 {
                        assert_eq!(
                            cache.may_contain(u64::from(seed) * 1000),
                            model.contains_key(&seed),
                            "op {index}: may_contain divergence for seed {seed}"
                        );
                    }
                }
            },
        );
    }
}
