//! Shared result buffers for the zero-copy hot path.

// hot-path: deny-clone

use std::sync::Arc;

/// A plaintext computation result backed by a shared, immutable buffer.
///
/// Results for a tag are immutable, so the runtime, the in-enclave hot-tag
/// cache, and the caller can all hold the *same* allocation: a cache hit
/// hands back another reference instead of copying the bytes (the clone per
/// hit was the hot path's dominant cost for large results).
///
/// Dereferences to `[u8]` — use it anywhere a byte slice is expected, or
/// [`into_vec`](ResultBytes::into_vec) when an owned `Vec<u8>` is truly
/// required (this copies only if other references are still alive).
#[derive(Clone, Debug, Eq)]
pub struct ResultBytes(Arc<Vec<u8>>);

impl ResultBytes {
    /// Wraps an owned result buffer (no copy).
    pub fn new(bytes: Vec<u8>) -> Self {
        ResultBytes(Arc::new(bytes))
    }

    /// The shared buffer, for handing to other holders (the hot cache)
    /// without copying.
    pub(crate) fn shared(&self) -> &Arc<Vec<u8>> {
        &self.0
    }

    /// Wraps an already-shared buffer (no copy).
    pub(crate) fn from_shared(bytes: Arc<Vec<u8>>) -> Self {
        ResultBytes(bytes)
    }

    /// The result as a byte slice (same as the `Deref` view).
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Extracts an owned `Vec<u8>`, copying only when other references to
    /// the buffer are still alive.
    pub fn into_vec(self) -> Vec<u8> {
        Arc::try_unwrap(self.0).unwrap_or_else(|shared| {
            shared.as_ref().to_vec() // allow-clone: unwrap fallback is the documented copy
        })
    }
}

impl std::ops::Deref for ResultBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for ResultBytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for ResultBytes {
    fn from(bytes: Vec<u8>) -> Self {
        ResultBytes::new(bytes)
    }
}

impl PartialEq for ResultBytes {
    fn eq(&self, other: &Self) -> bool {
        *self.0 == *other.0
    }
}

impl PartialEq<[u8]> for ResultBytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[u8]> for ResultBytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<u8>> for ResultBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.0 == *other
    }
}

impl PartialEq<&Vec<u8>> for ResultBytes {
    fn eq(&self, other: &&Vec<u8>) -> bool {
        *self.0 == **other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for ResultBytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        **self == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for ResultBytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        **self == other[..]
    }
}

impl PartialEq<ResultBytes> for Vec<u8> {
    fn eq(&self, other: &ResultBytes) -> bool {
        *self == *other.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let result = ResultBytes::new(vec![1, 2, 3]);
        let alias = result.clone(); // allow-clone: the point of the test
        assert_eq!(result.as_ptr(), alias.as_ptr());
    }

    #[test]
    fn compares_against_common_byte_containers() {
        let result = ResultBytes::new(b"shared".to_vec()); // allow-clone: fixture
        assert_eq!(result, b"shared");
        assert_eq!(result, b"shared".as_slice());
        assert_eq!(result, b"shared".to_vec()); // allow-clone: fixture
        assert_eq!(result, &b"shared".to_vec()); // allow-clone: fixture
        assert!(result == *b"shared");
    }

    #[test]
    fn into_vec_avoids_copy_when_unique() {
        let result = ResultBytes::new(vec![9; 64]);
        let ptr = result.as_ptr();
        let owned = result.into_vec();
        assert_eq!(owned.as_ptr(), ptr, "unique buffer must move, not copy");
    }

    #[test]
    fn into_vec_copies_when_shared() {
        let result = ResultBytes::new(vec![9; 64]);
        let alias = result.clone(); // allow-clone: forces the copy branch
        let owned = result.into_vec();
        assert_ne!(owned.as_ptr(), alias.as_ptr());
        assert_eq!(owned, *alias.shared().as_ref());
    }
}
