//! SPEED's core contribution: secure, generic computation deduplication for
//! enclave applications.
//!
//! This crate implements the paper's `DedupRuntime` (§IV-B) and the
//! cryptographic machinery of Algorithms 1 and 2 (§III-C):
//!
//! - [`FuncDesc`] + [`TrustedLibrary`] — the *description* of a marked
//!   function (library family, version, signature) from which the runtime
//!   derives "a universally unique value for function identification" after
//!   verifying the application actually owns the code.
//! - [`tag_for`] — the duplicate-checking tag `t ← Hash(func, m)`.
//! - [`rce`] — the randomized-convergent-encryption result protection:
//!   random key `k`, secondary key `h ← Hash(func, m, r)`, wrapped key
//!   `[k] ← k ⊕ h`, ciphertext `[res] ← AES.Enc(k, res)`, and the Fig. 3
//!   verification protocol on recovery.
//! - [`DedupRuntime`] — intercepts marked computations, queries the
//!   `ResultStore` over a [`StoreClient`] (in-process or TCP), reuses
//!   results on hit, and publishes fresh results (synchronously or via the
//!   asynchronous PUT thread the paper describes).
//! - [`Deduplicable`] — the 2-lines-of-code developer API (§IV-C): wrap a
//!   function once, then call the wrapped version as normal.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use speed_core::{Deduplicable, DedupRuntime, FuncDesc, TrustedLibrary};
//! use speed_enclave::{CostModel, Platform};
//! use speed_store::{ResultStore, StoreConfig};
//! use speed_wire::SessionAuthority;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::new(CostModel::default_sgx());
//! let store = Arc::new(ResultStore::new(&platform, StoreConfig::default())?);
//! let authority = Arc::new(SessionAuthority::new());
//!
//! let mut library = TrustedLibrary::new("mathlib", "1.0.0");
//! library.register("u64 square(u64)", b"fn square(x: u64) -> u64 { x * x }");
//!
//! let runtime = DedupRuntime::builder(Arc::clone(&platform), b"demo-app")
//!     .in_process_store(Arc::clone(&store), Arc::clone(&authority))
//!     .trusted_library(library)
//!     .build()?;
//!
//! // The 2-line change: describe the function, wrap it, use it as normal.
//! let desc = FuncDesc::new("mathlib", "1.0.0", "u64 square(u64)");
//! let square = Deduplicable::new(&runtime, desc, |x: &u64| x * x)?;
//!
//! assert_eq!(square.call(&12)?, 144); // initial computation
//! assert_eq!(square.call(&12)?, 144); // subsequent computation (dedup hit)
//! assert_eq!(runtime.stats().hits, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod chunker;
mod client;
pub mod cluster;
mod deduplicable;
mod error;
mod func;
mod hotcache;
mod policy;
mod prefilter;
pub mod rce;
pub mod resilience;
mod result_bytes;
mod runtime;
mod stream;
mod tag;

pub use chaos::{
    ChaosClient, Fault, FaultConfig, FaultCounts, FaultInjector, FaultRates,
    OutageSwitch, SwitchedClient,
};
pub use chunker::{chunk_all, Chunker, ChunkerConfig, ChunkerStats};
pub use client::{InProcessClient, StoreClient, TcpClient};
pub use cluster::{
    ClusterBuilder, ClusterClient, ClusterConfig, ClusterCounts, HashRing, NodeId,
};
pub use deduplicable::Deduplicable;
pub use error::CoreError;
pub use func::{FuncDesc, FuncIdentity, TrustedLibrary};
pub use hotcache::HotCacheConfig;
pub use policy::{AdaptiveConfig, AdaptiveProfiler, DedupPolicy, PolicyDecision};
pub use prefilter::prefilter_tag;
pub use resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, Connector, Deadline, ReplayQueue,
    ResilienceConfig, ResilienceStats, ResilientClient, RetryPolicy,
};
pub use result_bytes::ResultBytes;
pub use runtime::{
    BatchCall, BatchCompute, DedupMode, DedupOutcome, DedupRuntime, PrefilterConfig,
    RuntimeBuilder, RuntimeStats,
};
pub use stream::{StreamConfig, StreamOutcome, StreamSession, StreamStats};
pub use tag::{secondary_key, tag_for};
