//! The developer-facing API (§IV-C): "The API is centered on a
//! `Deduplicable` object, which wraps the interaction with [the] underlying
//! trusted DedupRuntime, conversion between data formats, and all other
//! intermediate operations. […] To make a function deduplicable, the
//! developer only needs to create a Deduplicable version by providing the
//! aforementioned simple description, and then uses the new version as
//! normal. This usually requires a change of only 2 lines of code per
//! function call."

use std::sync::Arc;

use speed_wire::{from_bytes, to_bytes, WireDecode, WireEncode};

use crate::error::CoreError;
use crate::func::{FuncDesc, FuncIdentity};
use crate::runtime::{DedupOutcome, DedupRuntime};

/// A deduplicable version of a function.
///
/// Generic over the input type `I` (anything [`WireEncode`]), the output
/// type `O` (anything [`WireEncode`] + [`WireDecode`]), and the wrapped
/// function — mirroring the C++ template design of the paper's prototype,
/// which "allows it to accept, in principle, any functions".
///
/// # Example
///
/// The paper's Fig. 4 pattern — describe the function, wrap it, call the
/// wrapped version as normal:
///
/// ```
/// # use std::sync::Arc;
/// # use speed_core::{Deduplicable, DedupRuntime, FuncDesc, TrustedLibrary};
/// # use speed_enclave::{CostModel, Platform};
/// # use speed_store::{ResultStore, StoreConfig};
/// # use speed_wire::SessionAuthority;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let platform = Platform::new(CostModel::no_sgx());
/// # let store = Arc::new(ResultStore::new(&platform, StoreConfig::default())?);
/// # let authority = Arc::new(SessionAuthority::new());
/// # let mut lib = TrustedLibrary::new("zlib", "1.2.11");
/// # lib.register("int deflate(...)", b"deflate code");
/// # let runtime = DedupRuntime::builder(platform, b"app")
/// #     .in_process_store(store, authority)
/// #     .trusted_library(lib)
/// #     .build()?;
/// # fn deflate_wrapper(data: &Vec<u8>) -> Vec<u8> { data.clone() }
/// let dedup_deflate = Deduplicable::new(
///     &runtime,
///     FuncDesc::new("zlib", "1.2.11", "int deflate(...)"),
///     |data: &Vec<u8>| deflate_wrapper(data),
/// )?;
/// let compressed = dedup_deflate.call(&vec![1, 2, 3])?;
/// # let _ = compressed;
/// # Ok(())
/// # }
/// ```
pub struct Deduplicable<I, O, F>
where
    F: Fn(&I) -> O,
{
    runtime: Arc<DedupRuntime>,
    desc: FuncDesc,
    identity: FuncIdentity,
    function: F,
    _marker: std::marker::PhantomData<fn(&I) -> O>,
}

impl<I, O, F> std::fmt::Debug for Deduplicable<I, O, F>
where
    F: Fn(&I) -> O,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deduplicable").field("desc", &self.desc).finish_non_exhaustive()
    }
}

impl<I, O, F> Deduplicable<I, O, F>
where
    I: WireEncode,
    O: WireEncode + WireDecode,
    F: Fn(&I) -> O,
{
    /// Wraps `function` as a deduplicable computation described by `desc`.
    ///
    /// Verifies at construction time that the described function exists in
    /// one of the runtime's trusted libraries.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FunctionNotTrusted`] if the description does
    /// not match any registered library function.
    pub fn new(
        runtime: &Arc<DedupRuntime>,
        desc: FuncDesc,
        function: F,
    ) -> Result<Self, CoreError> {
        let identity = runtime.resolve(&desc)?;
        Ok(Deduplicable {
            runtime: Arc::clone(runtime),
            desc,
            identity,
            function,
            _marker: std::marker::PhantomData,
        })
    }

    /// Calls the function with deduplication: reuses a stored result when
    /// the identical computation was performed before, executes the
    /// function otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on store/transport failure or if a reused
    /// result fails to deserialize as `O`.
    pub fn call(&self, input: &I) -> Result<O, CoreError> {
        self.call_traced(input).map(|(output, _)| output)
    }

    /// Like [`call`](Deduplicable::call), also reporting whether the result
    /// was reused ([`DedupOutcome::Hit`]) or computed.
    ///
    /// # Errors
    ///
    /// As [`call`](Deduplicable::call).
    pub fn call_traced(&self, input: &I) -> Result<(O, DedupOutcome), CoreError> {
        let input_bytes = to_bytes(input);
        let (result_bytes, outcome) =
            self.runtime.execute_raw(&self.identity, &input_bytes, |_| {
                to_bytes(&(self.function)(input))
            })?;
        let output = from_bytes::<O>(&result_bytes)?;
        Ok((output, outcome))
    }

    /// Calls the function over a batch of inputs, deduplicating each item
    /// independently (repeated items within the batch hit after their
    /// first occurrence; with the async PUT worker enabled, publications
    /// overlap with subsequent computations).
    ///
    /// # Errors
    ///
    /// Stops at the first failing item, returning its error.
    pub fn call_many(&self, inputs: &[I]) -> Result<Vec<O>, CoreError> {
        inputs.iter().map(|input| self.call(input)).collect()
    }

    /// Like [`call_many`](Deduplicable::call_many), also reporting the
    /// per-item outcome.
    ///
    /// # Errors
    ///
    /// Stops at the first failing item, returning its error.
    pub fn call_many_traced(
        &self,
        inputs: &[I],
    ) -> Result<Vec<(O, DedupOutcome)>, CoreError> {
        inputs.iter().map(|input| self.call_traced(input)).collect()
    }

    /// The function description this wrapper was created with.
    pub fn desc(&self) -> &FuncDesc {
        &self.desc
    }

    /// The runtime this wrapper publishes through.
    pub fn runtime(&self) -> &Arc<DedupRuntime> {
        &self.runtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::TrustedLibrary;
    use speed_enclave::{CostModel, Platform};
    use speed_store::{ResultStore, StoreConfig};
    use speed_wire::SessionAuthority;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn runtime() -> Arc<DedupRuntime> {
        let platform = Platform::new(CostModel::default_sgx());
        let store =
            Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
        let authority = Arc::new(SessionAuthority::with_seed(2));
        let mut lib = TrustedLibrary::new("mathlib", "2.0");
        lib.register("sum(Vec<u32>)", b"sum code");
        lib.register("concat(String,String)", b"concat code");
        DedupRuntime::builder(platform, b"dedup-test-app")
            .in_process_store(store, authority)
            .trusted_library(lib)
            .build()
            .unwrap()
    }

    #[test]
    fn typed_roundtrip_with_dedup() {
        let rt = runtime();
        let executions = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&executions);
        let sum = Deduplicable::new(
            &rt,
            FuncDesc::new("mathlib", "2.0", "sum(Vec<u32>)"),
            move |v: &Vec<u32>| -> u64 {
                counter.fetch_add(1, Ordering::Relaxed);
                v.iter().map(|&x| u64::from(x)).sum()
            },
        )
        .unwrap();

        assert_eq!(sum.call(&vec![1, 2, 3]).unwrap(), 6);
        assert_eq!(sum.call(&vec![1, 2, 3]).unwrap(), 6);
        assert_eq!(executions.load(Ordering::Relaxed), 1);

        // Different input executes again.
        assert_eq!(sum.call(&vec![4, 5]).unwrap(), 9);
        assert_eq!(executions.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn call_traced_reports_outcomes() {
        let rt = runtime();
        let sum = Deduplicable::new(
            &rt,
            FuncDesc::new("mathlib", "2.0", "sum(Vec<u32>)"),
            |v: &Vec<u32>| -> u64 { v.iter().map(|&x| u64::from(x)).sum() },
        )
        .unwrap();
        let (_, first) = sum.call_traced(&vec![7]).unwrap();
        let (_, second) = sum.call_traced(&vec![7]).unwrap();
        assert_eq!(first, DedupOutcome::Miss);
        assert_eq!(second, DedupOutcome::Hit);
    }

    #[test]
    fn structured_input_output_types() {
        let rt = runtime();
        let concat = Deduplicable::new(
            &rt,
            FuncDesc::new("mathlib", "2.0", "concat(String,String)"),
            |pair: &(String, String)| -> String { format!("{}{}", pair.0, pair.1) },
        )
        .unwrap();
        let joined = concat.call(&("foo".to_string(), "bar".to_string())).unwrap();
        assert_eq!(joined, "foobar");
    }

    #[test]
    fn construction_fails_for_untrusted_function() {
        let rt = runtime();
        let result = Deduplicable::new(
            &rt,
            FuncDesc::new("unknown", "0.0", "nope()"),
            |x: &u32| *x,
        );
        assert!(matches!(result, Err(CoreError::FunctionNotTrusted { .. })));
    }

    #[test]
    fn two_wrappers_same_desc_share_results() {
        let rt = runtime();
        let desc = FuncDesc::new("mathlib", "2.0", "sum(Vec<u32>)");
        let first = Deduplicable::new(&rt, desc.clone(), |v: &Vec<u32>| -> u64 {
            v.iter().map(|&x| u64::from(x)).sum()
        })
        .unwrap();
        let second = Deduplicable::new(&rt, desc, |_: &Vec<u32>| -> u64 {
            panic!("second wrapper must reuse the first's result")
        })
        .unwrap();
        first.call(&vec![10, 20]).unwrap();
        assert_eq!(second.call(&vec![10, 20]).unwrap(), 30);
    }

    #[test]
    fn call_many_dedups_within_batch() {
        let rt = runtime();
        let executions = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&executions);
        let sum = Deduplicable::new(
            &rt,
            FuncDesc::new("mathlib", "2.0", "sum(Vec<u32>)"),
            move |v: &Vec<u32>| -> u64 {
                counter.fetch_add(1, Ordering::Relaxed);
                v.iter().map(|&x| u64::from(x)).sum()
            },
        )
        .unwrap();
        let batch = vec![vec![1u32, 2], vec![3], vec![1, 2], vec![3], vec![1, 2]];
        let results = sum.call_many(&batch).unwrap();
        assert_eq!(results, vec![3, 3, 3, 3, 3]);
        // Only the two distinct inputs executed.
        assert_eq!(executions.load(Ordering::Relaxed), 2);

        let traced = sum.call_many_traced(&batch).unwrap();
        let hits = traced.iter().filter(|(_, o)| *o == crate::DedupOutcome::Hit).count();
        assert_eq!(hits, 5); // all five are hits on the second pass
    }

    #[test]
    fn desc_accessor() {
        let rt = runtime();
        let sum = Deduplicable::new(
            &rt,
            FuncDesc::new("mathlib", "2.0", "sum(Vec<u32>)"),
            |v: &Vec<u32>| -> u64 { v.len() as u64 },
        )
        .unwrap();
        assert_eq!(sum.desc().library(), "mathlib");
        assert!(format!("{sum:?}").contains("mathlib"));
    }
}
