//! Fault tolerance for the store path.
//!
//! SPEED's deduplication is an *optimization*: by Algorithm 1's semantics a
//! miss — or any failure to reach the `ResultStore` — must degrade to "just
//! execute the function", never to an application error. This module
//! supplies the machinery the [`crate::DedupRuntime`] uses to honour that
//! invariant against a flaky or restarting store:
//!
//! - [`RetryPolicy`] — capped exponential backoff with deterministic
//!   jitter drawn from a seeded [`SystemRng`] (no external RNG crate).
//! - [`Deadline`] — a per-round-trip time budget so retries cannot stall a
//!   marked call indefinitely.
//! - [`CircuitBreaker`] — closed → open after N consecutive failures →
//!   half-open probe, so a dead store is not hammered on every call.
//! - [`ReplayQueue`] — a bounded queue of `PUT_REQUEST`s that could not be
//!   delivered; drained automatically once the store answers again.
//! - [`ResilientClient`] — a [`StoreClient`] wrapper tying it together:
//!   every reconnect runs the full attestation handshake again (a fresh
//!   session key from the `SessionAuthority`), so sequence numbers restart
//!   safely on a brand-new channel.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use speed_crypto::SystemRng;
use speed_telemetry::{names, Counter, Gauge};
use speed_wire::Message;

use crate::client::StoreClient;
use crate::error::CoreError;

/// A factory producing freshly connected store clients. Each invocation
/// must perform the complete handshake (attestation + session key), so the
/// produced client is usable even after the store restarted.
pub type Connector = Box<dyn FnMut() -> Result<Box<dyn StoreClient>, CoreError> + Send>;

/// Capped exponential backoff with deterministic jitter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per round-trip, including the first (min 1).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling on the exponential growth.
    pub max_delay: Duration,
    /// Fraction of each delay that is randomized, in `[0, 1]`. With
    /// jitter `j`, the actual delay is uniform in `[(1-j)·d, d]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, fail fast).
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// The backoff delay before retry number `attempt` (0-based: the delay
    /// after the first failed attempt is `backoff(0, ..)`).
    pub fn backoff(&self, attempt: u32, rng: &mut SystemRng) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .min(self.max_delay);
        let jitter = self.jitter.clamp(0.0, 1.0);
        let scale = (1.0 - jitter) + jitter * rng.gen_f64();
        exp.mul_f64(scale)
    }
}

/// A wall-clock budget for one store round-trip including all retries.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline { at: Instant::now() + budget }
    }

    /// Time left before the deadline (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Whether the budget is spent.
    pub fn expired(&self) -> bool {
        self.remaining() == Duration::ZERO
    }
}

/// Circuit-breaker thresholds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 5, cooldown: Duration::from_millis(250) }
    }
}

/// The breaker's observable state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests fail fast without touching the store.
    Open,
    /// One probe request is admitted to test recovery.
    HalfOpen,
}

/// Closed → open after N consecutive failures → half-open probe.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    open_until: Option<Instant>,
    transitions: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: None,
            transitions: 0,
        }
    }

    /// Current state (does not advance open → half-open; see [`Self::admit`]).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total state transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    fn transition(&mut self, next: BreakerState) -> bool {
        if self.state == next {
            return false;
        }
        self.state = next;
        self.transitions += 1;
        true
    }

    /// Decides whether a request may proceed at time `now`. Moves an open
    /// breaker whose cooldown elapsed to half-open (admitting the probe).
    /// Returns `(admitted, transitioned)`.
    pub fn admit(&mut self, now: Instant) -> (bool, bool) {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => (true, false),
            BreakerState::Open => {
                if self.open_until.is_some_and(|until| now >= until) {
                    let t = self.transition(BreakerState::HalfOpen);
                    (true, t)
                } else {
                    (false, false)
                }
            }
        }
    }

    /// Records a successful round-trip; closes the breaker. Returns whether
    /// a state transition occurred.
    pub fn record_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        self.open_until = None;
        self.transition(BreakerState::Closed)
    }

    /// Records a failed round-trip at time `now`; may trip the breaker
    /// open. Returns whether a state transition occurred.
    pub fn record_failure(&mut self, now: Instant) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::HalfOpen => {
                self.open_until = Some(now + self.config.cooldown);
                self.transition(BreakerState::Open)
            }
            BreakerState::Closed
                if self.consecutive_failures >= self.config.failure_threshold =>
            {
                self.open_until = Some(now + self.config.cooldown);
                self.transition(BreakerState::Open)
            }
            _ => false,
        }
    }
}

/// Bounded FIFO of undeliverable `PUT_REQUEST`s. When full, the oldest
/// entry is evicted (and counted) — fresher results win.
pub struct ReplayQueue {
    inner: Mutex<VecDeque<Message>>,
    capacity: usize,
    dropped: AtomicU64,
    depth_tm: Gauge,
    dropped_tm: Counter,
}

impl fmt::Debug for ReplayQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplayQueue")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl ReplayQueue {
    /// An empty queue holding at most `capacity` messages.
    pub fn new(capacity: usize) -> Self {
        let reg = speed_telemetry::global();
        ReplayQueue {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            depth_tm: reg.gauge(
                names::RESILIENCE_REPLAY_QUEUE_DEPTH,
                "PUTs currently parked in the replay queue",
            ),
            dropped_tm: reg.counter(
                names::RESILIENCE_REPLAY_DROPPED_TOTAL,
                "Queued PUTs evicted because the bounded replay queue overflowed",
            ),
        }
    }

    /// Enqueues a message for later replay; evicts the oldest entry when
    /// full. Returns `false` if an eviction occurred.
    pub fn push(&self, message: Message) -> bool {
        let mut queue =
            self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut clean = true;
        while queue.len() >= self.capacity {
            queue.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.dropped_tm.inc();
            self.depth_tm.sub(1);
            clean = false;
        }
        queue.push_back(message);
        self.depth_tm.add(1);
        clean
    }

    /// Puts a message back at the head (a replay attempt that failed).
    pub fn push_front(&self, message: Message) {
        let mut queue =
            self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if queue.len() >= self.capacity {
            queue.pop_back();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.dropped_tm.inc();
            self.depth_tm.sub(1);
        }
        queue.push_front(message);
        self.depth_tm.add(1);
    }

    /// Takes the oldest queued message.
    pub fn pop(&self) -> Option<Message> {
        let popped = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front();
        if popped.is_some() {
            self.depth_tm.sub(1);
        }
        popped
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Messages evicted because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for ReplayQueue {
    fn drop(&mut self) {
        // The depth gauge aggregates every live queue in the process; give
        // back whatever this queue still holds so it does not leak upward.
        let remaining = self.len() as u64;
        if remaining > 0 {
            self.depth_tm.sub(remaining);
        }
    }
}

/// Shared counters describing the resilience layer's activity. One
/// instance is shared by every [`ResilientClient`] a runtime owns (the
/// synchronous client and the async-PUT worker's client).
#[derive(Debug, Default)]
pub struct ResilienceStats {
    /// Retried round-trip attempts (not counting the first attempt).
    pub retries: AtomicU64,
    /// Re-established connections (full re-attestation handshakes),
    /// excluding each client's initial connect.
    pub reconnects: AtomicU64,
    /// Circuit-breaker state transitions across all clients.
    pub breaker_transitions: AtomicU64,
    /// Queued PUTs successfully delivered after recovery.
    pub replayed_puts: AtomicU64,
    /// Requests failed fast because the breaker was open.
    pub fast_fails: AtomicU64,
    /// Round-trips abandoned after exhausting retries or the deadline.
    pub giveups: AtomicU64,
}

/// Everything [`ResilientClient`] needs to know.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceConfig {
    /// Retry/backoff schedule per round-trip.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Wall-clock budget per round-trip including retries and backoff.
    pub call_budget: Duration,
    /// Maximum undelivered PUTs kept for replay.
    pub replay_capacity: usize,
    /// Seed for the jitter RNG; `None` uses OS entropy. Seeding makes
    /// backoff schedules reproducible in experiments.
    pub jitter_seed: Option<u64>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            call_budget: Duration::from_secs(2),
            replay_capacity: 1024,
            jitter_seed: None,
        }
    }
}

/// A [`StoreClient`] that survives transport faults: retries with backoff,
/// reconnects (re-attesting from scratch) on every failure, trips a
/// circuit breaker when the store looks down, and drains the shared
/// [`ReplayQueue`] as soon as a round-trip succeeds again.
///
/// All failures surface as [`CoreError::StoreUnavailable`], which the
/// `DedupRuntime` converts into graceful degradation (local execution for
/// GETs, replay queueing for PUTs).
pub struct ResilientClient {
    connector: Connector,
    inner: Option<Box<dyn StoreClient>>,
    ever_connected: bool,
    config: ResilienceConfig,
    breaker: CircuitBreaker,
    rng: SystemRng,
    stats: Arc<ResilienceStats>,
    replay: Arc<ReplayQueue>,
    telemetry: ResilienceTelemetry,
}

/// Process-wide telemetry mirrors of [`ResilienceStats`].
#[derive(Debug)]
struct ResilienceTelemetry {
    retries: Counter,
    reconnects: Counter,
    breaker_transitions: Counter,
    replayed_puts: Counter,
    fast_fails: Counter,
    giveups: Counter,
}

impl ResilienceTelemetry {
    fn from_global() -> Self {
        let reg = speed_telemetry::global();
        ResilienceTelemetry {
            retries: reg.counter(
                names::RESILIENCE_RETRIES_TOTAL,
                "Store round-trip attempts retried with backoff",
            ),
            reconnects: reg.counter(
                names::RESILIENCE_RECONNECTS_TOTAL,
                "Re-established store connections (full re-attestation handshakes)",
            ),
            breaker_transitions: reg.counter(
                names::RESILIENCE_BREAKER_TRANSITIONS_TOTAL,
                "Circuit-breaker state transitions (closed/open/half-open)",
            ),
            replayed_puts: reg.counter(
                names::RESILIENCE_REPLAYED_PUTS_TOTAL,
                "Queued PUTs delivered after the store recovered",
            ),
            fast_fails: reg.counter(
                names::RESILIENCE_FAST_FAILS_TOTAL,
                "Round-trips refused immediately by the open circuit breaker",
            ),
            giveups: reg.counter(
                names::RESILIENCE_GIVEUPS_TOTAL,
                "Round-trips abandoned after exhausting retries or the deadline",
            ),
        }
    }
}

impl fmt::Debug for ResilientClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResilientClient")
            .field("connected", &self.inner.is_some())
            .field("breaker", &self.breaker.state())
            .finish_non_exhaustive()
    }
}

impl ResilientClient {
    /// Wraps `connector` with the given policies. `stats` and `replay` may
    /// be shared with other clients of the same runtime.
    pub fn new(
        connector: Connector,
        config: ResilienceConfig,
        stats: Arc<ResilienceStats>,
        replay: Arc<ReplayQueue>,
    ) -> Self {
        let rng = match config.jitter_seed {
            Some(seed) => SystemRng::seeded(seed),
            None => SystemRng::new(),
        };
        ResilientClient {
            connector,
            inner: None,
            ever_connected: false,
            breaker: CircuitBreaker::new(config.breaker),
            rng,
            config,
            stats,
            replay,
            telemetry: ResilienceTelemetry::from_global(),
        }
    }

    /// The breaker's current state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    fn note_transition(&self, transitioned: bool) {
        if transitioned {
            self.stats.breaker_transitions.fetch_add(1, Ordering::Relaxed);
            self.telemetry.breaker_transitions.inc();
        }
    }

    fn try_once(&mut self, request: &Message) -> Result<Message, CoreError> {
        if self.inner.is_none() {
            if self.ever_connected {
                self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                self.telemetry.reconnects.inc();
            }
            let client = (self.connector)()?;
            self.ever_connected = true;
            self.inner = Some(client);
        }
        self.inner.as_mut().expect("just connected").roundtrip(request)
    }

    /// Delivers queued PUTs through the live connection. Stops at the
    /// first failure (the message goes back to the head of the queue).
    fn drain_replay(&mut self) {
        while let Some(queued) = self.replay.pop() {
            let Some(inner) = self.inner.as_mut() else {
                self.replay.push_front(queued);
                return;
            };
            match inner.roundtrip(&queued) {
                Ok(_) => {
                    self.stats.replayed_puts.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.replayed_puts.inc();
                }
                Err(_) => {
                    self.replay.push_front(queued);
                    self.inner = None;
                    return;
                }
            }
        }
    }
}

impl StoreClient for ResilientClient {
    fn roundtrip(&mut self, request: &Message) -> Result<Message, CoreError> {
        let (admitted, transitioned) = self.breaker.admit(Instant::now());
        self.note_transition(transitioned);
        if !admitted {
            self.stats.fast_fails.fetch_add(1, Ordering::Relaxed);
            self.telemetry.fast_fails.inc();
            return Err(CoreError::StoreUnavailable("circuit breaker open".into()));
        }

        let deadline = Deadline::after(self.config.call_budget);
        let attempts = self.config.retry.max_attempts.max(1);
        let mut last_error = String::new();
        for attempt in 0..attempts {
            match self.try_once(request) {
                Ok(response) => {
                    let transitioned = self.breaker.record_success();
                    self.note_transition(transitioned);
                    self.drain_replay();
                    return Ok(response);
                }
                Err(err) => {
                    last_error = err.to_string();
                    // The connection is suspect; the next attempt runs the
                    // full handshake again (fresh session key).
                    self.inner = None;
                    let transitioned = self.breaker.record_failure(Instant::now());
                    self.note_transition(transitioned);
                    if self.breaker.state() == BreakerState::Open
                        || attempt + 1 >= attempts
                        || deadline.expired()
                    {
                        break;
                    }
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.retries.inc();
                    let backoff = self.config.retry.backoff(attempt, &mut self.rng);
                    std::thread::sleep(backoff.min(deadline.remaining()));
                }
            }
        }
        self.stats.giveups.fetch_add(1, Ordering::Relaxed);
        self.telemetry.giveups.inc();
        Err(CoreError::StoreUnavailable(last_error))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_wire::{AppId, CompTag, GetResponseBody};
    use std::sync::atomic::AtomicUsize;

    fn get_request() -> Message {
        Message::GetRequest { app: AppId(1), tag: CompTag::from_bytes([7; 32]) }
    }

    fn ok_response() -> Message {
        Message::GetResponse(GetResponseBody { found: false, record: None })
    }

    /// A scripted client: each entry is one roundtrip outcome (true = ok).
    #[derive(Debug)]
    struct Scripted {
        script: Arc<Mutex<VecDeque<bool>>>,
        calls: Arc<AtomicUsize>,
    }

    impl StoreClient for Scripted {
        fn roundtrip(&mut self, _request: &Message) -> Result<Message, CoreError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let ok = self.script.lock().unwrap().pop_front().unwrap_or(true);
            if ok {
                Ok(ok_response())
            } else {
                Err(CoreError::UnexpectedResponse("scripted failure".into()))
            }
        }
    }

    fn scripted_connector(
        outcomes: &[bool],
    ) -> (Connector, Arc<AtomicUsize>, Arc<AtomicUsize>) {
        let script =
            Arc::new(Mutex::new(outcomes.iter().copied().collect::<VecDeque<_>>()));
        let calls = Arc::new(AtomicUsize::new(0));
        let connects = Arc::new(AtomicUsize::new(0));
        let calls_out = Arc::clone(&calls);
        let connects_out = Arc::clone(&connects);
        let connector: Connector = Box::new(move || {
            connects.fetch_add(1, Ordering::Relaxed);
            Ok(Box::new(Scripted {
                script: Arc::clone(&script),
                calls: Arc::clone(&calls),
            }) as Box<dyn StoreClient>)
        });
        (connector, calls_out, connects_out)
    }

    fn fast_config() -> ResilienceConfig {
        ResilienceConfig {
            retry: RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_micros(100),
                max_delay: Duration::from_millis(1),
                jitter: 0.5,
            },
            breaker: BreakerConfig {
                failure_threshold: 5,
                cooldown: Duration::from_millis(10),
            },
            call_budget: Duration::from_secs(1),
            replay_capacity: 8,
            jitter_seed: Some(42),
        }
    }

    fn client(connector: Connector, config: ResilienceConfig) -> ResilientClient {
        ResilientClient::new(
            connector,
            config.clone(),
            Arc::new(ResilienceStats::default()),
            Arc::new(ReplayQueue::new(config.replay_capacity)),
        )
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            jitter: 0.0,
        };
        let mut rng = SystemRng::seeded(1);
        assert_eq!(policy.backoff(0, &mut rng), Duration::from_millis(10));
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_millis(20));
        assert_eq!(policy.backoff(2, &mut rng), Duration::from_millis(40));
        assert_eq!(policy.backoff(3, &mut rng), Duration::from_millis(80));
        assert_eq!(policy.backoff(9, &mut rng), Duration::from_millis(80));
        // Huge attempt numbers must not overflow.
        assert_eq!(policy.backoff(u32::MAX, &mut rng), Duration::from_millis(80));
    }

    #[test]
    fn jitter_is_deterministic_for_a_seed() {
        let policy = RetryPolicy {
            jitter: 0.5,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(1),
            max_attempts: 3,
        };
        let a: Vec<_> = {
            let mut rng = SystemRng::seeded(9);
            (0..4).map(|i| policy.backoff(i, &mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = SystemRng::seeded(9);
            (0..4).map(|i| policy.backoff(i, &mut rng)).collect()
        };
        assert_eq!(a, b);
        // Jittered delays stay within [(1-j)·d, d].
        assert!(a[0] >= Duration::from_millis(50) && a[0] <= Duration::from_millis(100));
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(5),
        });
        let now = Instant::now();
        assert_eq!(breaker.state(), BreakerState::Closed);
        breaker.record_failure(now);
        breaker.record_failure(now);
        assert_eq!(breaker.state(), BreakerState::Closed);
        breaker.record_failure(now);
        assert_eq!(breaker.state(), BreakerState::Open);
        // While open, requests are rejected.
        assert!(!breaker.admit(now).0);
        // After the cooldown a probe is admitted (half-open).
        let later = now + Duration::from_millis(6);
        assert!(breaker.admit(later).0);
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        // Probe failure re-opens; probe success closes.
        breaker.record_failure(later);
        assert_eq!(breaker.state(), BreakerState::Open);
        let much_later = later + Duration::from_millis(6);
        assert!(breaker.admit(much_later).0);
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.transitions(), 5);
    }

    #[test]
    fn retries_until_success() {
        let (connector, calls, connects) = scripted_connector(&[false, false, true]);
        let mut client = client(connector, fast_config());
        let response = client.roundtrip(&get_request()).unwrap();
        assert_eq!(response, ok_response());
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        // Each failure forced a fresh handshake: 3 connects total.
        assert_eq!(connects.load(Ordering::Relaxed), 3);
        assert_eq!(client.stats.retries.load(Ordering::Relaxed), 2);
        assert_eq!(client.stats.reconnects.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let (connector, calls, _) = scripted_connector(&[false; 10]);
        let mut client = client(connector, fast_config());
        let err = client.roundtrip(&get_request()).unwrap_err();
        assert!(matches!(err, CoreError::StoreUnavailable(_)));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(client.stats.giveups.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn connector_failure_is_retried() {
        let attempts = Arc::new(AtomicUsize::new(0));
        let attempts_inner = Arc::clone(&attempts);
        let connector: Connector = Box::new(move || {
            attempts_inner.fetch_add(1, Ordering::Relaxed);
            Err(CoreError::StoreUnavailable("connection refused".into()))
        });
        let mut client = client(connector, fast_config());
        assert!(client.roundtrip(&get_request()).is_err());
        assert_eq!(attempts.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn breaker_opens_and_fails_fast() {
        let mut config = fast_config();
        config.breaker.failure_threshold = 2; // trips during the first call
        config.breaker.cooldown = Duration::from_secs(60);
        let (connector, calls, _) = scripted_connector(&[false; 10]);
        let mut client = client(connector, config);
        assert!(client.roundtrip(&get_request()).is_err());
        assert_eq!(client.breaker_state(), BreakerState::Open);
        let calls_before = calls.load(Ordering::Relaxed);
        // While open, the store is not touched at all.
        let err = client.roundtrip(&get_request()).unwrap_err();
        assert!(matches!(err, CoreError::StoreUnavailable(_)));
        assert_eq!(calls.load(Ordering::Relaxed), calls_before);
        assert_eq!(client.stats.fast_fails.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn half_open_probe_recovers_and_drains_replay() {
        let mut config = fast_config();
        config.breaker.failure_threshold = 1;
        config.breaker.cooldown = Duration::from_millis(1);
        config.retry = RetryPolicy::none();
        let (connector, _, _) = scripted_connector(&[false, true, true, true, true]);
        let stats = Arc::new(ResilienceStats::default());
        let replay = Arc::new(ReplayQueue::new(8));
        let mut client = ResilientClient::new(
            connector,
            config,
            Arc::clone(&stats),
            Arc::clone(&replay),
        );

        // First call fails and trips the breaker; the PUT goes to replay.
        assert!(client.roundtrip(&get_request()).is_err());
        replay.push(get_request());
        replay.push(get_request());
        assert_eq!(replay.len(), 2);

        std::thread::sleep(Duration::from_millis(2));
        // Half-open probe succeeds, closes the breaker, drains the queue.
        assert!(client.roundtrip(&get_request()).is_ok());
        assert_eq!(client.breaker_state(), BreakerState::Closed);
        assert_eq!(replay.len(), 0);
        assert_eq!(stats.replayed_puts.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn replay_queue_bounds_and_eviction() {
        let queue = ReplayQueue::new(2);
        assert!(queue.push(get_request()));
        assert!(queue.push(get_request()));
        assert!(!queue.push(get_request())); // evicts the oldest
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.dropped(), 1);
        queue.pop().unwrap();
        queue.pop().unwrap();
        assert!(queue.pop().is_none());
        assert!(queue.is_empty());
    }

    #[test]
    fn deadline_expires() {
        let deadline = Deadline::after(Duration::from_millis(1));
        assert!(!deadline.expired() || deadline.remaining() == Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        assert!(deadline.expired());
        assert_eq!(deadline.remaining(), Duration::ZERO);
    }
}
