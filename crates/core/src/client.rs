//! Store clients: how a `DedupRuntime` reaches its `ResultStore`.
//!
//! Two deployments from the paper are supported:
//!
//! - [`InProcessClient`] — store co-located on the same machine (§IV-B:
//!   "we consider deploying ResultStore at the same machine of the
//!   outsourced applications"). Requests still traverse the attested
//!   [`SecureChannel`] so the same bytes are protected as in the remote
//!   case.
//! - [`TcpClient`] — store on a dedicated server over TCP (the two-machine
//!   evaluation setup, and the master-store deployment).

use std::fmt;
use std::sync::Arc;

use speed_enclave::{Enclave, Platform};
use speed_store::server::TcpStoreClient;
use speed_store::ResultStore;
use speed_wire::{from_bytes, to_bytes, Message, SecureChannel, SessionAuthority};

use crate::error::CoreError;

/// A synchronous request/response connection to a `ResultStore`.
///
/// Implementations must be [`Send`] so the asynchronous PUT worker can own
/// one.
pub trait StoreClient: Send + fmt::Debug {
    /// Sends `request` and waits for the response.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on transport, channel, or protocol failure.
    fn roundtrip(&mut self, request: &Message) -> Result<Message, CoreError>;
}

/// An in-process client: requests are sealed through a [`SecureChannel`],
/// opened by the store-side channel end, handled, and the response sealed
/// back — byte-for-byte what would cross a network.
pub struct InProcessClient {
    store: Arc<ResultStore>,
    app_channel: SecureChannel,
    store_channel: SecureChannel,
}

impl fmt::Debug for InProcessClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InProcessClient")
            .field("sent", &self.app_channel.sent())
            .finish_non_exhaustive()
    }
}

impl InProcessClient {
    /// Establishes an attested channel between `app_enclave` and the
    /// store's enclave, both hosted on `platform`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Channel`] if attestation fails.
    pub fn connect(
        store: Arc<ResultStore>,
        authority: &SessionAuthority,
        platform: &Platform,
        app_enclave: &Enclave,
    ) -> Result<Self, CoreError> {
        let (app_channel, store_channel) =
            authority.establish((platform, app_enclave), (platform, store.enclave()))?;
        Ok(InProcessClient { store, app_channel, store_channel })
    }

    /// Establishes a channel for a cross-platform (two-machine) deployment
    /// where the store lives on `store_platform`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Channel`] if attestation fails.
    pub fn connect_remote(
        store: Arc<ResultStore>,
        authority: &SessionAuthority,
        app_platform: &Platform,
        app_enclave: &Enclave,
        store_platform: &Platform,
    ) -> Result<Self, CoreError> {
        let (app_channel, store_channel) = authority
            .establish((app_platform, app_enclave), (store_platform, store.enclave()))?;
        Ok(InProcessClient { store, app_channel, store_channel })
    }
}

impl StoreClient for InProcessClient {
    fn roundtrip(&mut self, request: &Message) -> Result<Message, CoreError> {
        let sealed = self.app_channel.seal_message(&to_bytes(request));
        let opened = self.store_channel.open_message(&sealed)?;
        let request: Message = from_bytes(&opened)?;
        let response = self.store.handle(request);
        let sealed_response = self.store_channel.seal_message(&to_bytes(&response));
        let response_bytes = self.app_channel.open_message(&sealed_response)?;
        Ok(from_bytes(&response_bytes)?)
    }
}

/// A TCP client for a remote [`speed_store::server::StoreServer`].
#[derive(Debug)]
pub struct TcpClient {
    inner: TcpStoreClient,
}

impl TcpClient {
    /// Connects to the store server at `addr`, presenting `app_enclave`'s
    /// attestation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] on connection or attestation failure.
    pub fn connect(
        addr: std::net::SocketAddr,
        platform: &Platform,
        app_enclave: &Enclave,
        authority: &SessionAuthority,
    ) -> Result<Self, CoreError> {
        let inner = TcpStoreClient::connect(addr, platform, app_enclave, authority)?;
        Ok(TcpClient { inner })
    }
}

impl StoreClient for TcpClient {
    fn roundtrip(&mut self, request: &Message) -> Result<Message, CoreError> {
        Ok(self.inner.roundtrip(request)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_enclave::CostModel;
    use speed_store::StoreConfig;
    use speed_wire::{AppId, CompTag};

    #[test]
    fn in_process_roundtrip() {
        let platform = Platform::new(CostModel::no_sgx());
        let store =
            Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
        let authority = SessionAuthority::with_seed(3);
        let enclave = platform.create_enclave(b"app").unwrap();
        let mut client =
            InProcessClient::connect(store, &authority, &platform, &enclave).unwrap();
        let response = client
            .roundtrip(&Message::GetRequest {
                app: AppId(1),
                tag: CompTag::from_bytes([0; 32]),
            })
            .unwrap();
        assert!(matches!(response, Message::GetResponse(b) if !b.found));
    }

    #[test]
    fn cross_platform_roundtrip() {
        let app_platform = Platform::new(CostModel::no_sgx());
        let store_platform = Platform::new(CostModel::no_sgx());
        let store =
            Arc::new(ResultStore::new(&store_platform, StoreConfig::default()).unwrap());
        let authority = SessionAuthority::with_seed(4);
        let enclave = app_platform.create_enclave(b"app").unwrap();
        let mut client = InProcessClient::connect_remote(
            store,
            &authority,
            &app_platform,
            &enclave,
            &store_platform,
        )
        .unwrap();
        let response = client.roundtrip(&Message::StatsRequest).unwrap();
        assert!(matches!(response, Message::StatsResponse(_)));
    }
}
