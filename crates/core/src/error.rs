use std::error::Error;
use std::fmt;

/// Errors from the deduplication runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The described function is not present in any registered trusted
    /// library — the runtime cannot verify the application owns the code.
    FunctionNotTrusted {
        /// Library family named in the description.
        library: String,
        /// Function signature named in the description.
        signature: String,
    },
    /// Result recovery failed the Fig. 3 verification protocol: this
    /// application does not own the same `(func, m)` as the initial
    /// computation, or the stored data was corrupted.
    VerificationFailed,
    /// The store rejected or garbled a request.
    Store(speed_store::StoreError),
    /// A wire-level encoding/decoding failure.
    Wire(speed_wire::WireError),
    /// A secure-channel failure between runtime and store.
    Channel(speed_wire::ChannelError),
    /// The application's enclave could not be created or ran out of EPC.
    Enclave(speed_enclave::EnclaveError),
    /// The store replied with an unexpected message kind.
    UnexpectedResponse(String),
    /// The asynchronous PUT worker has shut down.
    AsyncPutClosed,
    /// The store could not be reached even after the resilience layer's
    /// retries/reconnects, or its circuit breaker is open. The runtime
    /// degrades gracefully on this error (local execution for GETs, replay
    /// queueing for PUTs) instead of surfacing it to the application.
    StoreUnavailable(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::FunctionNotTrusted { library, signature } => write!(
                f,
                "function `{signature}` from library `{library}` is not in any \
                 registered trusted library"
            ),
            CoreError::VerificationFailed => write!(
                f,
                "result verification failed: not the same computation, or \
                 stored data corrupted"
            ),
            CoreError::Store(e) => write!(f, "store error: {e}"),
            CoreError::Wire(e) => write!(f, "wire error: {e}"),
            CoreError::Channel(e) => write!(f, "channel error: {e}"),
            CoreError::Enclave(e) => write!(f, "enclave error: {e}"),
            CoreError::UnexpectedResponse(what) => {
                write!(f, "unexpected store response: {what}")
            }
            CoreError::AsyncPutClosed => write!(f, "asynchronous put worker closed"),
            CoreError::StoreUnavailable(why) => {
                write!(f, "store unavailable: {why}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Store(e) => Some(e),
            CoreError::Wire(e) => Some(e),
            CoreError::Channel(e) => Some(e),
            CoreError::Enclave(e) => Some(e),
            _ => None,
        }
    }
}

impl From<speed_store::StoreError> for CoreError {
    fn from(e: speed_store::StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<speed_wire::WireError> for CoreError {
    fn from(e: speed_wire::WireError) -> Self {
        CoreError::Wire(e)
    }
}

impl From<speed_wire::ChannelError> for CoreError {
    fn from(e: speed_wire::ChannelError) -> Self {
        CoreError::Channel(e)
    }
}

impl From<speed_enclave::EnclaveError> for CoreError {
    fn from(e: speed_enclave::EnclaveError) -> Self {
        CoreError::Enclave(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = CoreError::FunctionNotTrusted {
            library: "zlib".into(),
            signature: "int deflate(...)".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("zlib"));
        assert!(msg.contains("deflate"));
        assert!(!CoreError::VerificationFailed.to_string().is_empty());
    }

    #[test]
    fn conversions_preserve_source() {
        let err: CoreError = speed_wire::WireError::InvalidUtf8.into();
        assert!(err.source().is_some());
        let err: CoreError = speed_enclave::EnclaveError::UnsealFailed.into();
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
