//! Deterministic fault injection for the store path.
//!
//! [`ChaosClient`] wraps any [`StoreClient`] and injects transport faults
//! — dropped frames, delays, disconnects, corrupt frames — at rates drawn
//! from a seeded [`SystemRng`], so resilience experiments and the chaos
//! integration suite are fully reproducible. A shared [`FaultInjector`]
//! keeps one fault schedule and one set of counters across the many client
//! instances a reconnecting runtime creates.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use speed_crypto::SystemRng;
use speed_store::StoreError;
use speed_wire::Message;

use crate::client::StoreClient;
use crate::error::CoreError;

/// Per-round-trip probabilities of each fault kind. The remaining mass is
/// a fault-free round-trip. Rates are clamped to sum ≤ 1 by evaluation
/// order (drop, then delay, then disconnect, then corrupt).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRates {
    /// Request never reaches the store; the caller sees an I/O error.
    pub drop: f64,
    /// Round-trip succeeds after an added [`FaultConfig::delay`].
    pub delay: f64,
    /// The connection dies: this request and every later one on the same
    /// client instance fail until the caller reconnects.
    pub disconnect: f64,
    /// The request reaches the store (side effects apply!) but the
    /// response frame is corrupt, so the caller sees a protocol error.
    pub corrupt: f64,
}

impl FaultRates {
    /// No faults at all.
    pub const NONE: FaultRates =
        FaultRates { drop: 0.0, delay: 0.0, disconnect: 0.0, corrupt: 0.0 };

    /// Splits a total fault probability evenly across all four kinds.
    pub fn uniform(total: f64) -> Self {
        let each = (total / 4.0).clamp(0.0, 0.25);
        FaultRates { drop: each, delay: each, disconnect: each, corrupt: each }
    }

    /// The combined probability that a round-trip is disturbed.
    pub fn total(&self) -> f64 {
        self.drop + self.delay + self.disconnect + self.corrupt
    }
}

/// What the injector decided for one round-trip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Pass through untouched.
    None,
    /// Fail with an I/O error before reaching the store.
    Drop,
    /// Sleep, then pass through.
    Delay,
    /// Kill this connection permanently.
    Disconnect,
    /// Reach the store, then fail with a protocol error.
    Corrupt,
}

/// Fault schedule configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probabilities per round-trip.
    pub rates: FaultRates,
    /// Added latency for [`Fault::Delay`].
    pub delay: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { rates: FaultRates::uniform(0.2), delay: Duration::from_millis(2) }
    }
}

/// Counters of injected faults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Requests dropped before reaching the store.
    pub drops: u64,
    /// Requests delayed.
    pub delays: u64,
    /// Connections killed.
    pub disconnects: u64,
    /// Responses corrupted after the store applied the request.
    pub corruptions: u64,
    /// Requests passed through untouched.
    pub passthroughs: u64,
}

impl FaultCounts {
    /// Total faults injected (everything except passthroughs).
    pub fn total(&self) -> u64 {
        self.drops + self.delays + self.disconnects + self.corruptions
    }
}

/// A seeded, shareable source of fault decisions. Wrap it in an `Arc` and
/// hand it to every [`ChaosClient`] built by a reconnecting client factory:
/// the schedule continues across reconnects and the counters aggregate.
pub struct FaultInjector {
    config: FaultConfig,
    rng: Mutex<SystemRng>,
    enabled: AtomicBool,
    drops: AtomicU64,
    delays: AtomicU64,
    disconnects: AtomicU64,
    corruptions: AtomicU64,
    passthroughs: AtomicU64,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("config", &self.config)
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("counts", &self.counts())
            .finish()
    }
}

impl FaultInjector {
    /// A deterministic injector: the same seed yields the same fault
    /// schedule for the same sequence of round-trips.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultInjector {
            config,
            rng: Mutex::new(SystemRng::seeded(seed)),
            enabled: AtomicBool::new(true),
            drops: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            passthroughs: AtomicU64::new(0),
        }
    }

    /// Turns injection on or off (off = all round-trips pass through).
    /// Lets a test stop the storm and watch the system recover.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The injected delay duration for [`Fault::Delay`].
    pub fn delay(&self) -> Duration {
        self.config.delay
    }

    /// Decides the fault for the next round-trip and counts it.
    pub fn next_fault(&self) -> Fault {
        if !self.enabled.load(Ordering::Relaxed) {
            self.passthroughs.fetch_add(1, Ordering::Relaxed);
            return Fault::None;
        }
        let u = self.rng.lock().expect("injector rng poisoned").gen_f64();
        let rates = self.config.rates;
        let mut edge = rates.drop;
        if u < edge {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return Fault::Drop;
        }
        edge += rates.delay;
        if u < edge {
            self.delays.fetch_add(1, Ordering::Relaxed);
            return Fault::Delay;
        }
        edge += rates.disconnect;
        if u < edge {
            self.disconnects.fetch_add(1, Ordering::Relaxed);
            return Fault::Disconnect;
        }
        edge += rates.corrupt;
        if u < edge {
            self.corruptions.fetch_add(1, Ordering::Relaxed);
            return Fault::Corrupt;
        }
        self.passthroughs.fetch_add(1, Ordering::Relaxed);
        Fault::None
    }

    /// A snapshot of the counters.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            drops: self.drops.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
            passthroughs: self.passthroughs.load(Ordering::Relaxed),
        }
    }
}

/// A [`StoreClient`] wrapper injecting the faults an infrastructure can
/// actually produce. Fault semantics mirror real transports:
///
/// - [`Fault::Drop`]: the request is lost in flight — the store never sees
///   it (safe to retry blindly).
/// - [`Fault::Corrupt`]: the store *processed* the request but the reply
///   is garbage — retries must be idempotent, which GET/PUT are.
/// - [`Fault::Disconnect`]: this client instance is dead for good; only a
///   reconnect (fresh instance from the factory) recovers.
pub struct ChaosClient {
    inner: Box<dyn StoreClient>,
    injector: std::sync::Arc<FaultInjector>,
    dead: bool,
}

impl fmt::Debug for ChaosClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosClient").field("dead", &self.dead).finish_non_exhaustive()
    }
}

impl ChaosClient {
    /// Wraps `inner`, drawing fault decisions from the shared `injector`.
    pub fn new(
        inner: Box<dyn StoreClient>,
        injector: std::sync::Arc<FaultInjector>,
    ) -> Self {
        ChaosClient { inner, injector, dead: false }
    }
}

impl StoreClient for ChaosClient {
    fn roundtrip(&mut self, request: &Message) -> Result<Message, CoreError> {
        if self.dead {
            return Err(CoreError::Store(StoreError::Io(
                "chaos: connection torn down".into(),
            )));
        }
        match self.injector.next_fault() {
            Fault::None => self.inner.roundtrip(request),
            Fault::Drop => {
                Err(CoreError::Store(StoreError::Io("chaos: frame dropped".into())))
            }
            Fault::Delay => {
                std::thread::sleep(self.injector.delay());
                self.inner.roundtrip(request)
            }
            Fault::Disconnect => {
                self.dead = true;
                Err(CoreError::Store(StoreError::Io("chaos: peer disconnected".into())))
            }
            Fault::Corrupt => {
                // The request reached the store — side effects (e.g. a PUT
                // landing) happen — but the response frame is unreadable.
                let _ = self.inner.roundtrip(request);
                Err(CoreError::Store(StoreError::Protocol(
                    "chaos: corrupt response frame".into(),
                )))
            }
        }
    }
}

/// A manual, deterministic outage control for one node: killed-node and
/// partition scenarios need "node N is down *now*, up *then*", which a
/// probabilistic [`FaultInjector`] cannot express. Share one switch
/// between a node's connector (refuse to dial while down) and its
/// [`SwitchedClient`] wrappers (fail established connections while down).
#[derive(Debug, Default)]
pub struct OutageSwitch {
    down: AtomicBool,
}

impl OutageSwitch {
    /// A switch in the *up* state.
    pub fn new() -> Self {
        OutageSwitch::default()
    }

    /// Flips the node down (every round-trip and dial fails) or back up.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::Relaxed);
    }

    /// Whether the node is currently down.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Relaxed)
    }
}

/// A [`StoreClient`] wrapper that fails every round-trip while its
/// [`OutageSwitch`] is down — the deterministic "kill this node" primitive
/// used by the cluster chaos suite and the operator outage drill.
pub struct SwitchedClient {
    inner: Box<dyn StoreClient>,
    switch: std::sync::Arc<OutageSwitch>,
}

impl fmt::Debug for SwitchedClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwitchedClient")
            .field("down", &self.switch.is_down())
            .finish_non_exhaustive()
    }
}

impl SwitchedClient {
    /// Wraps `inner` under the shared outage `switch`.
    pub fn new(
        inner: Box<dyn StoreClient>,
        switch: std::sync::Arc<OutageSwitch>,
    ) -> Self {
        SwitchedClient { inner, switch }
    }
}

impl StoreClient for SwitchedClient {
    fn roundtrip(&mut self, request: &Message) -> Result<Message, CoreError> {
        if self.switch.is_down() {
            return Err(CoreError::Store(StoreError::Io("outage: node is down".into())));
        }
        self.inner.roundtrip(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_wire::{AppId, CompTag, GetResponseBody};
    use std::sync::Arc;

    #[derive(Debug)]
    struct AlwaysOk;

    impl StoreClient for AlwaysOk {
        fn roundtrip(&mut self, _request: &Message) -> Result<Message, CoreError> {
            Ok(Message::GetResponse(GetResponseBody { found: false, record: None }))
        }
    }

    fn request() -> Message {
        Message::GetRequest { app: AppId(1), tag: CompTag::from_bytes([1; 32]) }
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let config =
            FaultConfig { rates: FaultRates::uniform(0.4), delay: Duration::ZERO };
        let a = FaultInjector::new(config, 77);
        let b = FaultInjector::new(config, 77);
        let faults_a: Vec<_> = (0..200).map(|_| a.next_fault()).collect();
        let faults_b: Vec<_> = (0..200).map(|_| b.next_fault()).collect();
        assert_eq!(faults_a, faults_b);
        assert!(faults_a.iter().any(|f| *f != Fault::None));
    }

    #[test]
    fn rates_are_roughly_respected() {
        let config =
            FaultConfig { rates: FaultRates::uniform(0.4), delay: Duration::ZERO };
        let injector = FaultInjector::new(config, 3);
        for _ in 0..2000 {
            injector.next_fault();
        }
        let counts = injector.counts();
        let observed = counts.total() as f64 / 2000.0;
        assert!((observed - 0.4).abs() < 0.05, "observed fault rate {observed}");
        // All four kinds occur.
        assert!(counts.drops > 0 && counts.delays > 0);
        assert!(counts.disconnects > 0 && counts.corruptions > 0);
    }

    #[test]
    fn disabled_injector_passes_everything_through() {
        let injector = FaultInjector::new(
            FaultConfig { rates: FaultRates::uniform(1.0), delay: Duration::ZERO },
            1,
        );
        injector.set_enabled(false);
        for _ in 0..50 {
            assert_eq!(injector.next_fault(), Fault::None);
        }
        assert_eq!(injector.counts().total(), 0);
    }

    #[test]
    fn disconnect_kills_the_instance_for_good() {
        // disconnect rate 1.0: first call kills, later calls fail dead.
        let rates = FaultRates { disconnect: 1.0, ..FaultRates::NONE };
        let injector =
            Arc::new(FaultInjector::new(FaultConfig { rates, delay: Duration::ZERO }, 5));
        let mut client = ChaosClient::new(Box::new(AlwaysOk), Arc::clone(&injector));
        assert!(client.roundtrip(&request()).is_err());
        // Even with injection disabled the dead connection stays dead.
        injector.set_enabled(false);
        assert!(client.roundtrip(&request()).is_err());
        // A fresh instance (reconnect) works again.
        let mut fresh = ChaosClient::new(Box::new(AlwaysOk), injector);
        assert!(fresh.roundtrip(&request()).is_ok());
    }

    #[test]
    fn switched_client_follows_its_switch() {
        let switch = Arc::new(OutageSwitch::new());
        let mut client = SwitchedClient::new(Box::new(AlwaysOk), Arc::clone(&switch));
        assert!(client.roundtrip(&request()).is_ok());
        switch.set_down(true);
        assert!(client.roundtrip(&request()).is_err());
        switch.set_down(false);
        // Unlike a disconnect, flipping back up revives the same instance.
        assert!(client.roundtrip(&request()).is_ok());
    }

    #[test]
    fn drop_faults_surface_as_store_errors() {
        let rates = FaultRates { drop: 1.0, ..FaultRates::NONE };
        let injector =
            Arc::new(FaultInjector::new(FaultConfig { rates, delay: Duration::ZERO }, 5));
        let mut client = ChaosClient::new(Box::new(AlwaysOk), injector);
        let err = client.roundtrip(&request()).unwrap_err();
        assert!(matches!(err, CoreError::Store(StoreError::Io(_))));
    }
}
