//! Result protection: the randomized-convergent-encryption construction of
//! §III-C, plus the basic single-key scheme of §III-B.
//!
//! Encryption (Algorithm 1, lines 5–9):
//!
//! ```text
//! r  ←$ {0,1}*                  // challenge message
//! h  ← Hash(func, m, r)         // secondary key
//! k  ← AES.KeyGen(1^λ)          // fresh random result key
//! [res] ← AES.Enc(k, res)       // AES-GCM: confidentiality + integrity
//! [k]   ← k ⊕ h                 // one-time-pad wrap
//! ```
//!
//! Recovery (Algorithm 2, lines 4–6, and the Fig. 3 verification protocol):
//! an application recomputes `h' ← Hash(func, m, r)` from its *own* code and
//! input; if it does not perform the identical computation, `k' = [k] ⊕ h'`
//! is wrong and AES-GCM decryption returns `⊥`.

use speed_crypto::{AesGcm128, Key128, Nonce, SystemRng};
use speed_wire::Record;

use crate::error::CoreError;
use crate::func::FuncIdentity;
use crate::tag::secondary_key;

/// Length in bytes of the challenge message `r`.
pub const CHALLENGE_LEN: usize = 32;

/// Associated data bound into every result ciphertext, versioning the
/// scheme.
const RESULT_AAD: &[u8] = b"speed-result-v1";

/// Encrypts a freshly computed result for publication (initial computation,
/// Algorithm 1).
///
/// Returns the [`Record`] to send in the `PUT_REQUEST`.
pub fn encrypt_result(
    func: &FuncIdentity,
    input: &[u8],
    result: &[u8],
    rng: &mut SystemRng,
) -> Record {
    let challenge = rng.gen_challenge(CHALLENGE_LEN);
    let h = secondary_key(func, input, &challenge);
    let k = rng.gen_key();
    let nonce = rng.gen_nonce();
    let cipher = AesGcm128::new(&k);
    let boxed_result = cipher.seal(&nonce, RESULT_AAD, result);
    let wrapped_key = *k.xor_pad(&h).as_bytes();
    Record { challenge, wrapped_key, nonce: *nonce.as_bytes(), boxed_result }
}

/// Recovers a stored result (subsequent computation, Algorithm 2).
///
/// # Errors
///
/// Returns [`CoreError::VerificationFailed`] if this application does not
/// own the identical `(func, m)` — i.e. the recovered key fails to
/// authenticate the ciphertext — or if the record was tampered with outside
/// the enclave.
pub fn recover_result(
    func: &FuncIdentity,
    input: &[u8],
    record: &Record,
) -> Result<Vec<u8>, CoreError> {
    let h = secondary_key(func, input, &record.challenge);
    let k = Key128::from_bytes(record.wrapped_key).xor_pad(&h);
    let cipher = AesGcm128::new(&k);
    let nonce = Nonce::from_bytes(record.nonce);
    cipher
        .open(&nonce, RESULT_AAD, &record.boxed_result)
        .map_err(|_| CoreError::VerificationFailed)
}

/// Encrypts a result under classic *convergent encryption* (the original
/// deterministic MLE of Douceur et al., which RCE improves upon): the key
/// is derived directly from the computation, `k = H(func, m)`, with no
/// challenge message and no wrapped key.
///
/// Compared to the paper's RCE construction this saves one hash and the
/// key-wrap XOR, but the key is *deterministic*: anyone who can enumerate
/// candidate `(func, m)` pairs can confirm guesses offline once they hold
/// the ciphertext — exactly the predictable-message weakness §III-D's
/// brute-force discussion warns about. Provided for the scheme ablation.
pub fn encrypt_result_convergent(
    func: &FuncIdentity,
    input: &[u8],
    result: &[u8],
    rng: &mut SystemRng,
) -> Record {
    let key = convergent_key(func, input);
    let nonce = rng.gen_nonce();
    let cipher = AesGcm128::new(&key);
    let boxed_result = cipher.seal(&nonce, RESULT_AAD, result);
    Record {
        challenge: Vec::new(),
        wrapped_key: [0u8; 16],
        nonce: *nonce.as_bytes(),
        boxed_result,
    }
}

/// Recovers a result encrypted with [`encrypt_result_convergent`].
///
/// # Errors
///
/// Returns [`CoreError::VerificationFailed`] if the caller does not own
/// the identical `(func, m)` or the ciphertext was tampered with.
pub fn recover_result_convergent(
    func: &FuncIdentity,
    input: &[u8],
    record: &Record,
) -> Result<Vec<u8>, CoreError> {
    let key = convergent_key(func, input);
    let cipher = AesGcm128::new(&key);
    let nonce = Nonce::from_bytes(record.nonce);
    cipher
        .open(&nonce, RESULT_AAD, &record.boxed_result)
        .map_err(|_| CoreError::VerificationFailed)
}

fn convergent_key(func: &FuncIdentity, input: &[u8]) -> Key128 {
    let digest =
        speed_crypto::Sha256::digest_parts(&[b"convergent-key", func.as_bytes(), input]);
    Key128::from_bytes(digest.truncate16())
}

/// Encrypts a result under a fixed system-wide key (the basic design of
/// §III-B). The challenge field is unused (empty) in this mode.
pub fn encrypt_result_single_key(
    key: &Key128,
    result: &[u8],
    rng: &mut SystemRng,
) -> Record {
    let nonce = rng.gen_nonce();
    let cipher = AesGcm128::new(key);
    let boxed_result = cipher.seal(&nonce, RESULT_AAD, result);
    Record {
        challenge: Vec::new(),
        wrapped_key: [0u8; 16],
        nonce: *nonce.as_bytes(),
        boxed_result,
    }
}

/// Recovers a result encrypted under the system-wide key.
///
/// # Errors
///
/// Returns [`CoreError::VerificationFailed`] if the key is wrong or the
/// ciphertext was tampered with.
pub fn recover_result_single_key(
    key: &Key128,
    record: &Record,
) -> Result<Vec<u8>, CoreError> {
    let cipher = AesGcm128::new(key);
    let nonce = Nonce::from_bytes(record.nonce);
    cipher
        .open(&nonce, RESULT_AAD, &record.boxed_result)
        .map_err(|_| CoreError::VerificationFailed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{FuncDesc, LibraryRegistry, TrustedLibrary};

    /// Random byte string of length `0..=max`, for the seeded property
    /// loops below (deterministic replacements for proptest generators).
    fn arb_bytes(rng: &mut SystemRng, max: usize) -> Vec<u8> {
        let mut v = vec![0u8; rng.range_usize_inclusive(0, max)];
        rng.fill(&mut v);
        v
    }

    fn identity(code: &[u8]) -> FuncIdentity {
        let mut library = TrustedLibrary::new("lib", "1");
        library.register("f()", code);
        let mut registry = LibraryRegistry::new();
        registry.add(library);
        registry.resolve(&FuncDesc::new("lib", "1", "f()")).unwrap()
    }

    #[test]
    fn same_computation_recovers_result() {
        let func = identity(b"code");
        let mut rng = SystemRng::seeded(1);
        let record = encrypt_result(&func, b"input", b"the result", &mut rng);
        assert_eq!(recover_result(&func, b"input", &record).unwrap(), b"the result");
    }

    #[test]
    fn wrong_input_fails_verification() {
        let func = identity(b"code");
        let mut rng = SystemRng::seeded(1);
        let record = encrypt_result(&func, b"input", b"the result", &mut rng);
        assert!(matches!(
            recover_result(&func, b"other input", &record),
            Err(CoreError::VerificationFailed)
        ));
    }

    #[test]
    fn wrong_code_fails_verification() {
        let alice = identity(b"real code");
        let mallory = identity(b"fake code");
        let mut rng = SystemRng::seeded(1);
        let record = encrypt_result(&alice, b"input", b"secret result", &mut rng);
        assert!(matches!(
            recover_result(&mallory, b"input", &record),
            Err(CoreError::VerificationFailed)
        ));
    }

    #[test]
    fn tampered_record_fields_fail() {
        let func = identity(b"code");
        let mut rng = SystemRng::seeded(2);
        let record = encrypt_result(&func, b"m", b"res", &mut rng);

        let mut tampered = record.clone();
        tampered.boxed_result[0] ^= 1;
        assert!(recover_result(&func, b"m", &tampered).is_err());

        let mut tampered = record.clone();
        tampered.wrapped_key[0] ^= 1;
        assert!(recover_result(&func, b"m", &tampered).is_err());

        let mut tampered = record.clone();
        tampered.challenge[0] ^= 1;
        assert!(recover_result(&func, b"m", &tampered).is_err());

        let mut tampered = record;
        tampered.nonce[0] ^= 1;
        assert!(recover_result(&func, b"m", &tampered).is_err());
    }

    #[test]
    fn encryptions_are_randomized() {
        // RCE is a *randomized* MLE: same computation, different ciphertexts.
        let func = identity(b"code");
        let mut rng = SystemRng::seeded(3);
        let r1 = encrypt_result(&func, b"m", b"res", &mut rng);
        let r2 = encrypt_result(&func, b"m", b"res", &mut rng);
        assert_ne!(r1.boxed_result, r2.boxed_result);
        assert_ne!(r1.challenge, r2.challenge);
        // Both decrypt to the same result for eligible applications.
        assert_eq!(recover_result(&func, b"m", &r1).unwrap(), b"res");
        assert_eq!(recover_result(&func, b"m", &r2).unwrap(), b"res");
    }

    #[test]
    fn empty_result_roundtrips() {
        let func = identity(b"code");
        let mut rng = SystemRng::seeded(4);
        let record = encrypt_result(&func, b"m", b"", &mut rng);
        assert_eq!(recover_result(&func, b"m", &record).unwrap(), b"");
    }

    #[test]
    fn convergent_mode_roundtrips() {
        let func = identity(b"code");
        let mut rng = SystemRng::seeded(11);
        let record = encrypt_result_convergent(&func, b"m", b"res", &mut rng);
        assert_eq!(recover_result_convergent(&func, b"m", &record).unwrap(), b"res");
        assert!(recover_result_convergent(&func, b"other", &record).is_err());
        assert!(recover_result_convergent(&identity(b"bad"), b"m", &record).is_err());
    }

    #[test]
    fn convergent_key_is_deterministic_rce_key_is_not() {
        // The security-relevant distinction: CE keys repeat across
        // encryptions of the same computation; RCE keys are fresh.
        let func = identity(b"code");
        let mut rng = SystemRng::seeded(12);
        let ce1 = encrypt_result_convergent(&func, b"m", b"res", &mut rng);
        let ce2 = encrypt_result_convergent(&func, b"m", b"res", &mut rng);
        // Same key, different nonce ⇒ ciphertexts differ but an attacker
        // testing a guessed (func, m) derives the SAME key both times.
        assert_eq!(convergent_key(&func, b"m"), convergent_key(&func, b"m"));
        assert_ne!(ce1.boxed_result, ce2.boxed_result); // nonce still random

        let rce1 = encrypt_result(&func, b"m", b"res", &mut rng);
        let rce2 = encrypt_result(&func, b"m", b"res", &mut rng);
        assert_ne!(rce1.challenge, rce2.challenge);
        assert_ne!(rce1.wrapped_key, rce2.wrapped_key);
    }

    #[test]
    fn single_key_mode_roundtrips() {
        let key = Key128::from_bytes([7u8; 16]);
        let mut rng = SystemRng::seeded(5);
        let record = encrypt_result_single_key(&key, b"res", &mut rng);
        assert_eq!(recover_result_single_key(&key, &record).unwrap(), b"res");
    }

    #[test]
    fn single_key_mode_is_brittle_across_keys() {
        // The §III-B discussion: one compromised/changed key breaks all
        // sharing — demonstrated by failure under a different key.
        let mut rng = SystemRng::seeded(6);
        let record =
            encrypt_result_single_key(&Key128::from_bytes([1u8; 16]), b"res", &mut rng);
        assert!(
            recover_result_single_key(&Key128::from_bytes([2u8; 16]), &record).is_err()
        );
    }

    #[test]
    fn prop_roundtrip_arbitrary_results() {
        let func = identity(b"code");
        let mut rng = SystemRng::seeded(0x9CE1);
        for _ in 0..64 {
            let input = arb_bytes(&mut rng, 256);
            let result = arb_bytes(&mut rng, 256);
            let record = encrypt_result(&func, &input, &result, &mut rng);
            assert_eq!(recover_result(&func, &input, &record).unwrap(), result);
        }
    }

    #[test]
    fn prop_wrong_input_never_decrypts() {
        let func = identity(b"code");
        let mut rng = SystemRng::seeded(0x9CE2);
        for _ in 0..64 {
            let input = arb_bytes(&mut rng, 128);
            let mut other = arb_bytes(&mut rng, 128);
            if other == input {
                other.push(0xFF);
            }
            let result = arb_bytes(&mut rng, 128);
            let record = encrypt_result(&func, &input, &result, &mut rng);
            assert!(recover_result(&func, &other, &record).is_err());
        }
    }

    #[test]
    fn prop_ciphertext_leaks_only_length() {
        let func = identity(b"code");
        let mut rng = SystemRng::seeded(0x9CE3);
        for _ in 0..64 {
            let result = arb_bytes(&mut rng, 512);
            let record = encrypt_result(&func, b"m", &result, &mut rng);
            // GCM ciphertext length = plaintext length + 16-byte tag.
            assert_eq!(record.boxed_result.len(), result.len() + 16);
        }
    }
}
