//! Length-prefixed framing for stream transports (TCP deployments of the
//! `ResultStore`).
//!
//! A frame is a 4-byte little-endian length followed by that many payload
//! bytes. Frames are capped at [`MAX_FRAME_LEN`] to bound allocation under
//! hostile input.

use std::io::{self, Read, Write};

/// Maximum payload bytes per frame (64 MiB) — larger results should be
/// chunked by the application.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Writes one frame to `writer`.
///
/// A mutable reference to any `Write` works as well (`&mut stream`).
///
/// # Errors
///
/// Returns an I/O error from the underlying writer, or
/// [`io::ErrorKind::InvalidInput`] if `payload` exceeds [`MAX_FRAME_LEN`].
pub fn write_frame<W: Write>(mut writer: W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds limit", payload.len()),
        ));
    }
    let len = payload.len() as u32;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame from `reader`.
///
/// # Errors
///
/// Returns an I/O error on stream failure, [`io::ErrorKind::UnexpectedEof`]
/// on truncation, or [`io::ErrorKind::InvalidData`] if the declared length
/// exceeds [`MAX_FRAME_LEN`].
pub fn read_frame<R: Read>(mut reader: R) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds limit"),
        ));
    }
    // Grow in bounded chunks instead of trusting the header with one big
    // allocation: a hostile 4-byte prefix declaring MAX_FRAME_LEN would
    // otherwise cost 64 MiB before the stream proves it has the bytes.
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK_LEN));
    let mut chunk = [0u8; READ_CHUNK_LEN];
    let mut remaining = len;
    while remaining > 0 {
        let want = remaining.min(READ_CHUNK_LEN);
        reader.read_exact(&mut chunk[..want])?;
        payload.extend_from_slice(&chunk[..want]);
        remaining -= want;
    }
    Ok(payload)
}

/// Chunk size for incremental frame reads: allocation grows only as fast as
/// the peer actually supplies bytes.
const READ_CHUNK_LEN: usize = 64 * 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_single_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"three").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"one");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"three");
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversize_declared_length_rejected() {
        let mut buf = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        let err = read_frame(Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn multi_chunk_payload_roundtrips() {
        let payload: Vec<u8> =
            (0..READ_CHUNK_LEN * 2 + 17).map(|i| (i % 251) as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert_eq!(read_frame(Cursor::new(buf)).unwrap(), payload);
    }

    #[test]
    fn huge_declared_length_with_no_payload_is_eof_not_alloc() {
        // Header honestly within the cap, but the stream ends immediately:
        // the incremental reader must fail with EOF after at most one chunk
        // rather than allocating the declared size up front.
        let buf = (MAX_FRAME_LEN as u32).to_le_bytes().to_vec();
        let err = read_frame(Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversize_payload_rejected_on_write() {
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        let err = write_frame(Vec::new(), &huge).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
