//! Length-prefixed framing for stream transports (TCP deployments of the
//! `ResultStore`).
//!
//! A frame is a 4-byte little-endian length followed by that many payload
//! bytes. Frames are capped at [`MAX_FRAME_LEN`] to bound allocation under
//! hostile input.

// hot-path: deny-clone

use std::io::{self, Read, Write};

/// Maximum payload bytes per frame (64 MiB) — larger results should be
/// chunked by the application.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Writes one frame to `writer`.
///
/// A mutable reference to any `Write` works as well (`&mut stream`).
///
/// # Errors
///
/// Returns an I/O error from the underlying writer, or
/// [`io::ErrorKind::InvalidInput`] if `payload` exceeds [`MAX_FRAME_LEN`].
pub fn write_frame<W: Write>(mut writer: W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds limit", payload.len()),
        ));
    }
    let len = payload.len() as u32;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Writes one frame whose payload is the concatenation of `parts`, without
/// building an intermediate contiguous buffer.
///
/// This is the vectored sibling of [`write_frame`] for callers that hold a
/// response as header + body slices: the length prefix covers the summed
/// part lengths and each part is streamed in order.
///
/// # Errors
///
/// Returns an I/O error from the underlying writer, or
/// [`io::ErrorKind::InvalidInput`] if the parts sum to more than
/// [`MAX_FRAME_LEN`].
pub fn write_frame_vectored<W: Write>(mut writer: W, parts: &[&[u8]]) -> io::Result<()> {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    if total > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {total} bytes exceeds limit"),
        ));
    }
    writer.write_all(&(total as u32).to_le_bytes())?;
    for part in parts {
        writer.write_all(part)?;
    }
    writer.flush()
}

/// Reads one frame from `reader`.
///
/// # Errors
///
/// Returns an I/O error on stream failure, [`io::ErrorKind::UnexpectedEof`]
/// on truncation, or [`io::ErrorKind::InvalidData`] if the declared length
/// exceeds [`MAX_FRAME_LEN`].
pub fn read_frame<R: Read>(mut reader: R) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds limit"),
        ));
    }
    // Grow in bounded chunks instead of trusting the header with one big
    // allocation: a hostile 4-byte prefix declaring MAX_FRAME_LEN would
    // otherwise cost 64 MiB before the stream proves it has the bytes.
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK_LEN));
    let mut chunk = [0u8; READ_CHUNK_LEN];
    let mut remaining = len;
    while remaining > 0 {
        let want = remaining.min(READ_CHUNK_LEN);
        reader.read_exact(&mut chunk[..want])?;
        payload.extend_from_slice(&chunk[..want]);
        remaining -= want;
    }
    Ok(payload)
}

/// Chunk size for incremental frame reads: allocation grows only as fast as
/// the peer actually supplies bytes.
const READ_CHUNK_LEN: usize = 64 * 1024;

/// Outcome of one [`FrameReader::poll`] call against a non-blocking stream.
#[derive(Debug)]
pub enum FrameProgress {
    /// A complete frame payload was assembled.
    Frame(Vec<u8>),
    /// The stream has no more bytes right now (`WouldBlock`); poll again
    /// when the socket is readable.
    Pending,
    /// The peer closed the stream cleanly on a frame boundary.
    Closed,
}

/// Incremental frame reader for non-blocking streams.
///
/// An event-loop server cannot use [`read_frame`] — it blocks mid-frame.
/// `FrameReader` holds the partial header/payload between readiness events
/// and hands back a [`FrameProgress::Frame`] only once all declared bytes
/// have arrived. One reader serves one connection for its lifetime; call
/// [`poll`](FrameReader::poll) in a loop on each readable event until it
/// returns [`FrameProgress::Pending`].
#[derive(Debug, Default)]
pub struct FrameReader {
    header: [u8; 4],
    header_filled: usize,
    /// Declared payload length once the header is complete.
    want: Option<usize>,
    payload: Vec<u8>,
}

impl FrameReader {
    /// A reader with no partial frame buffered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a frame is partially read — the caller should arm a
    /// per-frame deadline while this is true, so a stalled peer cannot
    /// hold a connection slot forever.
    pub fn mid_frame(&self) -> bool {
        self.header_filled > 0 || self.want.is_some()
    }

    /// Advances the frame state machine with whatever `reader` can supply
    /// without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] if the declared length
    /// exceeds [`MAX_FRAME_LEN`], [`io::ErrorKind::UnexpectedEof`] if the
    /// peer closes mid-frame, or any other I/O error from the stream.
    pub fn poll<R: Read>(&mut self, reader: &mut R) -> io::Result<FrameProgress> {
        // Phase 1: accumulate the 4-byte length header.
        while self.want.is_none() {
            match reader.read(&mut self.header[self.header_filled..]) {
                Ok(0) => {
                    return if self.header_filled == 0 {
                        Ok(FrameProgress::Closed)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "peer closed mid-header",
                        ))
                    };
                }
                Ok(n) => {
                    self.header_filled += n;
                    if self.header_filled == 4 {
                        let len = u32::from_le_bytes(self.header) as usize;
                        if len > MAX_FRAME_LEN {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("declared frame length {len} exceeds limit"),
                            ));
                        }
                        self.want = Some(len);
                        // Bounded first reservation — growth tracks the
                        // bytes the peer actually delivers.
                        self.payload = Vec::with_capacity(len.min(READ_CHUNK_LEN));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(FrameProgress::Pending)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }

        // Phase 2: accumulate the payload in bounded chunks.
        let want = self.want.unwrap_or(0);
        while self.payload.len() < want {
            let remaining = want - self.payload.len();
            let mut chunk = [0u8; READ_CHUNK_LEN];
            let take = remaining.min(READ_CHUNK_LEN);
            match reader.read(&mut chunk[..take]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-payload",
                    ))
                }
                Ok(n) => self.payload.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(FrameProgress::Pending)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }

        self.header_filled = 0;
        self.want = None;
        Ok(FrameProgress::Frame(std::mem::take(&mut self.payload)))
    }
}

/// Buffered frame writer for non-blocking streams.
///
/// Frames are queued whole ([`queue`](FrameWriter::queue)) and drained with
/// [`flush`](FrameWriter::flush) as the socket accepts bytes; a short write
/// leaves the tail buffered for the next writable event instead of
/// blocking the event loop.
#[derive(Debug, Default)]
pub struct FrameWriter {
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the stream.
    sent: usize,
}

impl FrameWriter {
    /// A writer with nothing buffered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether buffered bytes are still waiting for a writable socket —
    /// the caller should poll for write readiness while this is true.
    pub fn has_pending(&self) -> bool {
        self.sent < self.buf.len()
    }

    /// Queues one length-prefixed frame behind any pending bytes.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] if `payload` exceeds
    /// [`MAX_FRAME_LEN`].
    pub fn queue(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {} bytes exceeds limit", payload.len()),
            ));
        }
        // Compact lazily: reclaim sent bytes before appending more.
        if self.sent > 0 {
            self.buf.drain(..self.sent);
            self.sent = 0;
        }
        self.buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(payload);
        Ok(())
    }

    /// Queues one frame whose payload is the concatenation of `parts` —
    /// vectored assembly straight into the send buffer, with no intermediate
    /// payload `Vec`.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] if the parts sum to more than
    /// [`MAX_FRAME_LEN`]; nothing is queued in that case.
    pub fn queue_vectored(&mut self, parts: &[&[u8]]) -> io::Result<()> {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        if total > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {total} bytes exceeds limit"),
            ));
        }
        if self.sent > 0 {
            self.buf.drain(..self.sent);
            self.sent = 0;
        }
        self.buf.reserve(4 + total);
        self.buf.extend_from_slice(&(total as u32).to_le_bytes());
        for part in parts {
            self.buf.extend_from_slice(part);
        }
        Ok(())
    }

    /// Writes as much buffered data as the stream accepts. Returns `true`
    /// once the buffer is fully drained.
    ///
    /// # Errors
    ///
    /// Propagates stream errors other than `WouldBlock`/`Interrupted`.
    pub fn flush<W: Write>(&mut self, writer: &mut W) -> io::Result<bool> {
        while self.sent < self.buf.len() {
            match writer.write(&self.buf[self.sent..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "stream accepted zero bytes",
                    ))
                }
                Ok(n) => self.sent += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.sent = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_single_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"three").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"one");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"three");
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversize_declared_length_rejected() {
        let mut buf = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        let err = read_frame(Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn multi_chunk_payload_roundtrips() {
        let payload: Vec<u8> =
            (0..READ_CHUNK_LEN * 2 + 17).map(|i| (i % 251) as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert_eq!(read_frame(Cursor::new(buf)).unwrap(), payload);
    }

    #[test]
    fn huge_declared_length_with_no_payload_is_eof_not_alloc() {
        // Header honestly within the cap, but the stream ends immediately:
        // the incremental reader must fail with EOF after at most one chunk
        // rather than allocating the declared size up front.
        let buf = (MAX_FRAME_LEN as u32).to_le_bytes().to_vec();
        let err = read_frame(Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversize_payload_rejected_on_write() {
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        let err = write_frame(Vec::new(), &huge).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    /// A `Read` that serves scripted steps: `Some(bytes)` delivers bytes,
    /// `None` returns `WouldBlock`; after the script, EOF.
    struct Scripted {
        steps: std::collections::VecDeque<Option<Vec<u8>>>,
    }

    impl Scripted {
        fn new(steps: Vec<Option<&[u8]>>) -> Self {
            Scripted { steps: steps.into_iter().map(|s| s.map(|b| b.to_vec())).collect() }
        }
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.steps.pop_front() {
                Some(Some(bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    if n < bytes.len() {
                        self.steps.push_front(Some(bytes[n..].to_vec()));
                    }
                    Ok(n)
                }
                Some(None) => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                None => Ok(0),
            }
        }
    }

    #[test]
    fn frame_reader_reassembles_across_would_blocks() {
        let mut framed = Vec::new();
        write_frame(&mut framed, b"split me").unwrap();
        // One byte of header, stall, rest of header, stall, payload split.
        let mut stream = Scripted::new(vec![
            Some(&framed[..1]),
            None,
            Some(&framed[1..4]),
            None,
            Some(&framed[4..7]),
            None,
            Some(&framed[7..]),
        ]);
        let mut reader = FrameReader::new();
        assert!(matches!(reader.poll(&mut stream).unwrap(), FrameProgress::Pending));
        assert!(reader.mid_frame(), "partial header must arm the frame deadline");
        assert!(matches!(reader.poll(&mut stream).unwrap(), FrameProgress::Pending));
        assert!(matches!(reader.poll(&mut stream).unwrap(), FrameProgress::Pending));
        match reader.poll(&mut stream).unwrap() {
            FrameProgress::Frame(payload) => assert_eq!(payload, b"split me"),
            other => panic!("expected a frame, got {other:?}"),
        }
        assert!(!reader.mid_frame());
        assert!(matches!(reader.poll(&mut stream).unwrap(), FrameProgress::Closed));
    }

    #[test]
    fn frame_reader_yields_back_to_back_frames() {
        let mut framed = Vec::new();
        write_frame(&mut framed, b"one").unwrap();
        write_frame(&mut framed, b"two").unwrap();
        let mut stream = Scripted::new(vec![Some(&framed[..])]);
        let mut reader = FrameReader::new();
        match reader.poll(&mut stream).unwrap() {
            FrameProgress::Frame(payload) => assert_eq!(payload, b"one"),
            other => panic!("expected first frame, got {other:?}"),
        }
        match reader.poll(&mut stream).unwrap() {
            FrameProgress::Frame(payload) => assert_eq!(payload, b"two"),
            other => panic!("expected second frame, got {other:?}"),
        }
    }

    #[test]
    fn frame_reader_rejects_oversized_and_truncated_frames() {
        let oversize = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
        let mut reader = FrameReader::new();
        let err = reader.poll(&mut Scripted::new(vec![Some(&oversize)])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut framed = Vec::new();
        write_frame(&mut framed, b"cut short").unwrap();
        framed.truncate(framed.len() - 3);
        let mut reader = FrameReader::new();
        let err = reader.poll(&mut Scripted::new(vec![Some(&framed)])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let mut reader = FrameReader::new();
        let err = reader.poll(&mut Scripted::new(vec![Some(&[0u8; 2])])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "mid-header close");
    }

    /// A `Write` accepting at most `quota` bytes per call, `WouldBlock`
    /// every other call.
    struct Dribble {
        out: Vec<u8>,
        quota: usize,
        block_next: bool,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if std::mem::replace(&mut self.block_next, true) {
                self.block_next = false;
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            let n = buf.len().min(self.quota);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frame_writer_drains_across_partial_writes() {
        let mut writer = FrameWriter::new();
        writer.queue(b"first frame").unwrap();
        writer.queue(b"second").unwrap();
        let mut sink = Dribble { out: Vec::new(), quota: 5, block_next: false };
        let mut rounds = 0;
        while !writer.flush(&mut sink).unwrap() {
            assert!(writer.has_pending());
            rounds += 1;
            assert!(rounds < 100, "writer must make progress");
        }
        assert!(!writer.has_pending());
        let mut cursor = Cursor::new(sink.out);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"first frame");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"second");
    }

    #[test]
    fn frame_writer_rejects_oversize_payload() {
        let mut writer = FrameWriter::new();
        let err = writer.queue(&vec![0u8; MAX_FRAME_LEN + 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(!writer.has_pending());
    }

    #[test]
    fn vectored_write_matches_concatenated_write() {
        let parts: [&[u8]; 3] = [b"head", b"", b"tail bytes"];
        let mut flat = Vec::new();
        write_frame(&mut flat, b"headtail bytes").unwrap();
        let mut vectored = Vec::new();
        write_frame_vectored(&mut vectored, &parts).unwrap();
        assert_eq!(vectored, flat);
        assert_eq!(read_frame(Cursor::new(vectored)).unwrap(), b"headtail bytes");
    }

    #[test]
    fn queue_vectored_matches_queue() {
        let mut a = FrameWriter::new();
        a.queue(b"headtail").unwrap();
        let mut b = FrameWriter::new();
        b.queue_vectored(&[b"head", b"tail"]).unwrap();
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        assert!(a.flush(&mut out_a).unwrap());
        assert!(b.flush(&mut out_b).unwrap());
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn queue_vectored_rejects_oversize_sum() {
        let big = vec![0u8; MAX_FRAME_LEN];
        let mut writer = FrameWriter::new();
        let err = writer.queue_vectored(&[&big, b"x"]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(!writer.has_pending());
    }

    #[test]
    fn vectored_write_rejects_oversize_sum() {
        let big = vec![0u8; MAX_FRAME_LEN];
        let err = write_frame_vectored(Vec::new(), &[&big, b"x"]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
