//! Protocol messages between `DedupRuntime` and `ResultStore` (§IV-B).

use crate::codec::{Reader, WireDecode, WireEncode, WireError, Writer};
use crate::filter::FilterBody;

/// Length in bytes of a computation tag (SHA-256 output).
pub const COMP_TAG_LEN: usize = 32;

/// The tag `t ← Hash(func, m)` identifying a computation (Algorithm 1,
/// line 1). Two computations are duplicates iff their tags are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompTag([u8; COMP_TAG_LEN]);

impl CompTag {
    /// Wraps raw tag bytes.
    pub fn from_bytes(bytes: [u8; COMP_TAG_LEN]) -> Self {
        CompTag(bytes)
    }

    /// Returns the raw tag bytes.
    pub fn as_bytes(&self) -> &[u8; COMP_TAG_LEN] {
        &self.0
    }

    /// Hex prefix for logging (first 8 bytes).
    pub fn short_hex(&self) -> String {
        self.0[..8].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl std::fmt::Debug for CompTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CompTag({}…)", self.short_hex())
    }
}

impl WireEncode for CompTag {
    fn encode(&self, writer: &mut Writer) {
        self.0.encode(writer);
    }
}

impl WireDecode for CompTag {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CompTag(<[u8; COMP_TAG_LEN]>::decode(reader)?))
    }
}

/// Identity of an application instance, used for quota accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u64);

impl WireEncode for AppId {
    fn encode(&self, writer: &mut Writer) {
        self.0.encode(writer);
    }
}

impl WireDecode for AppId {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AppId(u64::decode(reader)?))
    }
}

/// A stored dedup record: everything a subsequent computation needs to
/// recover the result (Algorithm 2's `(r, [res], [k])`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// The RCE challenge message `r` picked by the initial computation.
    pub challenge: Vec<u8>,
    /// The wrapped result-encryption key `[k] = k ⊕ h`.
    pub wrapped_key: [u8; 16],
    /// GCM nonce used for the result ciphertext.
    pub nonce: [u8; 12],
    /// The result ciphertext `[res]` (payload plus appended GCM tag).
    pub boxed_result: Vec<u8>,
}

impl Record {
    /// Approximate wire size in bytes, used for quota accounting and
    /// boundary-copy cost modelling.
    pub fn wire_size(&self) -> usize {
        4 + self.challenge.len() + 16 + 12 + 4 + self.boxed_result.len()
    }
}

impl WireEncode for Record {
    fn encode(&self, writer: &mut Writer) {
        self.challenge.encode(writer);
        self.wrapped_key.encode(writer);
        self.nonce.encode(writer);
        self.boxed_result.encode(writer);
    }
}

impl WireDecode for Record {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Record {
            challenge: Vec::<u8>::decode(reader)?,
            wrapped_key: <[u8; 16]>::decode(reader)?,
            nonce: <[u8; 12]>::decode(reader)?,
            boxed_result: Vec::<u8>::decode(reader)?,
        })
    }
}

/// Body of a `GET_RESPONSE`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GetResponseBody {
    /// Whether the computation had been stored (`true` in Algorithm 2
    /// line 3, `false` in Algorithm 1 line 3).
    pub found: bool,
    /// The record, present iff `found`.
    pub record: Option<Record>,
}

/// Body of a `PUT_RESPONSE`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PutResponseBody {
    /// Whether the store accepted the record.
    pub accepted: bool,
    /// Human-readable reason when rejected (e.g. quota exceeded).
    pub reason: Option<String>,
}

/// Store-side statistics reported to monitoring clients.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsBody {
    /// Number of entries in the metadata dictionary.
    pub entries: u64,
    /// Total GET requests served.
    pub gets: u64,
    /// GETs that found a record.
    pub hits: u64,
    /// Total PUT requests served.
    pub puts: u64,
    /// PUTs rejected (quota, duplicate race, eviction pressure).
    pub rejected_puts: u64,
    /// Bytes of result ciphertext held outside the enclave.
    pub stored_bytes: u64,
    /// LRU evictions across all shards.
    pub evictions: u64,
    /// Per-shard counters, indexed by shard id (empty on old servers).
    pub shards: Vec<ShardStatsBody>,
}

/// Counters for one store shard (lock partition of the metadata dict).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStatsBody {
    /// Entries held by this shard's dictionary.
    pub entries: u64,
    /// Ciphertext bytes referenced by this shard's entries.
    pub stored_bytes: u64,
    /// LRU evictions performed by this shard.
    pub evictions: u64,
    /// Lock acquisitions that found the shard lock already held.
    pub lock_contention: u64,
    /// Nanoseconds spent holding this shard's dictionary lock (the shard's
    /// serial service time; drives the concurrency model in `shard_bench`).
    pub busy_ns: u64,
}

impl WireEncode for ShardStatsBody {
    fn encode(&self, writer: &mut Writer) {
        self.entries.encode(writer);
        self.stored_bytes.encode(writer);
        self.evictions.encode(writer);
        self.lock_contention.encode(writer);
        self.busy_ns.encode(writer);
    }
}

impl WireDecode for ShardStatsBody {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ShardStatsBody {
            entries: u64::decode(reader)?,
            stored_bytes: u64::decode(reader)?,
            evictions: u64::decode(reader)?,
            lock_contention: u64::decode(reader)?,
            busy_ns: u64::decode(reader)?,
        })
    }
}

/// Rendering requested by a [`Message::MetricsRequest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text exposition format (version 0.0.4).
    Prometheus,
    /// One JSON object per metric, one per line.
    Jsonl,
}

impl WireEncode for MetricsFormat {
    fn encode(&self, writer: &mut Writer) {
        let code: u8 = match self {
            MetricsFormat::Prometheus => 0,
            MetricsFormat::Jsonl => 1,
        };
        code.encode(writer);
    }
}

impl WireDecode for MetricsFormat {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(reader)? {
            0 => Ok(MetricsFormat::Prometheus),
            1 => Ok(MetricsFormat::Jsonl),
            other => Err(WireError::InvalidTag(other)),
        }
    }
}

/// One entry in a master-store synchronization batch (§IV-B Remark).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyncEntry {
    /// The computation tag.
    pub tag: CompTag,
    /// The stored record.
    pub record: Record,
    /// How many times this entry has been hit (popularity for sync
    /// prioritization).
    pub hits: u64,
}

impl WireEncode for SyncEntry {
    fn encode(&self, writer: &mut Writer) {
        self.tag.encode(writer);
        self.record.encode(writer);
        self.hits.encode(writer);
    }
}

impl WireDecode for SyncEntry {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SyncEntry {
            tag: CompTag::decode(reader)?,
            record: Record::decode(reader)?,
            hits: u64::decode(reader)?,
        })
    }
}

/// One member of a cluster ring announced in a [`Message::RingResponse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingNodeBody {
    /// Stable numeric node identity (survives address changes).
    pub id: u32,
    /// Dial address of the node's store server (`host:port`), empty for
    /// in-process nodes.
    pub addr: String,
    /// Relative ring weight; a node with weight 2 owns roughly twice the
    /// keyspace of a weight-1 node. Zero-weight nodes are ignored.
    pub weight: u32,
}

impl WireEncode for RingNodeBody {
    fn encode(&self, writer: &mut Writer) {
        self.id.encode(writer);
        self.addr.encode(writer);
        self.weight.encode(writer);
    }
}

impl WireDecode for RingNodeBody {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RingNodeBody {
            id: u32::decode(reader)?,
            addr: String::decode(reader)?,
            weight: u32::decode(reader)?,
        })
    }
}

/// Body of a [`Message::RingResponse`]: one versioned view of the cluster
/// membership. Clients rebuild their consistent-hash ring from this; a
/// higher `version` always supersedes a lower one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RingBody {
    /// Monotonic topology version; bumped on every membership change.
    pub version: u64,
    /// The member nodes, in no particular order.
    pub nodes: Vec<RingNodeBody>,
}

impl WireEncode for RingBody {
    fn encode(&self, writer: &mut Writer) {
        self.version.encode(writer);
        encode_seq(&self.nodes, writer);
    }
}

impl WireDecode for RingBody {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RingBody { version: u64::decode(reader)?, nodes: decode_seq(reader)? })
    }
}

/// One operation inside a [`Message::BatchRequest`].
///
/// A batch carries N independent GET/PUT operations in one envelope so the
/// store can serve them with a single enclave entry and the client pays a
/// single network roundtrip — the switchless-IO observation applied to the
/// dedup data path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchItem {
    /// Duplicate check for one tag.
    Get {
        /// The computation tag.
        tag: CompTag,
    },
    /// Duplicate check for one tag, carrying its cheap 64-bit prefilter
    /// tag so the store can answer a definite miss straight from the
    /// shard's negative filter — without touching the shard's dictionary
    /// lock inside the batch ECALL. Semantically identical to
    /// [`BatchItem::Get`]; the prefilter is purely an accelerator.
    GetPrefiltered {
        /// The computation tag.
        tag: CompTag,
        /// The cheap prefilter tag of the same computation.
        prefilter: u64,
    },
    /// Publish one freshly computed record.
    Put {
        /// The computation tag.
        tag: CompTag,
        /// The encrypted record.
        record: Record,
    },
    /// Publish one freshly computed record together with its 64-bit
    /// prefilter tag, so the store can keep its negative-lookup filters
    /// complete (see [`crate::NegativeFilter`]).
    PutPrefiltered {
        /// The computation tag.
        tag: CompTag,
        /// The cheap prefilter tag of the same computation.
        prefilter: u64,
        /// The encrypted record.
        record: Record,
    },
}

impl BatchItem {
    /// Approximate wire size in bytes, used for boundary-copy accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            BatchItem::Get { .. } => 1 + COMP_TAG_LEN,
            BatchItem::GetPrefiltered { .. } => 1 + COMP_TAG_LEN + 8,
            BatchItem::Put { record, .. } => 1 + COMP_TAG_LEN + record.wire_size(),
            BatchItem::PutPrefiltered { record, .. } => {
                1 + COMP_TAG_LEN + 8 + record.wire_size()
            }
        }
    }
}

const BATCH_ITEM_GET: u8 = 0;
const BATCH_ITEM_PUT: u8 = 1;
const BATCH_ITEM_PUT_PREFILTERED: u8 = 2;
const BATCH_ITEM_GET_PREFILTERED: u8 = 3;

impl WireEncode for BatchItem {
    fn encode(&self, writer: &mut Writer) {
        match self {
            BatchItem::Get { tag } => {
                BATCH_ITEM_GET.encode(writer);
                tag.encode(writer);
            }
            BatchItem::GetPrefiltered { tag, prefilter } => {
                BATCH_ITEM_GET_PREFILTERED.encode(writer);
                tag.encode(writer);
                prefilter.encode(writer);
            }
            BatchItem::Put { tag, record } => {
                BATCH_ITEM_PUT.encode(writer);
                tag.encode(writer);
                record.encode(writer);
            }
            BatchItem::PutPrefiltered { tag, prefilter, record } => {
                BATCH_ITEM_PUT_PREFILTERED.encode(writer);
                tag.encode(writer);
                prefilter.encode(writer);
                record.encode(writer);
            }
        }
    }
}

impl WireDecode for BatchItem {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(reader)? {
            BATCH_ITEM_GET => Ok(BatchItem::Get { tag: CompTag::decode(reader)? }),
            BATCH_ITEM_GET_PREFILTERED => Ok(BatchItem::GetPrefiltered {
                tag: CompTag::decode(reader)?,
                prefilter: u64::decode(reader)?,
            }),
            BATCH_ITEM_PUT => Ok(BatchItem::Put {
                tag: CompTag::decode(reader)?,
                record: Record::decode(reader)?,
            }),
            BATCH_ITEM_PUT_PREFILTERED => Ok(BatchItem::PutPrefiltered {
                tag: CompTag::decode(reader)?,
                prefilter: u64::decode(reader)?,
                record: Record::decode(reader)?,
            }),
            other => Err(WireError::InvalidTag(other)),
        }
    }
}

/// Per-item status code in a [`Message::BatchResponse`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchStatus {
    /// GET: the record was found and is attached.
    Found,
    /// GET: no record under this tag.
    NotFound,
    /// PUT: the record was accepted (or an identical entry already existed).
    Accepted,
    /// PUT: the record was rejected (quota, enclave memory, …); see
    /// [`BatchItemResult::reason`].
    Rejected,
}

impl WireEncode for BatchStatus {
    fn encode(&self, writer: &mut Writer) {
        let code: u8 = match self {
            BatchStatus::Found => 0,
            BatchStatus::NotFound => 1,
            BatchStatus::Accepted => 2,
            BatchStatus::Rejected => 3,
        };
        code.encode(writer);
    }
}

impl WireDecode for BatchStatus {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(reader)? {
            0 => Ok(BatchStatus::Found),
            1 => Ok(BatchStatus::NotFound),
            2 => Ok(BatchStatus::Accepted),
            3 => Ok(BatchStatus::Rejected),
            other => Err(WireError::InvalidTag(other)),
        }
    }
}

/// The outcome of one [`BatchItem`], in request order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchItemResult {
    /// Per-item status code.
    pub status: BatchStatus,
    /// The record, present iff `status` is [`BatchStatus::Found`].
    pub record: Option<Record>,
    /// Human-readable reason, present when `status` is
    /// [`BatchStatus::Rejected`].
    pub reason: Option<String>,
}

impl BatchItemResult {
    /// A GET hit carrying its record.
    pub fn found(record: Record) -> Self {
        BatchItemResult { status: BatchStatus::Found, record: Some(record), reason: None }
    }

    /// A GET miss.
    pub fn not_found() -> Self {
        BatchItemResult { status: BatchStatus::NotFound, record: None, reason: None }
    }

    /// An accepted PUT.
    pub fn accepted() -> Self {
        BatchItemResult { status: BatchStatus::Accepted, record: None, reason: None }
    }

    /// A rejected PUT with its reason.
    pub fn rejected(reason: impl Into<String>) -> Self {
        BatchItemResult {
            status: BatchStatus::Rejected,
            record: None,
            reason: Some(reason.into()),
        }
    }
}

impl WireEncode for BatchItemResult {
    fn encode(&self, writer: &mut Writer) {
        self.status.encode(writer);
        self.record.encode(writer);
        self.reason.encode(writer);
    }
}

impl WireDecode for BatchItemResult {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BatchItemResult {
            status: BatchStatus::decode(reader)?,
            record: Option::<Record>::decode(reader)?,
            reason: Option::<String>::decode(reader)?,
        })
    }
}

/// The protocol envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Message {
    /// Duplicate check: "has this computation been done before?"
    GetRequest {
        /// Requesting application.
        app: AppId,
        /// The computation tag.
        tag: CompTag,
    },
    /// Response to [`Message::GetRequest`].
    GetResponse(GetResponseBody),
    /// Publish a freshly computed, encrypted result.
    PutRequest {
        /// Publishing application.
        app: AppId,
        /// The computation tag.
        tag: CompTag,
        /// The encrypted record.
        record: Record,
    },
    /// Response to [`Message::PutRequest`].
    PutResponse(PutResponseBody),
    /// Request store statistics.
    StatsRequest,
    /// Response to [`Message::StatsRequest`].
    StatsResponse(StatsBody),
    /// Master-store sync: request entries with at least `min_hits`.
    SyncPull {
        /// Popularity threshold.
        min_hits: u64,
    },
    /// Master-store sync: a batch of entries.
    SyncBatch(Vec<SyncEntry>),
    /// Protocol-level error (unknown message, malformed body).
    Error(String),
    /// N GET/PUT operations served in one roundtrip and one enclave entry.
    BatchRequest {
        /// Requesting application.
        app: AppId,
        /// The operations, answered in order.
        items: Vec<BatchItem>,
    },
    /// Response to [`Message::BatchRequest`]: one result per item, in
    /// request order.
    BatchResponse(Vec<BatchItemResult>),
    /// Request the server's telemetry registry rendered in `format`.
    MetricsRequest {
        /// Which textual rendering to return.
        format: MetricsFormat,
    },
    /// Response to [`Message::MetricsRequest`]: the rendered registry.
    MetricsResponse(String),
    /// Request a snapshot of the store's per-shard negative-lookup filters.
    FilterRequest,
    /// Response to [`Message::FilterRequest`].
    FilterResponse(FilterBody),
    /// Like [`Message::PutRequest`], but also carries the computation's
    /// 64-bit prefilter tag so the store's negative filters stay complete.
    PutPrefiltered {
        /// Publishing application.
        app: AppId,
        /// The computation tag.
        tag: CompTag,
        /// The cheap prefilter tag of the same computation.
        prefilter: u64,
        /// The encrypted record.
        record: Record,
    },
    /// Request the server's current view of the cluster membership ring.
    RingRequest,
    /// Response to [`Message::RingRequest`] (also pushed by operators via
    /// `speedctl` when reconfiguring a cluster).
    RingResponse(RingBody),
}

const TAG_GET_REQUEST: u8 = 1;
const TAG_GET_RESPONSE: u8 = 2;
const TAG_PUT_REQUEST: u8 = 3;
const TAG_PUT_RESPONSE: u8 = 4;
const TAG_STATS_REQUEST: u8 = 5;
const TAG_STATS_RESPONSE: u8 = 6;
const TAG_SYNC_PULL: u8 = 7;
const TAG_SYNC_BATCH: u8 = 8;
const TAG_ERROR: u8 = 9;
const TAG_BATCH_REQUEST: u8 = 10;
const TAG_BATCH_RESPONSE: u8 = 11;
const TAG_METRICS_REQUEST: u8 = 12;
const TAG_METRICS_RESPONSE: u8 = 13;
const TAG_FILTER_REQUEST: u8 = 14;
const TAG_FILTER_RESPONSE: u8 = 15;
const TAG_PUT_PREFILTERED: u8 = 16;
const TAG_RING_REQUEST: u8 = 17;
const TAG_RING_RESPONSE: u8 = 18;

/// Encodes a `u32` length prefix followed by each element.
fn encode_seq<T: WireEncode>(items: &[T], writer: &mut Writer) {
    let len = u32::try_from(items.len()).expect("batch too large");
    len.encode(writer);
    for item in items {
        item.encode(writer);
    }
}

/// Decodes a `u32`-prefixed sequence with a defensive preallocation bound.
fn decode_seq<T: WireDecode>(reader: &mut Reader<'_>) -> Result<Vec<T>, WireError> {
    let len = u32::decode(reader)? as usize;
    let mut items = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        items.push(T::decode(reader)?);
    }
    Ok(items)
}

impl WireEncode for Message {
    fn encode(&self, writer: &mut Writer) {
        match self {
            Message::GetRequest { app, tag } => {
                TAG_GET_REQUEST.encode(writer);
                app.encode(writer);
                tag.encode(writer);
            }
            Message::GetResponse(body) => {
                TAG_GET_RESPONSE.encode(writer);
                body.found.encode(writer);
                body.record.encode(writer);
            }
            Message::PutRequest { app, tag, record } => {
                TAG_PUT_REQUEST.encode(writer);
                app.encode(writer);
                tag.encode(writer);
                record.encode(writer);
            }
            Message::PutResponse(body) => {
                TAG_PUT_RESPONSE.encode(writer);
                body.accepted.encode(writer);
                body.reason.encode(writer);
            }
            Message::StatsRequest => TAG_STATS_REQUEST.encode(writer),
            Message::StatsResponse(body) => {
                TAG_STATS_RESPONSE.encode(writer);
                body.entries.encode(writer);
                body.gets.encode(writer);
                body.hits.encode(writer);
                body.puts.encode(writer);
                body.rejected_puts.encode(writer);
                body.stored_bytes.encode(writer);
                body.evictions.encode(writer);
                encode_seq(&body.shards, writer);
            }
            Message::SyncPull { min_hits } => {
                TAG_SYNC_PULL.encode(writer);
                min_hits.encode(writer);
            }
            Message::SyncBatch(entries) => {
                TAG_SYNC_BATCH.encode(writer);
                encode_seq(entries, writer);
            }
            Message::Error(msg) => {
                TAG_ERROR.encode(writer);
                msg.encode(writer);
            }
            Message::BatchRequest { app, items } => {
                TAG_BATCH_REQUEST.encode(writer);
                app.encode(writer);
                encode_seq(items, writer);
            }
            Message::BatchResponse(results) => {
                TAG_BATCH_RESPONSE.encode(writer);
                encode_seq(results, writer);
            }
            Message::MetricsRequest { format } => {
                TAG_METRICS_REQUEST.encode(writer);
                format.encode(writer);
            }
            Message::MetricsResponse(rendered) => {
                TAG_METRICS_RESPONSE.encode(writer);
                rendered.encode(writer);
            }
            Message::FilterRequest => TAG_FILTER_REQUEST.encode(writer),
            Message::FilterResponse(body) => {
                TAG_FILTER_RESPONSE.encode(writer);
                body.encode(writer);
            }
            Message::PutPrefiltered { app, tag, prefilter, record } => {
                TAG_PUT_PREFILTERED.encode(writer);
                app.encode(writer);
                tag.encode(writer);
                prefilter.encode(writer);
                record.encode(writer);
            }
            Message::RingRequest => TAG_RING_REQUEST.encode(writer),
            Message::RingResponse(body) => {
                TAG_RING_RESPONSE.encode(writer);
                body.encode(writer);
            }
        }
    }
}

impl WireDecode for Message {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let discriminant = u8::decode(reader)?;
        match discriminant {
            TAG_GET_REQUEST => Ok(Message::GetRequest {
                app: AppId::decode(reader)?,
                tag: CompTag::decode(reader)?,
            }),
            TAG_GET_RESPONSE => Ok(Message::GetResponse(GetResponseBody {
                found: bool::decode(reader)?,
                record: Option::<Record>::decode(reader)?,
            })),
            TAG_PUT_REQUEST => Ok(Message::PutRequest {
                app: AppId::decode(reader)?,
                tag: CompTag::decode(reader)?,
                record: Record::decode(reader)?,
            }),
            TAG_PUT_RESPONSE => Ok(Message::PutResponse(PutResponseBody {
                accepted: bool::decode(reader)?,
                reason: Option::<String>::decode(reader)?,
            })),
            TAG_STATS_REQUEST => Ok(Message::StatsRequest),
            TAG_STATS_RESPONSE => Ok(Message::StatsResponse(StatsBody {
                entries: u64::decode(reader)?,
                gets: u64::decode(reader)?,
                hits: u64::decode(reader)?,
                puts: u64::decode(reader)?,
                rejected_puts: u64::decode(reader)?,
                stored_bytes: u64::decode(reader)?,
                evictions: u64::decode(reader)?,
                shards: decode_seq(reader)?,
            })),
            TAG_SYNC_PULL => Ok(Message::SyncPull { min_hits: u64::decode(reader)? }),
            TAG_SYNC_BATCH => Ok(Message::SyncBatch(decode_seq(reader)?)),
            TAG_ERROR => Ok(Message::Error(String::decode(reader)?)),
            TAG_BATCH_REQUEST => Ok(Message::BatchRequest {
                app: AppId::decode(reader)?,
                items: decode_seq(reader)?,
            }),
            TAG_BATCH_RESPONSE => Ok(Message::BatchResponse(decode_seq(reader)?)),
            TAG_METRICS_REQUEST => {
                Ok(Message::MetricsRequest { format: MetricsFormat::decode(reader)? })
            }
            TAG_METRICS_RESPONSE => Ok(Message::MetricsResponse(String::decode(reader)?)),
            TAG_FILTER_REQUEST => Ok(Message::FilterRequest),
            TAG_FILTER_RESPONSE => {
                Ok(Message::FilterResponse(FilterBody::decode(reader)?))
            }
            TAG_PUT_PREFILTERED => Ok(Message::PutPrefiltered {
                app: AppId::decode(reader)?,
                tag: CompTag::decode(reader)?,
                prefilter: u64::decode(reader)?,
                record: Record::decode(reader)?,
            }),
            TAG_RING_REQUEST => Ok(Message::RingRequest),
            TAG_RING_RESPONSE => Ok(Message::RingResponse(RingBody::decode(reader)?)),
            other => Err(WireError::InvalidTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    fn sample_record() -> Record {
        Record {
            challenge: vec![1u8; 32],
            wrapped_key: [2u8; 16],
            nonce: [3u8; 12],
            boxed_result: vec![4u8; 50],
        }
    }

    #[test]
    fn all_messages_roundtrip() {
        let messages = vec![
            Message::GetRequest { app: AppId(7), tag: CompTag::from_bytes([1; 32]) },
            Message::GetResponse(GetResponseBody { found: false, record: None }),
            Message::GetResponse(GetResponseBody {
                found: true,
                record: Some(sample_record()),
            }),
            Message::PutRequest {
                app: AppId(9),
                tag: CompTag::from_bytes([2; 32]),
                record: sample_record(),
            },
            Message::PutResponse(PutResponseBody { accepted: true, reason: None }),
            Message::PutResponse(PutResponseBody {
                accepted: false,
                reason: Some("quota exceeded".into()),
            }),
            Message::StatsRequest,
            Message::StatsResponse(StatsBody {
                entries: 1,
                gets: 2,
                hits: 3,
                puts: 4,
                rejected_puts: 5,
                stored_bytes: 6,
                evictions: 7,
                shards: vec![
                    ShardStatsBody {
                        entries: 1,
                        stored_bytes: 6,
                        evictions: 7,
                        lock_contention: 8,
                        busy_ns: 9,
                    },
                    ShardStatsBody::default(),
                ],
            }),
            Message::SyncPull { min_hits: 10 },
            Message::SyncBatch(vec![SyncEntry {
                tag: CompTag::from_bytes([5; 32]),
                record: sample_record(),
                hits: 3,
            }]),
            Message::Error("boom".into()),
            Message::BatchRequest {
                app: AppId(3),
                items: vec![
                    BatchItem::Get { tag: CompTag::from_bytes([6; 32]) },
                    BatchItem::Put {
                        tag: CompTag::from_bytes([7; 32]),
                        record: sample_record(),
                    },
                ],
            },
            Message::BatchRequest { app: AppId(4), items: vec![] },
            Message::BatchResponse(vec![
                BatchItemResult::found(sample_record()),
                BatchItemResult::not_found(),
                BatchItemResult::accepted(),
                BatchItemResult::rejected("quota exceeded"),
            ]),
            Message::MetricsRequest { format: MetricsFormat::Prometheus },
            Message::MetricsRequest { format: MetricsFormat::Jsonl },
            Message::MetricsResponse("# TYPE dedup_hits_total counter\n".into()),
            Message::FilterRequest,
            Message::FilterResponse(FilterBody {
                epoch: 42,
                shards: vec![crate::NegativeFilter::new(1 << 12, 4)],
            }),
            Message::PutPrefiltered {
                app: AppId(11),
                tag: CompTag::from_bytes([8; 32]),
                prefilter: 0xFEED_FACE_CAFE_BEEF,
                record: sample_record(),
            },
            Message::BatchRequest {
                app: AppId(12),
                items: vec![BatchItem::PutPrefiltered {
                    tag: CompTag::from_bytes([9; 32]),
                    prefilter: 77,
                    record: sample_record(),
                }],
            },
            Message::RingRequest,
            Message::RingResponse(RingBody::default()),
            Message::RingResponse(RingBody {
                version: 3,
                nodes: vec![
                    RingNodeBody { id: 0, addr: "10.0.0.1:7000".into(), weight: 1 },
                    RingNodeBody { id: 1, addr: String::new(), weight: 2 },
                ],
            }),
        ];
        for msg in messages {
            let decoded: Message = from_bytes(&to_bytes(&msg)).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn unknown_discriminant_fails() {
        assert_eq!(from_bytes::<Message>(&[200]), Err(WireError::InvalidTag(200)));
    }

    #[test]
    fn record_wire_size_matches_encoding() {
        let record = sample_record();
        assert_eq!(record.wire_size(), to_bytes(&record).len());
    }

    #[test]
    fn comp_tag_debug_is_short() {
        let tag = CompTag::from_bytes([0xAB; 32]);
        let dbg = format!("{tag:?}");
        assert!(dbg.len() < 32, "{dbg}");
        assert!(dbg.contains("abab"));
    }

    #[test]
    fn batch_item_wire_size_matches_encoding() {
        let get = BatchItem::Get { tag: CompTag::from_bytes([1; 32]) };
        assert_eq!(get.wire_size(), to_bytes(&get).len());
        let put =
            BatchItem::Put { tag: CompTag::from_bytes([2; 32]), record: sample_record() };
        assert_eq!(put.wire_size(), to_bytes(&put).len());
        let prefiltered = BatchItem::PutPrefiltered {
            tag: CompTag::from_bytes([3; 32]),
            prefilter: 0xABCD,
            record: sample_record(),
        };
        assert_eq!(prefiltered.wire_size(), to_bytes(&prefiltered).len());
    }

    #[test]
    fn batch_status_rejects_junk_codes() {
        assert_eq!(from_bytes::<BatchStatus>(&[9]), Err(WireError::InvalidTag(9)));
        assert_eq!(from_bytes::<BatchItem>(&[7]), Err(WireError::InvalidTag(7)));
    }

    #[test]
    fn truncated_batch_fails_not_panics() {
        let bytes = to_bytes(&Message::BatchRequest {
            app: AppId(1),
            items: vec![
                BatchItem::Get { tag: CompTag::from_bytes([0; 32]) },
                BatchItem::Put {
                    tag: CompTag::from_bytes([1; 32]),
                    record: sample_record(),
                },
            ],
        });
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Message>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn truncated_ring_response_fails_not_panics() {
        let bytes = to_bytes(&Message::RingResponse(RingBody {
            version: 9,
            nodes: vec![RingNodeBody { id: 2, addr: "a:1".into(), weight: 1 }],
        }));
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Message>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn truncated_message_fails_not_panics() {
        let bytes = to_bytes(&Message::PutRequest {
            app: AppId(1),
            tag: CompTag::from_bytes([0; 32]),
            record: sample_record(),
        });
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Message>(&bytes[..cut]).is_err());
        }
    }
}
