//! Negative-lookup filters for the tiered tag pipeline.
//!
//! A [`NegativeFilter`] is a classic Bloom filter over 64-bit prefilter tags,
//! maintained per shard by the `ResultStore` and shipped to clients in a
//! [`FilterBody`]. Clients consult it *before* computing
//! the full SHA-256 comp-tag: when a complete filter proves a prefilter tag
//! absent, the input definitely has no stored result, so the client can skip
//! both the full hash and the store round trip.
//!
//! The only invariant that matters for correctness is **conservatism**: a
//! filter may claim "maybe present" for an absent key (false positive — the
//! client just falls through to the normal tagged lookup), but it must never
//! claim "absent" for a present key (false negative — that would silently
//! disable deduplication or, worse, publish a duplicate). Two mechanisms
//! enforce this:
//!
//! - Bloom bits are only ever set, never cleared, while entries live; evicted
//!   or expired entries leave stale bits behind, which can only cause false
//!   positives.
//! - Any insertion whose prefilter tag is unknown (a legacy `PUT_REQUEST`, an
//!   entry recovered from disk) marks the filter *incomplete*;
//!   [`NegativeFilter::may_contain`] answers `true` for everything until the
//!   filter is rebuilt.

// hot-path: deny-clone

use crate::codec::{Reader, WireDecode, WireEncode, WireError, Writer};

/// Smallest permitted filter size in bytes (512 bits).
pub const MIN_FILTER_BYTES: usize = 64;

/// Largest permitted filter size in bytes (1 MiB = 2^23 bits), bounding both
/// the store's resident cost per shard and the wire payload per refresh.
pub const MAX_FILTER_BYTES: usize = 1 << 20;

/// Largest permitted number of hash probes per key.
pub const MAX_FILTER_HASHES: u8 = 16;

/// Default number of hash probes per key (~0.6% false positives at 16 bits
/// per entry).
pub const DEFAULT_FILTER_HASHES: u8 = 4;

const TARGET_BITS_PER_ENTRY: u64 = 10;

/// A conservative Bloom filter over 64-bit prefilter tags.
///
/// See the [module docs](self) for the no-false-negative contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NegativeFilter {
    /// Bit array; length in bytes is always a power of two within
    /// [`MIN_FILTER_BYTES`]..=[`MAX_FILTER_BYTES`].
    bits: Vec<u8>,
    /// Number of hash probes per key.
    hashes: u8,
    /// Whether every live entry's prefilter tag has been inserted. While
    /// `false`, the filter answers "maybe" for every key.
    complete: bool,
    /// Number of keys inserted since the filter was created or cleared.
    entries: u64,
}

impl NegativeFilter {
    /// Creates an empty, complete filter with at least `bit_count` bits
    /// (rounded up to a power-of-two byte length and clamped to the
    /// permitted size range) and `hashes` probes per key (clamped to
    /// `1..=`[`MAX_FILTER_HASHES`]).
    pub fn new(bit_count: usize, hashes: u8) -> Self {
        let bytes = bit_count
            .div_ceil(8)
            .next_power_of_two()
            .clamp(MIN_FILTER_BYTES, MAX_FILTER_BYTES);
        NegativeFilter {
            bits: vec![0u8; bytes],
            hashes: hashes.clamp(1, MAX_FILTER_HASHES),
            complete: true,
            entries: 0,
        }
    }

    /// Creates a filter sized for roughly `expected_entries` keys at ~10 bits
    /// per entry, with the default probe count.
    pub fn with_capacity(expected_entries: u64) -> Self {
        let bits = expected_entries
            .saturating_mul(TARGET_BITS_PER_ENTRY)
            .min((MAX_FILTER_BYTES as u64) * 8) as usize;
        NegativeFilter::new(bits, DEFAULT_FILTER_HASHES)
    }

    /// Inserts a prefilter tag.
    pub fn insert(&mut self, key: u64) {
        let mask = self.bits.len() * 8 - 1;
        let (h1, h2) = probe_pair(key);
        for i in 0..self.hashes as u64 {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2)) as usize) & mask;
            self.bits[bit / 8] |= 1 << (bit % 8);
        }
        self.entries = self.entries.saturating_add(1);
    }

    /// Answers whether `key` may be present.
    ///
    /// `false` means *definitely absent* (valid only because the filter is
    /// complete); `true` means "maybe" — an incomplete filter answers `true`
    /// for every key.
    pub fn may_contain(&self, key: u64) -> bool {
        if !self.complete {
            return true;
        }
        let mask = self.bits.len() * 8 - 1;
        let (h1, h2) = probe_pair(key);
        (0..self.hashes as u64).all(|i| {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2)) as usize) & mask;
            self.bits[bit / 8] & (1 << (bit % 8)) != 0
        })
    }

    /// Marks the filter incomplete: some live entry's prefilter tag is
    /// unknown, so no absence claim can be made until a rebuild.
    pub fn mark_incomplete(&mut self) {
        self.complete = false;
    }

    /// Whether every live entry's prefilter tag is represented.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Number of keys inserted since creation or the last [`clear`][Self::clear].
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Size of the bit array in bits.
    pub fn bit_len(&self) -> usize {
        self.bits.len() * 8
    }

    /// Resets to an empty, complete filter of the same shape.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.complete = true;
        self.entries = 0;
    }

    /// ORs `other` into `self`, producing a filter that answers "maybe" for
    /// any key either side might contain. The merge is complete only if both
    /// sides are.
    ///
    /// Returns `false` (after conservatively marking `self` incomplete) if
    /// the two filters have different shapes and cannot be merged bit-wise.
    pub fn merge_from(&mut self, other: &NegativeFilter) -> bool {
        if self.bits.len() != other.bits.len() || self.hashes != other.hashes {
            self.complete = false;
            return false;
        }
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
        self.complete &= other.complete;
        self.entries = self.entries.saturating_add(other.entries);
        true
    }
}

/// Derives the two independent hash values used for double hashing.
///
/// `h2` is forced odd so that for the power-of-two bit count the probe
/// sequence `h1 + i*h2` walks distinct positions.
fn probe_pair(key: u64) -> (u64, u64) {
    let h1 = splitmix64(key);
    let h2 = splitmix64(key ^ 0x9E37_79B9_7F4A_7C15) | 1;
    (h1, h2)
}

/// SplitMix64 finalizer: a cheap, well-distributed 64→64-bit mix.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl WireEncode for NegativeFilter {
    fn encode(&self, writer: &mut Writer) {
        self.bits.encode(writer);
        self.hashes.encode(writer);
        self.complete.encode(writer);
        self.entries.encode(writer);
    }
}

impl WireDecode for NegativeFilter {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let bits = Vec::<u8>::decode(reader)?;
        if bits.len() < MIN_FILTER_BYTES
            || bits.len() > MAX_FILTER_BYTES
            || !bits.len().is_power_of_two()
        {
            return Err(WireError::LengthOverflow(bits.len() as u64));
        }
        let hashes = u8::decode(reader)?;
        if hashes == 0 || hashes > MAX_FILTER_HASHES {
            return Err(WireError::InvalidTag(hashes));
        }
        let complete = bool::decode(reader)?;
        let entries = u64::decode(reader)?;
        Ok(NegativeFilter { bits, hashes, complete, entries })
    }
}

/// Payload of `FILTER_RESPONSE`: one negative filter per store shard plus the
/// store's filter epoch (bumped on every insertion) so clients can tell how
/// stale their copy is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilterBody {
    /// Monotonic insertion epoch at snapshot time.
    pub epoch: u64,
    /// Per-shard filters, indexed like the store's shards.
    pub shards: Vec<NegativeFilter>,
}

impl WireEncode for FilterBody {
    fn encode(&self, writer: &mut Writer) {
        self.epoch.encode(writer);
        let len = u32::try_from(self.shards.len()).expect("shard count exceeds u32");
        len.encode(writer);
        for shard in &self.shards {
            shard.encode(writer);
        }
    }
}

impl WireDecode for FilterBody {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let epoch = u64::decode(reader)?;
        let len = u32::decode(reader)? as usize;
        // Defensive preallocation bound for hostile lengths.
        let mut shards = Vec::with_capacity(len.min(256));
        for _ in 0..len {
            shards.push(NegativeFilter::decode(reader)?);
        }
        Ok(FilterBody { epoch, shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    #[test]
    fn inserted_keys_are_always_maybe_present() {
        let mut f = NegativeFilter::new(1 << 12, 4);
        for key in 0..10_000u64 {
            f.insert(key.wrapping_mul(0x2545_F491_4F6C_DD1D));
        }
        for key in 0..10_000u64 {
            assert!(f.may_contain(key.wrapping_mul(0x2545_F491_4F6C_DD1D)));
        }
    }

    #[test]
    fn empty_complete_filter_proves_absence() {
        let f = NegativeFilter::new(1 << 12, 4);
        assert!(!f.may_contain(42));
        assert!(f.is_complete());
    }

    #[test]
    fn incomplete_filter_never_proves_absence() {
        let mut f = NegativeFilter::new(1 << 12, 4);
        f.mark_incomplete();
        assert!(f.may_contain(42));
        assert!(f.may_contain(0));
    }

    #[test]
    fn false_positive_rate_is_bounded_at_design_load() {
        let mut f = NegativeFilter::with_capacity(10_000);
        for key in 0..10_000u64 {
            f.insert(splitmix64(key));
        }
        let fp =
            (0..100_000u64).filter(|k| f.may_contain(splitmix64(k + 1_000_000))).count();
        // ~10 bits/entry, k=4 gives ~1.2% theoretical; allow generous slack.
        assert!(fp < 5_000, "false positive rate too high: {fp}/100000");
    }

    #[test]
    fn merge_unions_and_propagates_incompleteness() {
        let mut a = NegativeFilter::new(1 << 12, 4);
        let mut b = NegativeFilter::new(1 << 12, 4);
        a.insert(1);
        b.insert(2);
        assert!(a.merge_from(&b));
        assert!(a.may_contain(1));
        assert!(a.may_contain(2));
        assert!(a.is_complete());
        b.mark_incomplete();
        assert!(a.merge_from(&b));
        assert!(!a.is_complete());
    }

    #[test]
    fn merge_of_mismatched_shapes_degrades_to_incomplete() {
        let mut a = NegativeFilter::new(1 << 12, 4);
        let b = NegativeFilter::new(1 << 14, 4);
        assert!(!a.merge_from(&b));
        assert!(!a.is_complete());
        assert!(a.may_contain(7));
    }

    #[test]
    fn clear_restores_empty_complete_state() {
        let mut f = NegativeFilter::new(1 << 12, 4);
        f.insert(9);
        f.mark_incomplete();
        f.clear();
        assert!(f.is_complete());
        assert_eq!(f.entries(), 0);
        assert!(!f.may_contain(9));
    }

    #[test]
    fn wire_roundtrip() {
        let mut f = NegativeFilter::new(1 << 12, 4);
        f.insert(0xDEAD_BEEF);
        f.mark_incomplete();
        let body =
            FilterBody { epoch: 7, shards: vec![f.clone(), NegativeFilter::new(64, 1)] };
        let bytes = to_bytes(&body);
        let back: FilterBody = from_bytes(&bytes).unwrap();
        assert_eq!(back, body);
    }

    #[test]
    fn decode_rejects_bad_shapes() {
        let mut f = NegativeFilter::new(1 << 12, 4);
        f.insert(1);
        let good = to_bytes(&f);
        // Truncations error rather than panic.
        for cut in 0..good.len() {
            assert!(from_bytes::<NegativeFilter>(&good[..cut]).is_err());
        }
        // A non-power-of-two bit vector is rejected.
        let mut w = Writer::new();
        vec![0u8; 65].encode(&mut w);
        4u8.encode(&mut w);
        true.encode(&mut w);
        0u64.encode(&mut w);
        assert!(from_bytes::<NegativeFilter>(&w.into_bytes()).is_err());
        // Zero hash probes are rejected.
        let mut w = Writer::new();
        vec![0u8; 64].encode(&mut w);
        0u8.encode(&mut w);
        true.encode(&mut w);
        0u64.encode(&mut w);
        assert!(from_bytes::<NegativeFilter>(&w.into_bytes()).is_err());
    }

    #[test]
    fn sizing_clamps_to_permitted_range() {
        assert_eq!(NegativeFilter::new(1, 4).bit_len(), MIN_FILTER_BYTES * 8);
        assert_eq!(
            NegativeFilter::with_capacity(u64::MAX).bit_len(),
            MAX_FILTER_BYTES * 8
        );
        assert_eq!(NegativeFilter::new(0, 0).hashes, 1);
        assert_eq!(NegativeFilter::new(0, 200).hashes, MAX_FILTER_HASHES);
    }
}
