//! The uniform serialization interface and wire protocol of SPEED.
//!
//! The paper requires SPEED to be "designed and implemented in a
//! function-agnostic way with a uniform serialization interface, so as to be
//! compatible with different functions intended for deduplication" (§II-C).
//! This crate provides that interface and the messages exchanged between the
//! `DedupRuntime` and the encrypted `ResultStore`:
//!
//! - [`WireEncode`] / [`WireDecode`] — the uniform serialization traits;
//!   implemented for primitives, byte strings, collections, tuples, and
//!   every protocol type; application developers implement them to make
//!   custom inputs/outputs deduplicable.
//! - [`Message`] — the protocol envelope: `GET_REQUEST`, `GET_RESPONSE`,
//!   `PUT_REQUEST`, `PUT_RESPONSE` (§IV-B), plus stats and master-store
//!   synchronization messages.
//! - [`frame`] — length-prefixed framing for stream transports.
//! - [`SecureChannel`] — the attested, AES-GCM-protected channel over which
//!   tags and records travel ("the tag is sent to the encrypted ResultStore
//!   via a secure channel", Algorithm 1 line 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod codec;
pub mod filter;
pub mod frame;
mod messages;

pub use channel::{ChannelError, Role, SecureChannel, SessionAuthority};
pub use codec::{Reader, WireDecode, WireEncode, WireError, Writer};
pub use filter::{FilterBody, NegativeFilter};
pub use messages::{
    AppId, BatchItem, BatchItemResult, BatchStatus, CompTag, GetResponseBody, Message,
    MetricsFormat, PutResponseBody, Record, RingBody, RingNodeBody, ShardStatsBody,
    StatsBody, SyncEntry, COMP_TAG_LEN,
};

/// Encodes any [`WireEncode`] value to a fresh byte vector.
///
/// # Example
///
/// ```
/// let bytes = speed_wire::to_bytes(&(42u32, String::from("hi")));
/// let (n, s): (u32, String) = speed_wire::from_bytes(&bytes).unwrap();
/// assert_eq!((n, s.as_str()), (42, "hi"));
/// ```
pub fn to_bytes<T: WireEncode + ?Sized>(value: &T) -> Vec<u8> {
    let mut writer = Writer::new();
    value.encode(&mut writer);
    writer.into_bytes()
}

/// Decodes a [`WireDecode`] value from `bytes`, requiring full consumption.
///
/// # Errors
///
/// Returns [`WireError`] if the bytes are malformed or not fully consumed.
pub fn from_bytes<T: WireDecode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut reader = Reader::new(bytes);
    let value = T::decode(&mut reader)?;
    reader.finish()?;
    Ok(value)
}
