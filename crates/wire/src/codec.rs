//! The uniform serialization interface: a compact, deterministic,
//! length-prefixed binary codec.
//!
//! Encoding rules:
//! - fixed-width integers are little-endian;
//! - byte strings and collections carry a `u32` length prefix;
//! - `Option<T>` is a presence byte followed by the value;
//! - tuples and structs are field-by-field concatenation.
//!
//! Determinism matters: the dedup tag is a hash over encoded inputs, so the
//! same logical value must always encode to the same bytes.

use std::error::Error;
use std::fmt;

/// Errors from decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Ran out of bytes mid-value.
    UnexpectedEof {
        /// Bytes needed to continue decoding.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// An enum discriminant or presence byte had an invalid value.
    InvalidTag(u8),
    /// Input was not fully consumed by [`crate::from_bytes`].
    TrailingBytes(usize),
    /// A declared length exceeds the remaining input (corrupt or hostile).
    LengthOverflow(u64),
    /// A string field contained invalid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {remaining} remaining"
            ),
            WireError::InvalidTag(tag) => {
                write!(f, "invalid discriminant byte {tag:#04x}")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::LengthOverflow(len) => {
                write!(f, "declared length {len} exceeds remaining input")
            }
            WireError::InvalidUtf8 => write!(f, "string field contained invalid utf-8"),
        }
    }
}

impl Error for WireError {}

/// An append-only encoding buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer { buf: Vec::with_capacity(cap) }
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` exceeds `u32::MAX`.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        let len = u32::try_from(bytes.len()).expect("wire value exceeds 4 GiB");
        self.put_raw(&len.to_le_bytes());
        self.put_raw(bytes);
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A cursor over bytes being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than `n` remain.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u32`-length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LengthOverflow`] if the prefix exceeds the
    /// remaining input, or [`WireError::UnexpectedEof`] on truncation.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = u32::decode(self)? as usize;
        if len > self.remaining() {
            return Err(WireError::LengthOverflow(len as u64));
        }
        self.take_raw(len)
    }

    /// Fails unless all input has been consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TrailingBytes`] if bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }
}

/// Types encodable with the uniform serialization interface.
pub trait WireEncode {
    /// Appends this value's encoding to `writer`.
    fn encode(&self, writer: &mut Writer);
}

/// Types decodable with the uniform serialization interface.
pub trait WireDecode: Sized {
    /// Decodes one value from `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed input.
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError>;
}

macro_rules! impl_wire_int {
    ($($ty:ty),*) => {$(
        impl WireEncode for $ty {
            fn encode(&self, writer: &mut Writer) {
                writer.put_raw(&self.to_le_bytes());
            }
        }
        impl WireDecode for $ty {
            fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
                let raw = reader.take_raw(std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(raw.try_into().expect("sized read")))
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl WireEncode for f64 {
    fn encode(&self, writer: &mut Writer) {
        writer.put_raw(&self.to_le_bytes());
    }
}

impl WireDecode for f64 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let raw = reader.take_raw(8)?;
        Ok(f64::from_le_bytes(raw.try_into().expect("sized read")))
    }
}

impl WireEncode for f32 {
    fn encode(&self, writer: &mut Writer) {
        writer.put_raw(&self.to_le_bytes());
    }
}

impl WireDecode for f32 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let raw = reader.take_raw(4)?;
        Ok(f32::from_le_bytes(raw.try_into().expect("sized read")))
    }
}

impl WireEncode for bool {
    fn encode(&self, writer: &mut Writer) {
        writer.put_raw(&[u8::from(*self)]);
    }
}

impl WireDecode for bool {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        match reader.take_raw(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::InvalidTag(other)),
        }
    }
}

impl WireEncode for [u8] {
    fn encode(&self, writer: &mut Writer) {
        writer.put_bytes(self);
    }
}

impl WireEncode for Vec<u8> {
    fn encode(&self, writer: &mut Writer) {
        writer.put_bytes(self);
    }
}

impl WireDecode for Vec<u8> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(reader.take_bytes()?.to_vec())
    }
}

impl WireEncode for str {
    fn encode(&self, writer: &mut Writer) {
        writer.put_bytes(self.as_bytes());
    }
}

impl WireEncode for String {
    fn encode(&self, writer: &mut Writer) {
        writer.put_bytes(self.as_bytes());
    }
}

impl WireDecode for String {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = reader.take_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

impl<const N: usize> WireEncode for [u8; N] {
    fn encode(&self, writer: &mut Writer) {
        writer.put_raw(self);
    }
}

impl<const N: usize> WireDecode for [u8; N] {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let raw = reader.take_raw(N)?;
        Ok(raw.try_into().expect("sized read"))
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, writer: &mut Writer) {
        match self {
            None => writer.put_raw(&[0]),
            Some(value) => {
                writer.put_raw(&[1]);
                value.encode(writer);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        match reader.take_raw(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(reader)?)),
            other => Err(WireError::InvalidTag(other)),
        }
    }
}

// Generic sequences. `Vec<u8>` has its own faster impl above; this covers
// vectors of structured values.
macro_rules! impl_wire_seq {
    ($($ty:ty),*) => {$(
        impl WireEncode for Vec<$ty> {
            fn encode(&self, writer: &mut Writer) {
                let len = u32::try_from(self.len()).expect("sequence exceeds u32 elements");
                len.encode(writer);
                for item in self {
                    item.encode(writer);
                }
            }
        }
        impl WireDecode for Vec<$ty> {
            fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
                let len = u32::decode(reader)? as usize;
                // Defensive preallocation bound for hostile lengths.
                let mut out = Vec::with_capacity(len.min(4096));
                for _ in 0..len {
                    out.push(<$ty>::decode(reader)?);
                }
                Ok(out)
            }
        }
    )*};
}

impl_wire_seq!(u16, u32, u64, i32, i64, f32, f64, String, Vec<u8>);

macro_rules! impl_wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: WireEncode),+> WireEncode for ($($name,)+) {
            fn encode(&self, writer: &mut Writer) {
                $(self.$idx.encode(writer);)+
            }
        }
        impl<$($name: WireDecode),+> WireDecode for ($($name,)+) {
            fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(reader)?,)+))
            }
        }
    };
}

impl_wire_tuple!(A: 0);
impl_wire_tuple!(A: 0, B: 1);
impl_wire_tuple!(A: 0, B: 1, C: 2);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3);

impl WireEncode for () {
    fn encode(&self, _writer: &mut Writer) {}
}

impl WireDecode for () {
    fn decode(_reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};
    use speed_crypto::SystemRng;

    fn arb_bytes(rng: &mut SystemRng, max: usize) -> Vec<u8> {
        let mut v = vec![0u8; rng.range_usize_inclusive(0, max)];
        rng.fill(&mut v);
        v
    }

    fn arb_string(rng: &mut SystemRng, max_chars: usize) -> String {
        (0..rng.range_usize_inclusive(0, max_chars))
            .map(|_| char::from_u32(rng.next_u32() % 0x11_0000).unwrap_or('\u{FFFD}'))
            .collect()
    }

    #[test]
    fn integers_roundtrip() {
        assert_eq!(from_bytes::<u8>(&to_bytes(&7u8)).unwrap(), 7);
        assert_eq!(from_bytes::<u32>(&to_bytes(&0xDEADBEEFu32)).unwrap(), 0xDEADBEEF);
        assert_eq!(from_bytes::<i64>(&to_bytes(&-9i64)).unwrap(), -9);
        assert_eq!(from_bytes::<u64>(&to_bytes(&u64::MAX)).unwrap(), u64::MAX);
    }

    #[test]
    fn floats_roundtrip() {
        assert_eq!(from_bytes::<f64>(&to_bytes(&1.5f64)).unwrap(), 1.5);
        assert_eq!(from_bytes::<f32>(&to_bytes(&-0.25f32)).unwrap(), -0.25);
    }

    #[test]
    fn bool_rejects_junk() {
        assert!(from_bytes::<bool>(&[1]).unwrap());
        assert!(!from_bytes::<bool>(&[0]).unwrap());
        assert_eq!(from_bytes::<bool>(&[2]), Err(WireError::InvalidTag(2)));
    }

    #[test]
    fn byte_strings_roundtrip() {
        let v = vec![1u8, 2, 3];
        assert_eq!(from_bytes::<Vec<u8>>(&to_bytes(&v)).unwrap(), v);
        assert_eq!(from_bytes::<Vec<u8>>(&to_bytes(&Vec::<u8>::new())).unwrap(), vec![]);
    }

    #[test]
    fn strings_roundtrip_and_reject_bad_utf8() {
        let s = String::from("héllo wörld");
        assert_eq!(from_bytes::<String>(&to_bytes(&s)).unwrap(), s);
        let bad = to_bytes(&vec![0xFFu8, 0xFE]);
        assert_eq!(from_bytes::<String>(&bad), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn options_roundtrip() {
        assert_eq!(from_bytes::<Option<u32>>(&to_bytes(&Some(5u32))).unwrap(), Some(5));
        assert_eq!(from_bytes::<Option<u32>>(&to_bytes(&None::<u32>)).unwrap(), None);
        assert_eq!(from_bytes::<Option<u32>>(&[9]), Err(WireError::InvalidTag(9)));
    }

    #[test]
    fn fixed_arrays_have_no_length_prefix() {
        let arr = [1u8, 2, 3, 4];
        let bytes = to_bytes(&arr);
        assert_eq!(bytes, vec![1, 2, 3, 4]);
        assert_eq!(from_bytes::<[u8; 4]>(&bytes).unwrap(), arr);
    }

    #[test]
    fn nested_sequences_roundtrip() {
        let v: Vec<Vec<u8>> = vec![vec![1], vec![], vec![2, 3]];
        assert_eq!(from_bytes::<Vec<Vec<u8>>>(&to_bytes(&v)).unwrap(), v);
        let names: Vec<String> = vec!["a".into(), "b".into()];
        assert_eq!(from_bytes::<Vec<String>>(&to_bytes(&names)).unwrap(), names);
    }

    #[test]
    fn tuples_roundtrip() {
        let value = (7u32, String::from("x"), vec![9u8]);
        let decoded: (u32, String, Vec<u8>) = from_bytes(&to_bytes(&value)).unwrap();
        assert_eq!(decoded, value);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = to_bytes(&vec![1u8; 100]);
        for cut in 0..bytes.len() {
            let err = from_bytes::<Vec<u8>>(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::UnexpectedEof { .. } | WireError::LengthOverflow(_)
                ),
                "cut={cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = to_bytes(&5u32);
        bytes.push(0);
        assert_eq!(from_bytes::<u32>(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn hostile_length_does_not_allocate() {
        // Declared length of ~4 GiB with 4 bytes of payload must fail fast.
        let mut bytes = (u32::MAX).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        assert_eq!(
            from_bytes::<Vec<u8>>(&bytes),
            Err(WireError::LengthOverflow(u32::MAX as u64))
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        let value = (vec![3u8, 1, 4], String::from("pi"), Some(159u64));
        assert_eq!(to_bytes(&value), to_bytes(&value));
    }

    #[test]
    fn prop_bytes_roundtrip() {
        let mut rng = SystemRng::seeded(0xC0DEC1);
        for _ in 0..64 {
            let data = arb_bytes(&mut rng, 512);
            assert_eq!(from_bytes::<Vec<u8>>(&to_bytes(&data)).unwrap(), data);
        }
    }

    #[test]
    fn prop_string_roundtrip() {
        let mut rng = SystemRng::seeded(0xC0DEC2);
        for _ in 0..64 {
            let s = arb_string(&mut rng, 64);
            assert_eq!(from_bytes::<String>(&to_bytes(&s)).unwrap(), s);
        }
    }

    #[test]
    fn prop_tuple_roundtrip() {
        let mut rng = SystemRng::seeded(0xC0DEC3);
        for _ in 0..64 {
            let a = rng.next_u64();
            let b = arb_bytes(&mut rng, 128);
            let c = if rng.gen_bool(0.5) { Some(arb_string(&mut rng, 32)) } else { None };
            let v = (a, b, c);
            let d: (u64, Vec<u8>, Option<String>) = from_bytes(&to_bytes(&v)).unwrap();
            assert_eq!(d, v);
        }
    }

    #[test]
    fn prop_arbitrary_bytes_never_panic() {
        let mut rng = SystemRng::seeded(0xC0DEC4);
        for _ in 0..256 {
            // Decoding hostile bytes may fail but must not panic.
            let data = arb_bytes(&mut rng, 256);
            let _ = from_bytes::<Vec<Vec<u8>>>(&data);
            let _ = from_bytes::<(u32, String)>(&data);
            let _ = from_bytes::<Option<Vec<u8>>>(&data);
        }
    }
}
