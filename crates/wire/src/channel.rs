//! The attested secure channel between `DedupRuntime` and `ResultStore`.
//!
//! The paper sends tags and records "via a secure channel" (Algorithm 1,
//! line 2) established between mutually attested enclaves. Real SGX
//! deployments run an attested key exchange (e.g. SIGMA over local reports,
//! or attested TLS for remote stores). Without public-key primitives in
//! scope, the simulator models the trusted third party that endorses the
//! exchange: a [`SessionAuthority`] verifies both parties' quotes and issues
//! the same session key to each side, after which all traffic is protected
//! with AES-GCM under strictly monotonic sequence-number nonces
//! (anti-replay, anti-reorder).

use std::error::Error;
use std::fmt;

use speed_crypto::{hkdf, AesGcm128, CryptoError, Key128, Nonce, SystemRng};
use speed_enclave::attestation::{
    create_report, AttestationService, Quote, REPORT_DATA_LEN,
};
use speed_enclave::{Enclave, EnclaveError, Platform};

/// Errors from secure-channel establishment or record protection.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChannelError {
    /// A peer's quote failed verification.
    Attestation(EnclaveError),
    /// A sealed message failed authentication.
    Crypto(CryptoError),
    /// A message arrived with an out-of-window sequence number (replay or
    /// reordering).
    BadSequence {
        /// Sequence number expected next.
        expected: u64,
        /// Sequence number carried by the message.
        actual: u64,
    },
    /// The sealed message was too short to contain its header.
    Malformed,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::Attestation(e) => write!(f, "channel attestation failed: {e}"),
            ChannelError::Crypto(e) => write!(f, "channel crypto failed: {e}"),
            ChannelError::BadSequence { expected, actual } => {
                write!(f, "bad sequence number: expected {expected}, got {actual}")
            }
            ChannelError::Malformed => write!(f, "malformed sealed message"),
        }
    }
}

impl Error for ChannelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ChannelError::Attestation(e) => Some(e),
            ChannelError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EnclaveError> for ChannelError {
    fn from(e: EnclaveError) -> Self {
        ChannelError::Attestation(e)
    }
}

impl From<CryptoError> for ChannelError {
    fn from(e: CryptoError) -> Self {
        ChannelError::Crypto(e)
    }
}

/// Which side of the channel an endpoint plays; determines the nonce
/// domain so the two directions never collide.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The application / `DedupRuntime` side.
    Client,
    /// The `ResultStore` side.
    Server,
}

impl Role {
    fn domain_byte(self) -> u8 {
        match self {
            Role::Client => 0x01,
            Role::Server => 0x02,
        }
    }

    fn peer(self) -> Role {
        match self {
            Role::Client => Role::Server,
            Role::Server => Role::Client,
        }
    }
}

/// One endpoint of an established secure channel.
#[derive(Debug)]
pub struct SecureChannel {
    cipher: AesGcm128,
    role: Role,
    send_seq: u64,
    recv_seq: u64,
}

impl SecureChannel {
    fn new(key: Key128, role: Role) -> Self {
        SecureChannel { cipher: AesGcm128::new(&key), role, send_seq: 0, recv_seq: 0 }
    }

    /// Creates a channel endpoint directly from a session key (used by
    /// transports that run the handshake themselves).
    pub fn from_session_key(key: Key128, role: Role) -> Self {
        SecureChannel::new(key, role)
    }

    /// Seals `plaintext` for the peer. The wire format is
    /// `seq (8 bytes LE) || ciphertext+tag`.
    pub fn seal_message(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.send_seq;
        self.send_seq += 1;
        let nonce = nonce_for(self.role, seq);
        let mut out = seq.to_le_bytes().to_vec();
        out.extend_from_slice(&self.cipher.seal(&nonce, &seq.to_le_bytes(), plaintext));
        out
    }

    /// Opens a message sealed by the peer.
    ///
    /// # Errors
    ///
    /// - [`ChannelError::Malformed`] if the frame lacks a header.
    /// - [`ChannelError::BadSequence`] on replayed or reordered frames.
    /// - [`ChannelError::Crypto`] if authentication fails (tampering or
    ///   wrong session key).
    pub fn open_message(&mut self, sealed: &[u8]) -> Result<Vec<u8>, ChannelError> {
        if sealed.len() < 8 {
            return Err(ChannelError::Malformed);
        }
        let seq = u64::from_le_bytes(sealed[..8].try_into().expect("sized"));
        if seq != self.recv_seq {
            return Err(ChannelError::BadSequence {
                expected: self.recv_seq,
                actual: seq,
            });
        }
        let nonce = nonce_for(self.role.peer(), seq);
        let plaintext = self.cipher.open(&nonce, &sealed[..8], &sealed[8..])?;
        self.recv_seq += 1;
        Ok(plaintext)
    }

    /// This endpoint's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Number of messages sealed so far.
    pub fn sent(&self) -> u64 {
        self.send_seq
    }

    /// Number of messages opened so far.
    pub fn received(&self) -> u64 {
        self.recv_seq
    }
}

fn nonce_for(sender: Role, seq: u64) -> Nonce {
    let mut bytes = [0u8; 12];
    bytes[0] = sender.domain_byte();
    bytes[4..12].copy_from_slice(&seq.to_le_bytes());
    Nonce::from_bytes(bytes)
}

/// The trusted session-establishment authority.
///
/// Stands in for the attested key exchange of a real deployment: it
/// verifies both endpoints' quotes against an [`AttestationService`] and
/// derives the shared session key that the attested exchange would have
/// produced.
#[derive(Debug)]
pub struct SessionAuthority {
    service: AttestationService,
    session_secret: [u8; 32],
    rng: parking_lot_free_rng::RngCell,
}

// A tiny interior-mutability wrapper so SessionAuthority::establish can take
// &self; kept private to this module.
mod parking_lot_free_rng {
    use speed_crypto::SystemRng;
    use std::sync::Mutex;

    #[derive(Debug)]
    pub struct RngCell(Mutex<SystemRng>);

    impl RngCell {
        pub fn new(rng: SystemRng) -> Self {
            RngCell(Mutex::new(rng))
        }

        pub fn fill(&self, buf: &mut [u8]) {
            self.0.lock().expect("rng lock poisoned").fill(buf);
        }
    }
}

impl SessionAuthority {
    /// Creates an authority around a fresh attestation service.
    pub fn new() -> Self {
        SessionAuthority::from_service(AttestationService::new(), SystemRng::new())
    }

    /// Creates a deterministic authority for tests.
    pub fn with_seed(seed: u64) -> Self {
        SessionAuthority::from_service(
            AttestationService::with_seed(seed),
            SystemRng::seeded(seed.wrapping_add(1)),
        )
    }

    fn from_service(service: AttestationService, mut rng: SystemRng) -> Self {
        let mut session_secret = [0u8; 32];
        rng.fill(&mut session_secret);
        SessionAuthority {
            service,
            session_secret,
            rng: parking_lot_free_rng::RngCell::new(rng),
        }
    }

    /// The underlying attestation service (to verify quotes independently).
    pub fn service(&self) -> &AttestationService {
        &self.service
    }

    /// Runs the full attested establishment between a client enclave and a
    /// server enclave, possibly on different platforms.
    ///
    /// Returns `(client_end, server_end)` sharing a fresh session key.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::Attestation`] if either quote fails.
    pub fn establish(
        &self,
        client: (&Platform, &Enclave),
        server: (&Platform, &Enclave),
    ) -> Result<(SecureChannel, SecureChannel), ChannelError> {
        let mut client_data = [0u8; REPORT_DATA_LEN];
        self.rng.fill(&mut client_data[..32]);
        let mut server_data = [0u8; REPORT_DATA_LEN];
        self.rng.fill(&mut server_data[..32]);

        let client_report = create_report(client.0, client.1, &client_data);
        let server_report = create_report(server.0, server.1, &server_data);
        let client_quote = self.service.quote(client.0, &client_report)?;
        let server_quote = self.service.quote(server.0, &server_report)?;

        let key = self.session_key(&client_quote, &server_quote)?;
        Ok((
            SecureChannel::new(key.clone(), Role::Client),
            SecureChannel::new(key, Role::Server),
        ))
    }

    /// Derives the session key for two verified quotes — the primitive used
    /// by stream transports that exchange quotes themselves.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::Attestation`] if either quote fails
    /// verification.
    pub fn session_key(
        &self,
        client_quote: &Quote,
        server_quote: &Quote,
    ) -> Result<Key128, ChannelError> {
        self.service.verify_quote(client_quote)?;
        self.service.verify_quote(server_quote)?;
        let mut info = Vec::with_capacity(64 + 2 * REPORT_DATA_LEN);
        info.extend_from_slice(client_quote.measurement.as_bytes());
        info.extend_from_slice(&client_quote.report_data);
        info.extend_from_slice(server_quote.measurement.as_bytes());
        info.extend_from_slice(&server_quote.report_data);
        let okm = hkdf::derive(b"speed-session", &self.session_secret, &info, 16);
        Ok(Key128::from_slice(&okm).expect("hkdf produced 16 bytes"))
    }
}

impl Default for SessionAuthority {
    fn default() -> Self {
        SessionAuthority::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_enclave::CostModel;

    fn establish_pair() -> (SecureChannel, SecureChannel) {
        let authority = SessionAuthority::with_seed(9);
        let p1 = Platform::new(CostModel::no_sgx());
        let p2 = Platform::new(CostModel::no_sgx());
        let app = p1.create_enclave(b"app").unwrap();
        let store = p2.create_enclave(b"store").unwrap();
        authority.establish((&p1, &app), (&p2, &store)).unwrap()
    }

    #[test]
    fn bidirectional_traffic() {
        let (mut client, mut server) = establish_pair();
        let to_server = client.seal_message(b"GET tag");
        assert_eq!(server.open_message(&to_server).unwrap(), b"GET tag");
        let to_client = server.seal_message(b"FOUND record");
        assert_eq!(client.open_message(&to_client).unwrap(), b"FOUND record");
    }

    #[test]
    fn replay_is_rejected() {
        let (mut client, mut server) = establish_pair();
        let frame = client.seal_message(b"once");
        assert!(server.open_message(&frame).is_ok());
        assert!(matches!(
            server.open_message(&frame),
            Err(ChannelError::BadSequence { expected: 1, actual: 0 })
        ));
    }

    #[test]
    fn reorder_is_rejected() {
        let (mut client, mut server) = establish_pair();
        let first = client.seal_message(b"1");
        let second = client.seal_message(b"2");
        assert!(matches!(
            server.open_message(&second),
            Err(ChannelError::BadSequence { .. })
        ));
        // The in-order frame still works afterwards.
        assert_eq!(server.open_message(&first).unwrap(), b"1");
    }

    #[test]
    fn tampering_is_rejected() {
        let (mut client, mut server) = establish_pair();
        let mut frame = client.seal_message(b"data");
        let last = frame.len() - 1;
        frame[last] ^= 1;
        assert!(matches!(server.open_message(&frame), Err(ChannelError::Crypto(_))));
    }

    #[test]
    fn cross_session_frames_fail() {
        let (mut c1, _s1) = establish_pair();
        let authority = SessionAuthority::with_seed(1234);
        let p = Platform::new(CostModel::no_sgx());
        let a = p.create_enclave(b"a").unwrap();
        let b = p.create_enclave(b"b").unwrap();
        let (_c2, mut s2) = authority.establish((&p, &a), (&p, &b)).unwrap();
        let frame = c1.seal_message(b"hello");
        assert!(matches!(s2.open_message(&frame), Err(ChannelError::Crypto(_))));
    }

    #[test]
    fn short_frame_is_malformed() {
        let (_c, mut server) = establish_pair();
        assert_eq!(server.open_message(&[1, 2, 3]), Err(ChannelError::Malformed));
    }

    #[test]
    fn same_direction_nonces_never_repeat() {
        let (mut client, mut server) = establish_pair();
        // Same plaintext sealed twice yields different ciphertexts (fresh seq).
        let f1 = client.seal_message(b"x");
        let f2 = client.seal_message(b"x");
        assert_ne!(f1, f2);
        assert_eq!(server.open_message(&f1).unwrap(), b"x");
        assert_eq!(server.open_message(&f2).unwrap(), b"x");
    }

    #[test]
    fn counters_track_traffic() {
        let (mut client, mut server) = establish_pair();
        for i in 0..5 {
            let frame = client.seal_message(format!("msg{i}").as_bytes());
            server.open_message(&frame).unwrap();
        }
        assert_eq!(client.sent(), 5);
        assert_eq!(server.received(), 5);
        assert_eq!(client.role(), Role::Client);
        assert_eq!(server.role(), Role::Server);
    }
}
