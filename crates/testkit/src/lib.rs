//! Deterministic property-testing, fuzzing, and shrinking for the SPEED
//! workspace.
//!
//! The workspace is intentionally offline — `proptest`, `rand`, and every
//! other external crate were removed in PR 1 — so the invariants the paper
//! depends on (tag determinism, RCE key recovery only via the identical
//! computation, snapshot round-trip, shard-routing equivalence) need an
//! in-tree harness to be exercised under randomized and adversarial
//! inputs. This crate is that harness:
//!
//! - [`TestRng`]: a seeded xorshift64\* PRNG. The same seed always yields
//!   the same value stream, so every failure is replayable.
//! - [`gen`]: composable generators built from plain closures
//!   (`Fn(&mut TestRng) -> T`), plus byte/string/collection primitives.
//! - [`wiregen`]: domain generators for the dedup protocol — tags,
//!   records, batch items, whole [`speed_wire::Message`] envelopes, and
//!   frames.
//! - [`load`]: seeded open-loop load generation — Poisson arrivals,
//!   Zipf-popular users/inputs, configurable repeat ratios, and a
//!   deterministic G/G/c replay that turns measured service times into
//!   p50/p99/p999 open-loop latency.
//! - [`mutate`]: byte-level mutators (bit flips, truncation, splices,
//!   hostile length prefixes) for fuzzing codecs.
//! - [`fault`]: a fault-injecting filesystem behind the store's
//!   [`speed_store::vfs::Vfs`] seam — fail the *n*-th fsync/rename, fill
//!   the disk — for the crash-recovery harness.
//! - [`Shrink`]: greedy structural shrinking, so a failing 120-operation
//!   sequence is reported as the few operations that actually matter.
//! - [`check`]: the property runner. On failure it shrinks the
//!   counterexample and prints a one-line reproducer of the form
//!   `SPEED_TESTKIT_SEED=0x…` that re-runs the exact failing case.
//! - [`corpus`]: loading checked-in regression inputs (seed corpora) from
//!   `tests/fixtures/fuzz/`-style directories.
//!
//! # Replaying a failure
//!
//! A failing property panics with (and prints to stderr) a reproducer
//! line. Re-run just that case with:
//!
//! ```text
//! SPEED_TESTKIT_SEED=0xdeadbeefcafef00d cargo test --test store_model
//! ```
//!
//! The runner treats the environment seed as case 0, so the failure —
//! including its deterministic shrink — reproduces immediately.
//! `SPEED_TESTKIT_CASES=N` overrides the case count (useful for longer
//! randomized smoke passes in CI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod fault;
pub mod gen;
pub mod load;
pub mod mutate;
pub mod rng;
pub mod runner;
pub mod shrink;
pub mod wiregen;

pub use rng::TestRng;
pub use runner::{check, check_with, Config};
pub use shrink::Shrink;
