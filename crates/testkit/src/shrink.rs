//! Greedy structural shrinking.
//!
//! When a property fails, the runner repeatedly asks the counterexample
//! for smaller candidates and keeps the first candidate that still fails,
//! until no candidate fails. "Smaller" must be well-founded: every value
//! a [`Shrink::shrink`] implementation returns has to be strictly simpler
//! than its parent (fewer elements, smaller magnitude), or shrinking
//! would loop forever.

/// Types that can propose strictly simpler versions of themselves.
pub trait Shrink: Sized {
    /// Candidate simplifications, most aggressive first. Must all be
    /// strictly simpler than `self`; an empty vector means fully shrunk.
    fn shrink(&self) -> Vec<Self>;
}

macro_rules! impl_shrink_uint {
    ($($ty:ty),*) => {$(
        impl Shrink for $ty {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v == 0 {
                    return out;
                }
                out.push(0);
                if v / 2 != 0 {
                    out.push(v / 2);
                }
                if v - 1 != v / 2 {
                    out.push(v - 1);
                }
                out
            }
        }
    )*};
}

impl_shrink_uint!(u8, u16, u32, u64, usize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<T: Clone + Shrink> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Aggressive first: drop the whole thing, then halves, then
        // single elements, then shrink elements in place.
        out.push(Vec::new());
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        for index in 0..n {
            let mut removed = self.clone();
            removed.remove(index);
            out.push(removed);
        }
        for index in 0..n {
            for candidate in self[index].shrink() {
                let mut replaced = self.clone();
                replaced[index] = candidate;
                out.push(replaced);
            }
        }
        out
    }
}

/// Component-wise tuple shrinking: each candidate simplifies exactly one
/// component and clones the rest, so candidates stay strictly simpler.
macro_rules! impl_shrink_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Clone + Shrink),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink() {
                        let mut next = self.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_shrink_tuple!(A: 0, B: 1);
impl_shrink_tuple!(A: 0, B: 1, C: 2);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// A value the runner should not attempt to shrink (wrap inputs whose
/// structure carries no simplification, e.g. a fixed key).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NoShrink<T>(pub T);

impl<T: Clone> Shrink for NoShrink<T> {
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shrinking must be well-founded: follow any chain of candidates and
    /// it terminates.
    fn chain_terminates<T: Shrink + Clone>(mut value: T, limit: usize) {
        for _ in 0..limit {
            match value.shrink().into_iter().next() {
                Some(next) => value = next,
                None => return,
            }
        }
        panic!("shrink chain exceeded {limit} steps");
    }

    #[test]
    fn integers_shrink_toward_zero() {
        assert!(0u32.shrink().is_empty());
        assert_eq!(1u32.shrink(), vec![0]);
        let candidates = 100u32.shrink();
        assert!(candidates.contains(&0));
        assert!(candidates.contains(&50));
        assert!(candidates.contains(&99));
        assert!(candidates.iter().all(|&c| c < 100));
        chain_terminates(u64::MAX, 200);
    }

    #[test]
    fn vectors_shrink_by_removal_and_element() {
        let v = vec![4u8, 7];
        let candidates = v.shrink();
        assert!(candidates.contains(&Vec::new()));
        assert!(candidates.contains(&vec![4]));
        assert!(candidates.contains(&vec![7]));
        assert!(candidates.contains(&vec![0, 7]), "element shrink");
        chain_terminates(vec![9u8; 40], 4000);
    }

    #[test]
    fn empty_vec_is_fully_shrunk() {
        assert!(Vec::<u8>::new().shrink().is_empty());
    }

    #[test]
    fn tuples_shrink_componentwise() {
        let t = (2u8, vec![1u8]);
        let candidates = t.shrink();
        assert!(candidates.contains(&(0, vec![1])));
        assert!(candidates.contains(&(2, vec![])));
    }

    #[test]
    fn no_shrink_is_inert() {
        assert!(NoShrink(vec![1u8, 2, 3]).shrink().is_empty());
    }
}
