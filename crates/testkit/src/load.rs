//! Seeded open-loop load generation.
//!
//! Closed-loop harnesses (issue the next request when the previous one
//! returns) hide queueing delay: the generator slows down exactly when the
//! system does, so tail latency looks flat right up to collapse. An
//! *open-loop* generator schedules arrivals from a Poisson process that
//! does not care how the system is doing, and a request's latency is
//! measured from its **scheduled arrival**, queueing included — the
//! methodology of the SGX benchmarking literature this repo's BENCH files
//! follow.
//!
//! [`LoadSchedule::generate`] builds the full request schedule up front
//! from one seed: exponential inter-arrival times at a configured mean
//! rate, a Zipf-popularity user population, and an input sequence with a
//! configurable repeat (dedup-hit) ratio whose repeats are Zipf-biased
//! toward popular inputs. The same seed always yields the identical
//! schedule, so every benchmark row is replayable.
//!
//! [`replay_open_loop`] then turns per-request *service* times (measured
//! any way the harness likes) into open-loop completion times against the
//! arrival schedule for a given worker count, yielding p50/p99/p999
//! latency and sustained throughput deterministically — no wall-clock
//! pacing, so CI runs are stable.

use crate::rng::TestRng;

/// Configuration for one generated load schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadConfig {
    /// Base seed; the entire schedule is a pure function of it.
    pub seed: u64,
    /// Mean arrival rate in requests per second (Poisson process).
    pub rate_per_sec: f64,
    /// Total requests to schedule.
    pub requests: usize,
    /// User population size (users are Zipf-popular).
    pub users: usize,
    /// Distinct input population size.
    pub inputs: usize,
    /// Zipf exponent for user and repeated-input popularity (0 =
    /// uniform; ~1 is web-like skew).
    pub zipf_s: f64,
    /// Target fraction of requests that repeat an already-issued input —
    /// the knob that sets the dedup hit ratio downstream.
    pub hit_ratio: f64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            seed: 0x10AD_5EED,
            rate_per_sec: 10_000.0,
            requests: 10_000,
            users: 1_000,
            inputs: 1_000,
            zipf_s: 1.0,
            hit_ratio: 0.5,
        }
    }
}

/// One scheduled request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Scheduled arrival, nanoseconds since the start of the run.
    pub arrival_ns: u64,
    /// Issuing user (an index into the Zipf-ranked population).
    pub user: usize,
    /// Input index into the distinct-input corpus.
    pub input: usize,
    /// Whether the input repeats an earlier request in this schedule.
    pub repeat: bool,
}

/// Zipf sampler over ranks `0..n`: rank `r` has weight `1/(r+1)^s`,
/// sampled by binary search over the cumulative weights.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf population must be non-empty");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be finite and >= 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Draws one rank in `[0, n)`.
    pub fn sample(&self, rng: &mut TestRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty population");
        let u = unit_f64(rng) * total;
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1)
    }
}

/// A uniform draw in `[0, 1)` from the top 53 bits of one `u64`.
fn unit_f64(rng: &mut TestRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A fully materialized open-loop request schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadSchedule {
    config: LoadConfig,
    requests: Vec<Request>,
}

impl LoadSchedule {
    /// Generates the schedule — a pure function of `config` (and thus of
    /// `config.seed`).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive, populations are empty, or the
    /// hit ratio is outside `[0, 1]`.
    pub fn generate(config: LoadConfig) -> Self {
        assert!(
            config.rate_per_sec > 0.0 && config.rate_per_sec.is_finite(),
            "arrival rate must be positive"
        );
        assert!((0.0..=1.0).contains(&config.hit_ratio), "hit ratio must be in [0, 1]");
        let mut rng = TestRng::new(config.seed);
        let users = Zipf::new(config.users, config.zipf_s);
        let mean_gap_ns = 1e9 / config.rate_per_sec;

        let mut requests = Vec::with_capacity(config.requests);
        let mut clock_ns = 0u64;
        let mut seen: Vec<usize> = Vec::new();
        let mut next_fresh = 0usize;
        for _ in 0..config.requests {
            // Exponential inter-arrival: -ln(1-u) * mean.
            let u = unit_f64(&mut rng);
            let gap = (-(1.0 - u).ln() * mean_gap_ns).round();
            clock_ns += gap as u64;

            let user = users.sample(&mut rng);
            let want_repeat = !seen.is_empty() && unit_f64(&mut rng) < config.hit_ratio;
            let (input, repeat) = if want_repeat || next_fresh >= config.inputs {
                // Zipf over first-seen order: early inputs stay popular.
                let pick = Zipf::new(seen.len(), config.zipf_s).sample(&mut rng);
                (seen[pick], true)
            } else {
                let fresh = next_fresh;
                seen.push(fresh);
                next_fresh += 1;
                (fresh, false)
            };
            requests.push(Request { arrival_ns: clock_ns, user, input, repeat });
        }
        LoadSchedule { config, requests }
    }

    /// The generating configuration.
    pub fn config(&self) -> &LoadConfig {
        &self.config
    }

    /// The scheduled requests, in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// The scheduled arrival instants, in order.
    pub fn arrivals_ns(&self) -> Vec<u64> {
        self.requests.iter().map(|r| r.arrival_ns).collect()
    }

    /// Fraction of requests that repeat an earlier input.
    pub fn observed_repeat_ratio(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        let repeats = self.requests.iter().filter(|r| r.repeat).count();
        repeats as f64 / self.requests.len() as f64
    }

    /// Distinct inputs actually referenced.
    pub fn distinct_inputs(&self) -> usize {
        let mut seen: Vec<usize> = self.requests.iter().map(|r| r.input).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

/// Latency percentiles over one run, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Worst observed.
    pub max_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
}

/// The nearest-rank percentile of a **sorted** latency slice.
pub fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1]
}

/// Summarizes latencies (sorts a copy; the input order is preserved).
pub fn summarize(latencies_ns: &[u64]) -> LatencySummary {
    if latencies_ns.is_empty() {
        return LatencySummary::default();
    }
    let mut sorted = latencies_ns.to_vec();
    sorted.sort_unstable();
    let sum: u128 = sorted.iter().map(|&v| u128::from(v)).sum();
    LatencySummary {
        p50_ns: percentile(&sorted, 50.0),
        p99_ns: percentile(&sorted, 99.0),
        p999_ns: percentile(&sorted, 99.9),
        max_ns: *sorted.last().expect("non-empty"),
        mean_ns: (sum / sorted.len() as u128) as u64,
    }
}

/// The outcome of replaying one schedule at one offered rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpenLoopReport {
    /// Requests replayed.
    pub requests: usize,
    /// Offered arrival rate implied by the schedule, requests/second.
    pub offered_rate: f64,
    /// Sustained completion throughput, requests/second.
    pub throughput: f64,
    /// Open-loop latency (completion minus **scheduled arrival**).
    pub latency: LatencySummary,
}

/// Replays an arrival schedule against measured per-request service times
/// through `workers` parallel servers (a deterministic G/G/c queue).
///
/// A request begins service at `max(its arrival, earliest worker free
/// time)` and its latency counts from the scheduled arrival — queueing
/// delay from an overloaded schedule shows up in the tail percentiles
/// exactly as it would on the wire.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or `workers` is zero.
pub fn replay_open_loop(
    arrivals_ns: &[u64],
    service_ns: &[u64],
    workers: usize,
) -> OpenLoopReport {
    assert_eq!(arrivals_ns.len(), service_ns.len(), "one service time per arrival");
    assert!(!arrivals_ns.is_empty(), "empty schedule");
    assert!(workers > 0, "need at least one worker");

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut free_at: BinaryHeap<Reverse<u64>> =
        (0..workers).map(|_| Reverse(0u64)).collect();
    let mut latencies = Vec::with_capacity(arrivals_ns.len());
    let mut last_finish = 0u64;
    for (&arrival, &service) in arrivals_ns.iter().zip(service_ns) {
        let Reverse(free) = free_at.pop().expect("worker heap never empties");
        let start = arrival.max(free);
        let finish = start + service;
        free_at.push(Reverse(finish));
        last_finish = last_finish.max(finish);
        latencies.push(finish - arrival);
    }
    let first_arrival = arrivals_ns[0];
    let span_ns = last_finish.saturating_sub(first_arrival).max(1);
    let n = arrivals_ns.len();
    let offered_span = arrivals_ns[n - 1].saturating_sub(first_arrival).max(1);
    OpenLoopReport {
        requests: n,
        offered_rate: n as f64 * 1e9 / offered_span as f64,
        throughput: n as f64 * 1e9 / span_ns as f64,
        latency: summarize(&latencies),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LoadConfig {
        LoadConfig {
            seed: 0xABCD,
            rate_per_sec: 1_000.0,
            requests: 2_000,
            users: 50,
            inputs: 100,
            zipf_s: 1.0,
            hit_ratio: 0.6,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = LoadSchedule::generate(small());
        let b = LoadSchedule::generate(small());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_schedule() {
        let a = LoadSchedule::generate(small());
        let b = LoadSchedule::generate(LoadConfig { seed: 0xABCE, ..small() });
        assert_ne!(a.requests(), b.requests());
    }

    #[test]
    fn arrivals_are_monotonic_and_indices_bounded() {
        let schedule = LoadSchedule::generate(small());
        let config = small();
        let mut prev = 0u64;
        for request in schedule.requests() {
            assert!(request.arrival_ns >= prev);
            prev = request.arrival_ns;
            assert!(request.user < config.users);
            assert!(request.input < config.inputs);
        }
    }

    #[test]
    fn repeat_ratio_tracks_config() {
        // The input pool must be larger than the expected fresh draws
        // (requests × (1 − hit_ratio)), or exhaustion forces extra repeats.
        let config = LoadConfig { inputs: 2_000, ..small() };
        let schedule = LoadSchedule::generate(config);
        let observed = schedule.observed_repeat_ratio();
        assert!((observed - 0.6).abs() < 0.1, "observed repeat ratio {observed}");
    }

    #[test]
    fn exhausted_input_pool_forces_repeats() {
        let config = LoadConfig { inputs: 10, hit_ratio: 0.0, ..small() };
        let schedule = LoadSchedule::generate(config);
        assert!(schedule.observed_repeat_ratio() > 0.9);
        assert_eq!(schedule.distinct_inputs(), 10);
    }

    #[test]
    fn mean_rate_tracks_config() {
        let schedule = LoadSchedule::generate(small());
        let requests = schedule.requests();
        let span_s = requests.last().expect("non-empty").arrival_ns as f64 / 1e9;
        let rate = requests.len() as f64 / span_s;
        assert!(
            (rate - 1_000.0).abs() < 100.0,
            "mean arrival rate {rate} far from configured 1000/s"
        );
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let zipf = Zipf::new(100, 1.2);
        let mut rng = TestRng::new(42);
        let draws: Vec<usize> = (0..2_000).map(|_| zipf.sample(&mut rng)).collect();
        let low = draws.iter().filter(|&&r| r < 10).count();
        assert!(low > draws.len() / 3, "only {low} of {} draws in top 10", draws.len());
        assert!(draws.iter().all(|&r| r < 100));
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = TestRng::new(43);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "uniform bucket count {c}");
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 99.9), 100);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn open_loop_latency_includes_queueing() {
        // Two instant arrivals, one worker, 100ns service: the second
        // request queues behind the first.
        let report = replay_open_loop(&[0, 0], &[100, 100], 1);
        assert_eq!(report.latency.p50_ns, 100);
        assert_eq!(report.latency.max_ns, 200);
        // Two workers: no queueing.
        let report = replay_open_loop(&[0, 0], &[100, 100], 2);
        assert_eq!(report.latency.max_ns, 100);
    }

    #[test]
    fn overload_shows_in_the_tail() {
        // Offered 1 req/100ns, service 150ns, one worker: the queue grows
        // without bound, so late requests see far larger latency.
        // Queueing delay grows ~50ns per request, so the tail sits near
        // twice the median and far above the 150ns service time.
        let arrivals: Vec<u64> = (0..1000).map(|i| i * 100).collect();
        let service = vec![150u64; 1000];
        let report = replay_open_loop(&arrivals, &service, 1);
        assert!(report.latency.p999_ns > 100 * 150);
        assert!(
            report.latency.p999_ns as f64 > 1.8 * report.latency.p50_ns as f64,
            "p999 {} vs p50 {}",
            report.latency.p999_ns,
            report.latency.p50_ns
        );
        assert!(report.throughput < report.offered_rate);
    }
}
