//! Filesystem fault injection for the store's durability paths.
//!
//! [`FaultVfs`] wraps the production [`StdVfs`] behind the same
//! [`Vfs`] seam the store writes through, and fails chosen operations at
//! chosen points: the *n*-th `fsync`, the next `rename`, every `append`
//! once a simulated disk fills, and so on. Because the store routes every
//! durable byte through the seam, one armed fault maps to exactly one
//! failed syscall at a deterministic point in the workload — the
//! ingredient the crash-recovery harness in `tests/crash_recovery.rs`
//! needs to assert the durability contract (no acknowledged PUT lost, no
//! rejected PUT resurfacing) under each failure.
//!
//! Faults are armed per operation kind:
//!
//! ```
//! use speed_testkit::fault::{FailMode, FaultOp, FaultVfs};
//! use speed_store::vfs::Vfs;
//!
//! let vfs = FaultVfs::new();
//! // The third fsync fails once; later fsyncs succeed again.
//! vfs.fail_nth(FaultOp::Fsync, 2, FailMode::Once);
//! // Everything after the first 4 KiB of writes hits ENOSPC.
//! vfs.set_disk_capacity(Some(4096));
//! ```

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use speed_store::vfs::{StdVfs, Vfs};

/// The operations a fault can target — one per [`Vfs`] method that can
/// fail in production.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum FaultOp {
    /// [`Vfs::read`].
    Read,
    /// [`Vfs::write`].
    Write,
    /// [`Vfs::append`].
    Append,
    /// [`Vfs::truncate`].
    Truncate,
    /// [`Vfs::fsync`].
    Fsync,
    /// [`Vfs::fsync_dir`].
    FsyncDir,
    /// [`Vfs::rename`].
    Rename,
    /// [`Vfs::remove_file`].
    RemoveFile,
}

/// Whether an armed fault fires once or keeps firing (a dead disk).
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum FailMode {
    /// Fail the targeted call only; later calls succeed again.
    Once,
    /// Fail the targeted call and every later call of the same operation.
    Sticky,
}

#[derive(Clone, Copy, Debug)]
struct Fault {
    at: u64,
    mode: FailMode,
}

#[derive(Debug, Default)]
struct State {
    counts: HashMap<FaultOp, u64>,
    faults: HashMap<FaultOp, Vec<Fault>>,
    /// Total simulated disk capacity in bytes, charged by `write` and
    /// `append`; `None` = unlimited.
    capacity: Option<u64>,
    used: u64,
}

/// A [`Vfs`] that injects deterministic failures. See the module docs.
#[derive(Debug)]
pub struct FaultVfs {
    inner: StdVfs,
    state: Mutex<State>,
    injected: AtomicU64,
}

impl FaultVfs {
    /// A fresh fault-free instance (behaves exactly like [`StdVfs`] until
    /// faults are armed).
    pub fn new() -> Arc<Self> {
        Arc::new(FaultVfs {
            inner: StdVfs,
            state: Mutex::new(State::default()),
            injected: AtomicU64::new(0),
        })
    }

    /// Arms a fault: the `n`-th (0-based) future call of `op` fails with
    /// an injected I/O error. [`FailMode::Sticky`] also fails every call
    /// after the `n`-th. Counting starts at the *current* call count, so
    /// arming mid-run targets upcoming operations.
    pub fn fail_nth(&self, op: FaultOp, n: u64, mode: FailMode) {
        let mut state = self.lock();
        let base = state.counts.get(&op).copied().unwrap_or(0);
        state.faults.entry(op).or_default().push(Fault { at: base + n, mode });
    }

    /// Simulates a disk with `bytes` total capacity: once cumulative
    /// `write`/`append` bytes exceed it, those operations fail with a
    /// no-space error *before* touching the file (all-or-nothing; torn
    /// partial appends are exercised separately by the truncation matrix).
    /// `None` restores unlimited capacity. Bytes already charged remain
    /// charged — raising the limit models swapping in a bigger disk.
    pub fn set_disk_capacity(&self, bytes: Option<u64>) {
        self.lock().capacity = bytes;
    }

    /// Disarms every pending fault (capacity limits included).
    pub fn clear_faults(&self) {
        let mut state = self.lock();
        state.faults.clear();
        state.capacity = None;
    }

    /// How many calls of `op` the store has made so far (failed ones
    /// included). Drives exhaustive fault-point matrices: run once to
    /// count, then re-run failing each point in turn.
    pub fn op_count(&self, op: FaultOp) -> u64 {
        self.lock().counts.get(&op).copied().unwrap_or(0)
    }

    /// How many injected failures actually fired.
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Counts one call of `op`; returns the injected error if a fault
    /// covers this call.
    fn check(&self, op: FaultOp) -> io::Result<()> {
        let mut state = self.lock();
        let idx = state.counts.entry(op).or_insert(0);
        let current = *idx;
        *idx += 1;
        let Some(faults) = state.faults.get_mut(&op) else { return Ok(()) };
        let mut fired = false;
        faults.retain(|fault| match fault.mode {
            FailMode::Once => {
                if fault.at == current {
                    fired = true;
                    false // consumed
                } else {
                    true
                }
            }
            FailMode::Sticky => {
                if current >= fault.at {
                    fired = true;
                }
                true
            }
        });
        if fired {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other(format!(
                "injected fault: {op:?} call #{current}"
            )));
        }
        Ok(())
    }

    /// Charges `len` bytes against the simulated disk, failing when full.
    fn charge(&self, len: u64) -> io::Result<()> {
        let mut state = self.lock();
        if let Some(capacity) = state.capacity {
            if state.used.saturating_add(len) > capacity {
                drop(state);
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Err(io::Error::other(
                    "injected fault: no space left on simulated disk",
                ));
            }
        }
        state.used = state.used.saturating_add(len);
        Ok(())
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check(FaultOp::Read)?;
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.check(FaultOp::Write)?;
        self.charge(bytes.len() as u64)?;
        self.inner.write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.check(FaultOp::Append)?;
        self.charge(bytes.len() as u64)?;
        self.inner.append(path, bytes)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.check(FaultOp::Truncate)?;
        self.inner.truncate(path, len)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        self.check(FaultOp::Fsync)?;
        self.inner.fsync(path)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        self.check(FaultOp::FsyncDir)?;
        self.inner.fsync_dir(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check(FaultOp::Rename)?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.check(FaultOp::RemoveFile)?;
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(dir)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(label: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("speed-fault-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn nth_fsync_fails_once_then_recovers() {
        let dir = scratch("nth");
        let vfs = FaultVfs::new();
        let path = dir.join("f");
        vfs.write(&path, b"x").unwrap();
        vfs.fail_nth(FaultOp::Fsync, 1, FailMode::Once);
        vfs.fsync(&path).unwrap(); // call 0
        assert!(vfs.fsync(&path).is_err()); // call 1: armed
        vfs.fsync(&path).unwrap(); // call 2: consumed
        assert_eq!(vfs.injected_failures(), 1);
        assert_eq!(vfs.op_count(FaultOp::Fsync), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sticky_fault_keeps_failing() {
        let dir = scratch("sticky");
        let vfs = FaultVfs::new();
        let path = dir.join("f");
        vfs.fail_nth(FaultOp::Append, 1, FailMode::Sticky);
        vfs.append(&path, b"a").unwrap();
        assert!(vfs.append(&path, b"b").is_err());
        assert!(vfs.append(&path, b"c").is_err());
        vfs.clear_faults();
        vfs.append(&path, b"d").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"ad");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_enforces_enospc_without_partial_write() {
        let dir = scratch("enospc");
        let vfs = FaultVfs::new();
        let path = dir.join("f");
        vfs.set_disk_capacity(Some(4));
        vfs.append(&path, b"abc").unwrap();
        assert!(vfs.append(&path, b"de").is_err(), "would exceed capacity");
        assert_eq!(vfs.read(&path).unwrap(), b"abc", "failed append wrote nothing");
        vfs.append(&path, b"d").unwrap(); // exactly fills the disk
        assert!(vfs.append(&path, b"e").is_err());
        vfs.set_disk_capacity(Some(100)); // bigger disk swapped in
        vfs.append(&path, b"e").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn arming_mid_run_counts_from_now() {
        let dir = scratch("midrun");
        let vfs = FaultVfs::new();
        let path = dir.join("f");
        vfs.write(&path, b"x").unwrap();
        vfs.write(&path, b"y").unwrap();
        vfs.fail_nth(FaultOp::Write, 0, FailMode::Once); // the NEXT write
        assert!(vfs.write(&path, b"z").is_err());
        vfs.write(&path, b"w").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
