//! Byte-level mutators for fuzzing codecs.
//!
//! Starting from a *valid* encoding and applying a handful of structured
//! corruptions reaches deep decoder states that uniformly random bytes
//! never would (a random 200-byte buffer is rejected at the first length
//! prefix; a valid message with one flipped length byte exercises the
//! overflow paths). These are the classic mutation operators: bit flips,
//! byte sets, truncation, duplication, deletion, and hostile length
//! prefixes.

use crate::rng::TestRng;

/// One mutation applied to `bytes` in place. No-ops on empty input for
/// operators that need at least one byte.
pub fn mutate_once(rng: &mut TestRng, bytes: &mut Vec<u8>) {
    match rng.range_u64(0, 6) {
        // Flip one bit.
        0 if !bytes.is_empty() => {
            let at = rng.range_usize(0, bytes.len() - 1);
            bytes[at] ^= 1 << rng.range_u64(0, 7);
        }
        // Overwrite one byte with a boundary-ish value.
        1 if !bytes.is_empty() => {
            let at = rng.range_usize(0, bytes.len() - 1);
            bytes[at] = *rng.pick(&[0x00, 0x01, 0x7F, 0x80, 0xFE, 0xFF]);
        }
        // Truncate.
        2 if !bytes.is_empty() => {
            let keep = rng.range_usize(0, bytes.len() - 1);
            bytes.truncate(keep);
        }
        // Insert random bytes.
        3 => {
            let at = rng.range_usize(0, bytes.len());
            let insert = rng.bytes(8);
            bytes.splice(at..at, insert);
        }
        // Delete a run.
        4 if !bytes.is_empty() => {
            let start = rng.range_usize(0, bytes.len() - 1);
            let end = rng.range_usize(start, bytes.len() - 1) + 1;
            bytes.drain(start..end);
        }
        // Stamp a hostile little-endian u32 length prefix somewhere.
        5 if bytes.len() >= 4 => {
            let at = rng.range_usize(0, bytes.len() - 4);
            let hostile: u32 =
                *rng.pick(&[u32::MAX, u32::MAX - 1, 0x8000_0000, 0x7FFF_FFFF, 4096]);
            bytes[at..at + 4].copy_from_slice(&hostile.to_le_bytes());
        }
        // Duplicate a run (confuses delimiters and trailing-byte checks).
        _ if !bytes.is_empty() => {
            let start = rng.range_usize(0, bytes.len() - 1);
            let end = rng.range_usize(start, bytes.len() - 1) + 1;
            let run = bytes[start..end].to_vec();
            let at = rng.range_usize(0, bytes.len());
            bytes.splice(at..at, run);
        }
        _ => {}
    }
}

/// Applies `1..=rounds` mutations to a copy of `bytes`.
pub fn mutated(rng: &mut TestRng, bytes: &[u8], rounds: usize) -> Vec<u8> {
    let mut out = bytes.to_vec();
    for _ in 0..rng.range_usize(1, rounds.max(1)) {
        mutate_once(rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutations_eventually_change_the_input() {
        let mut rng = TestRng::new(1);
        let original = vec![7u8; 64];
        let changed = (0..100)
            .map(|_| mutated(&mut rng, &original, 3))
            .filter(|m| *m != original)
            .count();
        assert!(changed > 90, "changed={changed}");
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let original: Vec<u8> = (0..64).collect();
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..50 {
            assert_eq!(mutated(&mut a, &original, 4), mutated(&mut b, &original, 4));
        }
    }

    #[test]
    fn empty_input_never_panics() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let mut empty = Vec::new();
            mutate_once(&mut rng, &mut empty);
        }
    }

    #[test]
    fn mutations_cover_growth_and_shrinkage() {
        let mut rng = TestRng::new(3);
        let original = vec![1u8; 32];
        let mut grew = false;
        let mut shrank = false;
        for _ in 0..200 {
            let m = mutated(&mut rng, &original, 2);
            grew |= m.len() > original.len();
            shrank |= m.len() < original.len();
        }
        assert!(grew && shrank);
    }
}
