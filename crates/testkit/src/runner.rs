//! The property runner: generate, check, shrink, report.
//!
//! [`check`] draws `cases` values from a generator and runs the property
//! on each. A property fails by panicking (`assert!` and friends work as
//! usual). On failure the runner greedily shrinks the counterexample via
//! [`Shrink`] and panics with a report that includes a one-line
//! reproducer:
//!
//! ```text
//! SPEED_TESTKIT_SEED=0x00000000deadbeef # re-runs property 'store_model'
//! ```
//!
//! Setting that variable makes the failing case run as case 0, so the
//! failure — and its deterministic shrink — replays immediately.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{case_seed, TestRng};
use crate::shrink::Shrink;

/// Environment variable overriding the base seed (hex with `0x` prefix, or
/// decimal). Printed by every failure report.
pub const SEED_ENV: &str = "SPEED_TESTKIT_SEED";

/// Environment variable overriding the number of cases per property.
pub const CASES_ENV: &str = "SPEED_TESTKIT_CASES";

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Base seed; per-case seeds derive from it (case 0 uses it verbatim).
    pub seed: u64,
    /// Number of generated cases.
    pub cases: u64,
    /// Upper bound on property evaluations spent shrinking one failure.
    pub max_shrink_evals: u64,
}

impl Config {
    /// The default configuration for `default_seed`: 64 cases, generous
    /// shrink budget, overridden by [`SEED_ENV`] / [`CASES_ENV`] when set.
    pub fn from_env(default_seed: u64) -> Self {
        let seed = std::env::var(SEED_ENV)
            .ok()
            .and_then(|raw| parse_seed(&raw))
            .unwrap_or(default_seed);
        let cases = std::env::var(CASES_ENV)
            .ok()
            .and_then(|raw| raw.parse::<u64>().ok())
            .unwrap_or(64)
            .max(1);
        Config { seed, cases, max_shrink_evals: 20_000 }
    }
}

fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse::<u64>().ok()
    }
}

/// Runs `prop` once, capturing a panic as the failure message.
fn run_case<T, P: Fn(&T)>(prop: &P, value: &T) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(()) => None,
        Err(payload) => Some(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Greedily shrinks `value` while `prop` keeps failing on the candidates.
/// Returns the shrunk value and the number of successful shrink steps.
fn shrink_failure<T, P>(prop: &P, value: T, max_evals: u64) -> (T, u64)
where
    T: Shrink,
    P: Fn(&T),
{
    let mut current = value;
    let mut steps = 0u64;
    let mut evals = 0u64;
    'outer: loop {
        for candidate in current.shrink() {
            if evals >= max_evals {
                break 'outer;
            }
            evals += 1;
            if run_case(prop, &candidate).is_some() {
                current = candidate;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, steps)
}

/// Checks `prop` against `cases` values drawn from `gen`, with the seed
/// and case count resolved from the environment ([`SEED_ENV`],
/// [`CASES_ENV`]) falling back to `default_seed` / 64 cases.
///
/// # Panics
///
/// Panics with a shrunk counterexample and a `SPEED_TESTKIT_SEED=…`
/// reproducer line if the property fails on any case.
pub fn check<T, G, P>(name: &str, default_seed: u64, gen: G, prop: P)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: Fn(&mut TestRng) -> T,
    P: Fn(&T),
{
    check_with(name, Config::from_env(default_seed), gen, prop);
}

/// [`check`] with an explicit configuration (no environment lookup for the
/// seed and case count beyond what the caller already did).
pub fn check_with<T, G, P>(name: &str, config: Config, gen: G, prop: P)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: Fn(&mut TestRng) -> T,
    P: Fn(&T),
{
    for case in 0..config.cases {
        let seed = case_seed(config.seed, case);
        let mut rng = TestRng::new(seed);
        let value = gen(&mut rng);
        let Some(message) = run_case(&prop, &value) else {
            continue;
        };
        let (shrunk, steps) =
            shrink_failure(&prop, value.clone(), config.max_shrink_evals);
        let final_message = run_case(&prop, &shrunk).unwrap_or(message);
        // The one-line reproducer, greppable by CI and copy-pastable by
        // humans. Keep the `SPEED_TESTKIT_SEED=` prefix stable.
        eprintln!("{SEED_ENV}={seed:#018x} # re-runs property '{name}'");
        panic!(
            "[speed-testkit] property '{name}' failed on case {case} of {cases}\n\
             reproducer:     {SEED_ENV}={seed:#018x}\n\
             shrunk ({steps} steps): {shrunk:?}\n\
             failure:        {final_message}",
            cases = config.cases,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn silent_cfg(seed: u64) -> Config {
        Config { seed, cases: 64, max_shrink_evals: 20_000 }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u64);
        check_with(
            "always-true",
            silent_cfg(1),
            |rng| rng.bytes(16),
            |_v| counter.set(counter.get() + 1),
        );
        assert_eq!(counter.get(), 64);
    }

    #[test]
    fn failing_property_shrinks_to_minimal_counterexample() {
        // Property: no vector contains a byte >= 10. The minimal
        // counterexample is a single-element vector [10].
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_with(
                "no-big-bytes",
                silent_cfg(2),
                |rng| rng.bytes(64),
                |v: &Vec<u8>| assert!(v.iter().all(|&b| b < 10), "big byte"),
            );
        }));
        let message = panic_message(result.unwrap_err().as_ref());
        assert!(message.contains("property 'no-big-bytes' failed"), "{message}");
        assert!(message.contains("SPEED_TESTKIT_SEED=0x"), "{message}");
        assert!(message.contains("shrunk"), "{message}");
        // The shrunk counterexample is exactly [10].
        assert!(message.contains("[10]"), "{message}");
    }

    #[test]
    fn reproducer_seed_replays_the_failure_as_case_zero() {
        // Find the failing case seed for a property failing rarely.
        let prop = |v: &Vec<u8>| assert!(!v.contains(&0x42));
        let mut failing_seed = None;
        for case in 0..10_000u64 {
            let seed = crate::rng::case_seed(777, case);
            let mut rng = TestRng::new(seed);
            let value: Vec<u8> = rng.bytes(48);
            if run_case(&prop, &value).is_some() {
                failing_seed = Some(seed);
                break;
            }
        }
        let failing_seed = failing_seed.expect("some case must contain 0x42");
        // Replaying with that seed as the base fails on case 0.
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_with(
                "replay",
                Config { seed: failing_seed, cases: 1, max_shrink_evals: 20_000 },
                |rng| rng.bytes(48),
                prop,
            );
        }));
        let message = panic_message(result.unwrap_err().as_ref());
        assert!(message.contains("failed on case 0"), "{message}");
    }

    #[test]
    fn shrink_budget_is_respected() {
        // A property that always fails: shrinking stops at the budget
        // instead of exhaustively exploring the candidate tree.
        let evals = std::cell::Cell::new(0u64);
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_with(
                "always-false",
                Config { seed: 3, cases: 1, max_shrink_evals: 50 },
                |rng| rng.bytes(256),
                |_v| {
                    evals.set(evals.get() + 1);
                    panic!("always fails");
                },
            );
        }));
        assert!(result.is_err());
        // 1 original + <= 50 shrink evals + 1 final re-run.
        assert!(evals.get() <= 52, "evals={}", evals.get());
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed("0XFF"), Some(255));
        assert_eq!(parse_seed("17"), Some(17));
        assert_eq!(parse_seed(" 17 "), Some(17));
        assert_eq!(parse_seed("zzz"), None);
    }
}
