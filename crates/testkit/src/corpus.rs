//! Loading checked-in fuzz corpora.
//!
//! A corpus is a directory of small binary files, each one input that once
//! mattered: a decoder crash, a hostile length prefix, a truncation that
//! reached an interesting branch. Committing them turns every past finding
//! into a permanent regression test that runs without any randomness.

use std::path::{Path, PathBuf};

/// One corpus entry: the file name (for failure messages) and its bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// File name within the corpus directory.
    pub name: String,
    /// Raw input bytes.
    pub bytes: Vec<u8>,
}

/// Loads every regular file in `dir`, sorted by name for deterministic
/// iteration order.
///
/// # Errors
///
/// Returns an I/O error if the directory cannot be read. A missing
/// directory is an error too: a corpus test that silently runs on nothing
/// would be worse than no test.
pub fn load_dir(dir: &Path) -> std::io::Result<Vec<CorpusEntry>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|entry| entry.path())
        .filter(|path| path.is_file())
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            Ok(CorpusEntry { name, bytes: std::fs::read(&path)? })
        })
        .collect()
}

/// Writes `bytes` as a corpus file named `name` under `dir`, creating the
/// directory if needed. Used by `--ignored` regeneration tests.
///
/// # Errors
///
/// Returns an I/O error if the directory or file cannot be written.
pub fn save(dir: &Path, name: &str, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(name), bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("speed-testkit-corpus-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_then_load_roundtrips_sorted() {
        let dir = scratch_dir("roundtrip");
        save(&dir, "b_second.bin", &[2, 2]).unwrap();
        save(&dir, "a_first.bin", &[1]).unwrap();
        let entries = load_dir(&dir).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "a_first.bin");
        assert_eq!(entries[0].bytes, vec![1]);
        assert_eq!(entries[1].name, "b_second.bin");
        assert_eq!(entries[1].bytes, vec![2, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_error() {
        assert!(load_dir(Path::new("/nonexistent/speed-testkit-corpus")).is_err());
    }
}
