//! Domain generators for the dedup wire protocol.
//!
//! Every [`Message`] variant the protocol defines is reachable from
//! [`message`], so a round-trip property over it covers the full codec
//! surface — the place Harnik et al. and the switchless-transition
//! literature agree silent corruption likes to hide.

use speed_wire::{
    AppId, BatchItem, BatchItemResult, CompTag, FilterBody, GetResponseBody, Message,
    MetricsFormat, NegativeFilter, PutResponseBody, Record, RingBody, RingNodeBody,
    ShardStatsBody, StatsBody, SyncEntry, COMP_TAG_LEN,
};

use crate::rng::TestRng;

/// A uniformly random computation tag.
pub fn comp_tag(rng: &mut TestRng) -> CompTag {
    let mut bytes = [0u8; COMP_TAG_LEN];
    rng.fill(&mut bytes);
    CompTag::from_bytes(bytes)
}

/// A tag drawn from a small space (`[seed; 32]`), so generated operation
/// sequences actually collide on tags.
pub fn small_tag(rng: &mut TestRng) -> CompTag {
    CompTag::from_bytes([rng.byte(); COMP_TAG_LEN])
}

/// A random application id, biased toward small values.
pub fn app_id(rng: &mut TestRng) -> AppId {
    if rng.chance(0.8) {
        AppId(rng.range_u64(0, 7))
    } else {
        AppId(rng.next_u64())
    }
}

/// A random dedup record with up to `max_len` ciphertext bytes.
pub fn record(rng: &mut TestRng, max_len: usize) -> Record {
    let mut wrapped_key = [0u8; 16];
    rng.fill(&mut wrapped_key);
    let mut nonce = [0u8; 12];
    rng.fill(&mut nonce);
    Record {
        challenge: rng.bytes(48),
        wrapped_key,
        nonce,
        boxed_result: rng.bytes(max_len),
    }
}

/// A random batch item (GET, prefilter-carrying GET, PUT, or
/// prefilter-carrying PUT).
pub fn batch_item(rng: &mut TestRng, max_record_len: usize) -> BatchItem {
    match rng.range_u64(0, 3) {
        0 => BatchItem::Get { tag: comp_tag(rng) },
        1 => BatchItem::GetPrefiltered { tag: comp_tag(rng), prefilter: rng.next_u64() },
        2 => BatchItem::Put { tag: comp_tag(rng), record: record(rng, max_record_len) },
        _ => BatchItem::PutPrefiltered {
            tag: comp_tag(rng),
            prefilter: rng.next_u64(),
            record: record(rng, max_record_len),
        },
    }
}

/// A random negative filter: bounded size, random fill, sometimes marked
/// incomplete (both completeness states reachable).
pub fn negative_filter(rng: &mut TestRng) -> NegativeFilter {
    let mut filter = NegativeFilter::new(rng.range_usize(64, 4096), rng.byte() % 8 + 1);
    for _ in 0..rng.range_usize(0, 32) {
        filter.insert(rng.next_u64());
    }
    if rng.chance(0.25) {
        filter.mark_incomplete();
    }
    filter
}

/// A random filter snapshot with up to 8 shard filters.
pub fn filter_body(rng: &mut TestRng) -> FilterBody {
    let shard_count = rng.range_usize(0, 8);
    FilterBody {
        epoch: rng.next_u64(),
        shards: (0..shard_count).map(|_| negative_filter(rng)).collect(),
    }
}

/// A random per-item batch result (all four status codes reachable).
pub fn batch_item_result(rng: &mut TestRng, max_record_len: usize) -> BatchItemResult {
    match rng.range_u64(0, 3) {
        0 => BatchItemResult::found(record(rng, max_record_len)),
        1 => BatchItemResult::not_found(),
        2 => BatchItemResult::accepted(),
        _ => BatchItemResult::rejected(rng.ascii(32)),
    }
}

/// Random per-shard counters.
pub fn shard_stats(rng: &mut TestRng) -> ShardStatsBody {
    ShardStatsBody {
        entries: rng.range_u64(0, 1 << 20),
        stored_bytes: rng.next_u64() >> 16,
        evictions: rng.range_u64(0, 1 << 16),
        lock_contention: rng.range_u64(0, 1 << 16),
        busy_ns: rng.next_u64() >> 8,
    }
}

/// Random aggregate store statistics with up to 8 shard sections.
pub fn stats_body(rng: &mut TestRng) -> StatsBody {
    let shard_count = rng.range_usize(0, 8);
    StatsBody {
        entries: rng.range_u64(0, 1 << 20),
        gets: rng.next_u64() >> 16,
        hits: rng.next_u64() >> 16,
        puts: rng.next_u64() >> 16,
        rejected_puts: rng.range_u64(0, 1 << 16),
        stored_bytes: rng.next_u64() >> 16,
        evictions: rng.range_u64(0, 1 << 16),
        shards: (0..shard_count).map(|_| shard_stats(rng)).collect(),
    }
}

/// One random ring member (empty addresses reachable: in-process nodes).
pub fn ring_node(rng: &mut TestRng) -> RingNodeBody {
    RingNodeBody {
        id: rng.range_u64(0, 15) as u32,
        addr: if rng.chance(0.3) { String::new() } else { rng.ascii(16) },
        weight: rng.range_u64(0, 4) as u32,
    }
}

/// A random versioned ring view with up to 8 member nodes.
pub fn ring_body(rng: &mut TestRng) -> RingBody {
    let node_count = rng.range_usize(0, 8);
    RingBody {
        version: rng.next_u64(),
        nodes: (0..node_count).map(|_| ring_node(rng)).collect(),
    }
}

/// A random master-store sync entry.
pub fn sync_entry(rng: &mut TestRng, max_record_len: usize) -> SyncEntry {
    SyncEntry {
        tag: comp_tag(rng),
        record: record(rng, max_record_len),
        hits: rng.range_u64(0, 1 << 32),
    }
}

/// Number of distinct [`Message`] shapes [`message`] can produce (used by
/// coverage assertions).
pub const MESSAGE_SHAPES: u64 = 20;

/// A random protocol message covering every variant, including both
/// found/not-found GET responses and both metrics formats. `max_record_len`
/// bounds ciphertext sizes so property runs stay fast.
pub fn message(rng: &mut TestRng, max_record_len: usize) -> Message {
    match rng.range_u64(0, MESSAGE_SHAPES - 1) {
        0 => Message::GetRequest { app: app_id(rng), tag: comp_tag(rng) },
        1 => Message::GetResponse(GetResponseBody { found: false, record: None }),
        2 => Message::GetResponse(GetResponseBody {
            found: true,
            record: Some(record(rng, max_record_len)),
        }),
        3 => Message::PutRequest {
            app: app_id(rng),
            tag: comp_tag(rng),
            record: record(rng, max_record_len),
        },
        4 => Message::PutResponse(PutResponseBody { accepted: true, reason: None }),
        5 => Message::PutResponse(PutResponseBody {
            accepted: false,
            reason: Some(rng.ascii(48)),
        }),
        6 => Message::StatsRequest,
        7 => Message::StatsResponse(stats_body(rng)),
        8 => Message::SyncPull { min_hits: rng.next_u64() },
        9 => {
            let count = rng.range_usize(0, 4);
            Message::SyncBatch(
                (0..count).map(|_| sync_entry(rng, max_record_len)).collect(),
            )
        }
        10 => Message::Error(rng.ascii(64)),
        11 => {
            let count = rng.range_usize(0, 6);
            Message::BatchRequest {
                app: app_id(rng),
                items: (0..count).map(|_| batch_item(rng, max_record_len)).collect(),
            }
        }
        12 => {
            let count = rng.range_usize(0, 6);
            Message::BatchResponse(
                (0..count).map(|_| batch_item_result(rng, max_record_len)).collect(),
            )
        }
        13 => Message::MetricsRequest {
            format: if rng.chance(0.5) {
                MetricsFormat::Prometheus
            } else {
                MetricsFormat::Jsonl
            },
        },
        14 => Message::MetricsResponse(rng.ascii(128)),
        15 => Message::FilterRequest,
        16 => Message::FilterResponse(filter_body(rng)),
        17 => Message::PutPrefiltered {
            app: app_id(rng),
            tag: comp_tag(rng),
            prefilter: rng.next_u64(),
            record: record(rng, max_record_len),
        },
        18 => Message::RingRequest,
        _ => Message::RingResponse(ring_body(rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_generator_reaches_every_variant() {
        let mut rng = TestRng::new(0xC0FFEE);
        let mut discriminants = std::collections::HashSet::new();
        for _ in 0..2000 {
            let shape = match message(&mut rng, 64) {
                Message::GetRequest { .. } => 0,
                Message::GetResponse(body) if body.found => 1,
                Message::GetResponse(_) => 2,
                Message::PutRequest { .. } => 3,
                Message::PutResponse(body) if body.accepted => 4,
                Message::PutResponse(_) => 5,
                Message::StatsRequest => 6,
                Message::StatsResponse(_) => 7,
                Message::SyncPull { .. } => 8,
                Message::SyncBatch(_) => 9,
                Message::Error(_) => 10,
                Message::BatchRequest { .. } => 11,
                Message::BatchResponse(_) => 12,
                Message::MetricsRequest { .. } => 13,
                Message::MetricsResponse(_) => 14,
                Message::FilterRequest => 15,
                Message::FilterResponse(_) => 16,
                Message::PutPrefiltered { .. } => 17,
                Message::RingRequest => 18,
                Message::RingResponse(_) => 19,
                _ => 20,
            };
            discriminants.insert(shape);
        }
        assert_eq!(discriminants.len() as u64, MESSAGE_SHAPES);
    }

    #[test]
    fn batch_item_generator_reaches_every_variant() {
        let mut rng = TestRng::new(0xBA7C4);
        let mut shapes = std::collections::HashSet::new();
        for _ in 0..200 {
            let shape = match batch_item(&mut rng, 32) {
                BatchItem::Get { .. } => 0,
                BatchItem::GetPrefiltered { .. } => 1,
                BatchItem::Put { .. } => 2,
                BatchItem::PutPrefiltered { .. } => 3,
            };
            shapes.insert(shape);
        }
        assert_eq!(shapes.len(), 4, "batch_item must cover all four shapes");
    }

    #[test]
    fn small_tags_collide() {
        let mut rng = TestRng::new(1);
        let tags: std::collections::HashSet<_> =
            (0..600).map(|_| small_tag(&mut rng)).collect();
        // Only 256 possible small tags, so 600 draws must collide heavily.
        assert!(tags.len() <= 256);
    }

    #[test]
    fn records_stay_bounded() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            assert!(record(&mut rng, 32).boxed_result.len() <= 32);
        }
    }
}
