//! Composable generators.
//!
//! A generator is anything that maps a [`TestRng`] to a value; plain
//! closures qualify, so domain generators compose with ordinary function
//! application. The combinators here cover the recurring shapes —
//! collections, options, weighted choice — without the type machinery of
//! a full property-testing framework.

use crate::rng::TestRng;

/// Anything that can produce a `T` from randomness. Implemented for every
/// `Fn(&mut TestRng) -> T`, so closures are generators.
pub trait Gen<T> {
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> T;
}

impl<T, F: Fn(&mut TestRng) -> T> Gen<T> for F {
    fn generate(&self, rng: &mut TestRng) -> T {
        self(rng)
    }
}

/// A generator of `Vec<T>` with `0..=max_len` elements drawn from `item`.
pub fn vec_of<T>(item: impl Gen<T>, max_len: usize) -> impl Gen<Vec<T>> {
    move |rng: &mut TestRng| {
        let len = rng.range_usize(0, max_len);
        (0..len).map(|_| item.generate(rng)).collect()
    }
}

/// A generator of `Option<T>`: `None` with probability `none_p`.
pub fn option_of<T>(item: impl Gen<T>, none_p: f64) -> impl Gen<Option<T>> {
    move |rng: &mut TestRng| {
        if rng.chance(none_p) {
            None
        } else {
            Some(item.generate(rng))
        }
    }
}

/// A generator applying `f` to another generator's output.
pub fn map<A, B>(inner: impl Gen<A>, f: impl Fn(A) -> B) -> impl Gen<B> {
    move |rng: &mut TestRng| f(inner.generate(rng))
}

/// A generator drawing uniformly from boxed alternatives. Boxing keeps the
/// alternatives heterogeneous (each may capture different state).
pub fn one_of<T>(alternatives: Vec<Box<dyn Gen<T>>>) -> impl Gen<T> {
    assert!(!alternatives.is_empty(), "one_of with no alternatives");
    move |rng: &mut TestRng| {
        let index = rng.range_usize(0, alternatives.len() - 1);
        alternatives[index].generate(rng)
    }
}

/// A generator drawing alternatives with the given relative weights.
pub fn weighted<T>(alternatives: Vec<(u32, Box<dyn Gen<T>>)>) -> impl Gen<T> {
    let total: u64 = alternatives.iter().map(|(w, _)| u64::from(*w)).sum();
    assert!(total > 0, "weighted with zero total weight");
    move |rng: &mut TestRng| {
        let mut ticket = rng.range_u64(0, total - 1);
        for (weight, alternative) in &alternatives {
            let weight = u64::from(*weight);
            if ticket < weight {
                return alternative.generate(rng);
            }
            ticket -= weight;
        }
        unreachable!("ticket within total weight")
    }
}

/// A generator always producing clones of `value`.
pub fn just<T: Clone>(value: T) -> impl Gen<T> {
    move |_rng: &mut TestRng| value.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_generators() {
        let mut rng = TestRng::new(1);
        let byte = |rng: &mut TestRng| rng.byte();
        let _: u8 = byte.generate(&mut rng);
    }

    #[test]
    fn vec_of_respects_bounds() {
        let mut rng = TestRng::new(2);
        let gen = vec_of(|rng: &mut TestRng| rng.byte(), 5);
        let mut seen_empty = false;
        let mut seen_full = false;
        for _ in 0..200 {
            let v = gen.generate(&mut rng);
            assert!(v.len() <= 5);
            seen_empty |= v.is_empty();
            seen_full |= v.len() == 5;
        }
        assert!(seen_empty && seen_full);
    }

    #[test]
    fn option_of_mixes_none_and_some() {
        let mut rng = TestRng::new(3);
        let gen = option_of(|rng: &mut TestRng| rng.byte(), 0.5);
        let nones = (0..200).filter(|_| gen.generate(&mut rng).is_none()).count();
        assert!((50..150).contains(&nones), "nones={nones}");
    }

    #[test]
    fn one_of_hits_every_alternative() {
        let mut rng = TestRng::new(4);
        let gen = one_of(vec![
            Box::new(just(1u8)) as Box<dyn Gen<u8>>,
            Box::new(just(2u8)),
            Box::new(just(3u8)),
        ]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(gen.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = TestRng::new(5);
        let gen = weighted(vec![
            (9, Box::new(just(true)) as Box<dyn Gen<bool>>),
            (1, Box::new(just(false))),
        ]);
        let trues = (0..1000).filter(|_| gen.generate(&mut rng)).count();
        assert!((800..1000).contains(&trues), "trues={trues}");
    }

    #[test]
    fn map_transforms() {
        let mut rng = TestRng::new(6);
        let gen = map(|rng: &mut TestRng| rng.byte(), |b| u16::from(b) + 1000);
        assert!(gen.generate(&mut rng) >= 1000);
    }
}
