//! The deterministic PRNG behind every generator.
//!
//! xorshift64\* — tiny, fast, and plenty for test-case generation (this is
//! explicitly *not* a cryptographic RNG; the workspace's `SystemRng` covers
//! that). Seeds are pre-mixed with splitmix64 so that small, human-chosen
//! seeds (0, 1, 2, …) land in unrelated regions of the state space, and the
//! all-zero fixed point of xorshift is unreachable.

/// A seeded, deterministic random number generator.
///
/// Two `TestRng`s built from the same seed produce identical streams; this
/// is the property the whole harness rests on.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

/// splitmix64: the standard 64-bit finalizing mixer.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates a generator from `seed`. Any seed is valid, including 0.
    pub fn new(seed: u64) -> Self {
        // `| 1` keeps the xorshift state away from its zero fixed point.
        TestRng { state: splitmix64(seed) | 1 }
    }

    /// Derives an independent sub-generator without disturbing this one's
    /// stream beyond a single draw (useful for per-element generation).
    pub fn fork(&mut self) -> TestRng {
        TestRng::new(self.next_u64())
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Fills `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform value in `lo..=hi`. The slight modulo bias is irrelevant for
    /// test generation.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    /// Uniform `usize` in `lo..=hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        // 53 bits of mantissa: uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.range_usize(0, items.len() - 1)]
    }

    /// A random byte vector of length `0..=max_len`.
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let mut v = vec![0u8; self.range_usize(0, max_len)];
        self.fill(&mut v);
        v
    }

    /// A random ASCII string of length `0..=max_len` (printable subset).
    pub fn ascii(&mut self, max_len: usize) -> String {
        (0..self.range_usize(0, max_len))
            .map(|_| (self.range_u64(0x20, 0x7E) as u8) as char)
            .collect()
    }
}

/// Derives the per-case seed for case `index` under base seed `base`.
///
/// Case 0 uses `base` verbatim: a reproducer line sets the failing case's
/// seed as the base seed, so the failure replays as the very first case.
pub fn case_seed(base: u64, index: u64) -> u64 {
    if index == 0 {
        base
    } else {
        splitmix64(base ^ index.wrapping_mul(0xA076_1D64_78BD_642F))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = TestRng::new(0);
        let draws: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..2000 {
            let v = rng.range_u64(10, 20);
            assert!((10..=20).contains(&v));
            assert_eq!(rng.range_usize(5, 5), 5);
        }
        // Full-width range does not overflow.
        let _ = rng.range_u64(0, u64::MAX);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = TestRng::new(9);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = TestRng::new(11);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn case_seed_zero_is_identity() {
        assert_eq!(case_seed(0xABCD, 0), 0xABCD);
        assert_ne!(case_seed(0xABCD, 1), case_seed(0xABCD, 2));
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ascii_is_printable() {
        let mut rng = TestRng::new(13);
        for _ in 0..50 {
            assert!(rng.ascii(64).chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
