//! A software simulator of the Intel SGX enclave abstractions that SPEED
//! depends on.
//!
//! The SPEED paper (§II-D, §IV-A) relies on four SGX properties:
//!
//! 1. **Isolated execution with limited protected memory.** The Enclave Page
//!    Cache (EPC) is capped (128 MiB, ~90 MiB usable, on the paper's
//!    machines), which is why SPEED keeps only small metadata inside the
//!    enclave and stores result ciphertexts outside. Modelled by
//!    [`EpcAllocator`] with 4 KiB-page accounting and paging penalties.
//! 2. **Expensive world switches.** Every `ECALL`/`OCALL` costs thousands of
//!    cycles; Fig. 6 of the paper shows this as the gap between the
//!    with-SGX and without-SGX store throughput. Modelled by [`CostModel`]
//!    and charged to a [`SimClock`] on every [`Enclave::ecall`] /
//!    [`Enclave::ocall`].
//! 3. **Code identity (measurement).** `MRENCLAVE` binds an enclave to the
//!    hash of its code. Modelled by [`Measurement`] (SHA-256 of the code
//!    identity bytes).
//! 4. **Sealing and attestation.** Sealing keys are derived from the
//!    measurement ([`sealing`]); local and remote attestation produce
//!    verifiable reports ([`attestation`]).
//!
//! The simulator never claims hardware protection — it reproduces the
//! *performance shape* and *key-derivation semantics* of SGX so the rest of
//! the system exercises the same code paths as the paper's prototype.
//!
//! # Example
//!
//! ```
//! use speed_enclave::{CostModel, Platform};
//!
//! let platform = Platform::new(CostModel::default_sgx());
//! let enclave = platform.create_enclave(b"my-app-code-v1").unwrap();
//! let result = enclave.ecall("add", || 2 + 2);
//! assert_eq!(result, 4);
//! assert_eq!(enclave.stats().ecalls, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
mod cost;
mod enclave;
mod epc;
mod error;
mod measurement;
mod platform;
pub mod sealing;
mod untrusted;

pub use cost::{CostModel, SimClock};
pub use enclave::{Enclave, EnclaveStats, SwitchlessGuard};
pub use epc::{EpcAllocator, EpcStats, PAGE_SIZE};
pub use error::EnclaveError;
pub use measurement::Measurement;
pub use platform::Platform;
pub use untrusted::{BlobId, UntrustedMemory};
