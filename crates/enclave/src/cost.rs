//! The SGX cost model and the simulated clock it charges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Latency model for the SGX mechanisms the simulator charges for.
///
/// Defaults are calibrated to published measurements for the paper's era of
/// hardware (Skylake/Kaby Lake, SGX1): an `ECALL`/`OCALL` world switch costs
/// roughly 8,000–14,000 cycles (~3–5 µs at 2.8 GHz; HotCalls, ISCA'17), and
/// an EPC page fault (EWB + ELDU round trip) roughly 40,000 cycles (~14 µs;
/// Eleos, EuroSys'17).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of entering an enclave (`ECALL`), in nanoseconds.
    pub ecall_ns: u64,
    /// Cost of exiting an enclave for a system service (`OCALL`), in
    /// nanoseconds.
    pub ocall_ns: u64,
    /// Cost of an EPC page fault (evict + reload one 4 KiB page), in
    /// nanoseconds.
    pub page_fault_ns: u64,
    /// Per-byte cost of crossing the enclave boundary (copying arguments
    /// in or out of protected memory), in picoseconds per byte.
    pub boundary_copy_ps_per_byte: u64,
}

impl CostModel {
    /// The calibrated SGX model used for "with SGX" measurements.
    pub fn default_sgx() -> Self {
        CostModel {
            ecall_ns: 3_600,
            ocall_ns: 3_200,
            page_fault_ns: 14_000,
            boundary_copy_ps_per_byte: 80,
        }
    }

    /// A zero-cost model: the "without SGX" baseline of Fig. 6.
    pub fn no_sgx() -> Self {
        CostModel {
            ecall_ns: 0,
            ocall_ns: 0,
            page_fault_ns: 0,
            boundary_copy_ps_per_byte: 0,
        }
    }

    /// Returns the boundary-copy cost in nanoseconds for `bytes` bytes.
    pub fn boundary_copy_ns(&self, bytes: usize) -> u64 {
        (self.boundary_copy_ps_per_byte * bytes as u64) / 1_000
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::default_sgx()
    }
}

/// A monotonically increasing simulated clock, shared between all enclaves
/// on a [`crate::Platform`].
///
/// Real computation runs natively; only the *modelled* SGX overheads (world
/// switches, paging, boundary copies) are charged here. Experiment harnesses
/// report `real elapsed + simulated overhead` as the total.
#[derive(Debug, Default)]
pub struct SimClock {
    ns: AtomicU64,
}

impl SimClock {
    /// Creates a clock at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(SimClock { ns: AtomicU64::new(0) })
    }

    /// Charges `ns` nanoseconds of simulated time.
    pub fn charge_ns(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Returns total simulated nanoseconds charged so far.
    pub fn total_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Resets the clock to zero (between experiment trials).
    pub fn reset(&self) {
        self.ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sgx_model() {
        assert_eq!(CostModel::default(), CostModel::default_sgx());
        assert!(CostModel::default().ecall_ns > 0);
    }

    #[test]
    fn no_sgx_is_free() {
        let m = CostModel::no_sgx();
        assert_eq!(m.ecall_ns + m.ocall_ns + m.page_fault_ns, 0);
        assert_eq!(m.boundary_copy_ns(1 << 20), 0);
    }

    #[test]
    fn boundary_copy_scales_linearly() {
        let m = CostModel::default_sgx();
        assert_eq!(m.boundary_copy_ns(0), 0);
        let one_kib = m.boundary_copy_ns(1024);
        let one_mib = m.boundary_copy_ns(1024 * 1024);
        assert!(one_mib >= one_kib * 1000);
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let clock = SimClock::new();
        clock.charge_ns(5);
        clock.charge_ns(7);
        assert_eq!(clock.total_ns(), 12);
        clock.reset();
        assert_eq!(clock.total_ns(), 0);
    }

    #[test]
    fn clock_is_thread_safe() {
        let clock = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&clock);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.charge_ns(1);
                    }
                });
            }
        });
        assert_eq!(clock.total_ns(), 8000);
    }
}
