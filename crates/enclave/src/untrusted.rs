//! Untrusted host memory.
//!
//! SPEED's `ResultStore` keeps only small metadata inside the enclave and
//! places the actual result ciphertexts in *untrusted* memory, holding a
//! pointer in the in-enclave dictionary (§III-B, §IV-B). This module models
//! that region: a blob arena anyone on the platform (including a simulated
//! adversary) can read and overwrite — which is precisely why everything
//! stored here must be encrypted and authenticated.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use std::sync::RwLock;

/// An opaque handle to a blob in untrusted memory — the "pointer" the
/// paper's metadata dictionary keeps per entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlobId(u64);

impl BlobId {
    /// Returns the raw id value (for wire encoding).
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Reconstructs a handle from a raw id (from wire decoding).
    pub fn from_raw(raw: u64) -> Self {
        BlobId(raw)
    }
}

/// An arena of byte blobs living outside any enclave.
#[derive(Debug, Default)]
pub struct UntrustedMemory {
    blobs: RwLock<HashMap<u64, Vec<u8>>>,
    next_id: AtomicU64,
    bytes: AtomicU64,
}

impl UntrustedMemory {
    /// Creates an empty arena.
    pub fn new() -> Self {
        UntrustedMemory::default()
    }

    /// Stores a blob and returns its handle.
    pub fn store(&self, data: Vec<u8>) -> BlobId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.blobs.write().expect("blob lock poisoned").insert(id, data);
        BlobId(id)
    }

    /// Reads a copy of the blob, or `None` if it does not exist.
    pub fn load(&self, id: BlobId) -> Option<Vec<u8>> {
        self.blobs.read().expect("blob lock poisoned").get(&id.0).cloned()
    }

    /// Removes a blob, returning it if present.
    pub fn remove(&self, id: BlobId) -> Option<Vec<u8>> {
        let removed = self.blobs.write().expect("blob lock poisoned").remove(&id.0);
        if let Some(ref data) = removed {
            self.bytes.fetch_sub(data.len() as u64, Ordering::Relaxed);
        }
        removed
    }

    /// Overwrites a blob *without any authorization* — models an adversary
    /// with root access tampering with data outside the enclave (threat
    /// model, §II-B). Returns `false` if the blob does not exist.
    pub fn tamper(&self, id: BlobId, mutate: impl FnOnce(&mut Vec<u8>)) -> bool {
        let mut blobs = self.blobs.write().expect("blob lock poisoned");
        match blobs.get_mut(&id.0) {
            Some(data) => {
                let before = data.len() as u64;
                mutate(data);
                let after = data.len() as u64;
                if after >= before {
                    self.bytes.fetch_add(after - before, Ordering::Relaxed);
                } else {
                    self.bytes.fetch_sub(before - after, Ordering::Relaxed);
                }
                true
            }
            None => false,
        }
    }

    /// Number of blobs currently stored.
    pub fn len(&self) -> usize {
        self.blobs.read().expect("blob lock poisoned").len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.blobs.read().expect("blob lock poisoned").is_empty()
    }

    /// Total bytes currently stored.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip() {
        let mem = UntrustedMemory::new();
        let id = mem.store(vec![1, 2, 3]);
        assert_eq!(mem.load(id), Some(vec![1, 2, 3]));
        assert_eq!(mem.len(), 1);
        assert_eq!(mem.total_bytes(), 3);
    }

    #[test]
    fn ids_are_unique() {
        let mem = UntrustedMemory::new();
        let a = mem.store(vec![1]);
        let b = mem.store(vec![1]);
        assert_ne!(a, b);
    }

    #[test]
    fn remove_frees_bytes() {
        let mem = UntrustedMemory::new();
        let id = mem.store(vec![0u8; 100]);
        assert_eq!(mem.total_bytes(), 100);
        assert_eq!(mem.remove(id), Some(vec![0u8; 100]));
        assert_eq!(mem.total_bytes(), 0);
        assert!(mem.is_empty());
        assert_eq!(mem.load(id), None);
    }

    #[test]
    fn tamper_mutates_in_place() {
        let mem = UntrustedMemory::new();
        let id = mem.store(vec![0u8; 4]);
        assert!(mem.tamper(id, |d| d[0] = 0xFF));
        assert_eq!(mem.load(id).unwrap()[0], 0xFF);
        assert!(!mem.tamper(BlobId::from_raw(999), |_| {}));
    }

    #[test]
    fn tamper_tracks_size_changes() {
        let mem = UntrustedMemory::new();
        let id = mem.store(vec![0u8; 10]);
        mem.tamper(id, |d| d.truncate(4));
        assert_eq!(mem.total_bytes(), 4);
        mem.tamper(id, |d| d.extend_from_slice(&[1u8; 16]));
        assert_eq!(mem.total_bytes(), 20);
    }

    #[test]
    fn blob_id_raw_roundtrip() {
        let id = BlobId::from_raw(42);
        assert_eq!(id.raw(), 42);
    }
}
