//! Local and remote attestation.
//!
//! SPEED assumes "the integrity of an application is correctly verified
//! before actually running with hardware enclaves" (§II-B), achievable via
//! SGX's two attestation forms. The simulator provides both:
//!
//! - **Local attestation**: a [`Report`] MACed with a platform report key
//!   that only enclaves on the same platform can derive — verifiable by any
//!   other enclave on that platform.
//! - **Remote attestation**: a [`Quote`] endorsed by a simulated
//!   [`AttestationService`] (standing in for Intel IAS), verifiable by
//!   anyone holding the service's verification context.

use speed_crypto::{hkdf, hmac::HmacSha256, SystemRng};

use crate::enclave::Enclave;
use crate::error::EnclaveError;
use crate::measurement::Measurement;
use crate::platform::Platform;

/// User data bound into a report (e.g. a channel-establishment public value).
pub const REPORT_DATA_LEN: usize = 64;

/// A local attestation report: the simulator's `EREPORT` output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// Measurement of the reporting enclave.
    pub measurement: Measurement,
    /// Caller-chosen data bound into the report (key-exchange material).
    pub report_data: [u8; REPORT_DATA_LEN],
    mac: [u8; 32],
}

impl Report {
    /// Serializes the report for transport.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + REPORT_DATA_LEN + 32);
        out.extend_from_slice(self.measurement.as_bytes());
        out.extend_from_slice(&self.report_data);
        out.extend_from_slice(&self.mac);
        out
    }

    /// Parses a report from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::AttestationFailed`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EnclaveError> {
        if bytes.len() != 32 + REPORT_DATA_LEN + 32 {
            return Err(EnclaveError::AttestationFailed(format!(
                "report must be {} bytes, got {}",
                32 + REPORT_DATA_LEN + 32,
                bytes.len()
            )));
        }
        let digest_bytes: [u8; 32] = bytes[..32].try_into().expect("sized");
        let mut report_data = [0u8; REPORT_DATA_LEN];
        report_data.copy_from_slice(&bytes[32..32 + REPORT_DATA_LEN]);
        let mut mac = [0u8; 32];
        mac.copy_from_slice(&bytes[32 + REPORT_DATA_LEN..]);
        Ok(Report {
            measurement: Measurement::from_raw_digest(digest_bytes),
            report_data,
            mac,
        })
    }
}

fn report_key(platform: &Platform) -> Vec<u8> {
    hkdf::derive(b"sgx-report-key", platform.fuse_secret(), b"local-attestation", 32)
}

/// Produces a local attestation report for `enclave` with `report_data`.
pub fn create_report(
    platform: &Platform,
    enclave: &Enclave,
    report_data: &[u8; REPORT_DATA_LEN],
) -> Report {
    let key = report_key(platform);
    let mut mac_input = Vec::with_capacity(32 + REPORT_DATA_LEN);
    mac_input.extend_from_slice(enclave.measurement().as_bytes());
    mac_input.extend_from_slice(report_data);
    let mac = HmacSha256::mac(&key, &mac_input).into_bytes();
    Report { measurement: enclave.measurement(), report_data: *report_data, mac }
}

/// Verifies a local report on the same platform.
///
/// # Errors
///
/// Returns [`EnclaveError::AttestationFailed`] if the MAC does not verify
/// (report from another platform, or tampered).
pub fn verify_report(platform: &Platform, report: &Report) -> Result<(), EnclaveError> {
    let key = report_key(platform);
    let mut mac_input = Vec::with_capacity(32 + REPORT_DATA_LEN);
    mac_input.extend_from_slice(report.measurement.as_bytes());
    mac_input.extend_from_slice(&report.report_data);
    if HmacSha256::verify(&key, &mac_input, &report.mac) {
        Ok(())
    } else {
        Err(EnclaveError::AttestationFailed("report mac mismatch".into()))
    }
}

/// A remote attestation quote: a report endorsed by the attestation service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Quote {
    /// The attested measurement.
    pub measurement: Measurement,
    /// Report data carried through from the report.
    pub report_data: [u8; REPORT_DATA_LEN],
    signature: [u8; 32],
}

impl Quote {
    /// Serializes the quote for transport.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + REPORT_DATA_LEN + 32);
        out.extend_from_slice(self.measurement.as_bytes());
        out.extend_from_slice(&self.report_data);
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses a quote from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::AttestationFailed`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EnclaveError> {
        if bytes.len() != 32 + REPORT_DATA_LEN + 32 {
            return Err(EnclaveError::AttestationFailed(format!(
                "quote must be {} bytes, got {}",
                32 + REPORT_DATA_LEN + 32,
                bytes.len()
            )));
        }
        let digest_bytes: [u8; 32] = bytes[..32].try_into().expect("sized");
        let mut report_data = [0u8; REPORT_DATA_LEN];
        report_data.copy_from_slice(&bytes[32..32 + REPORT_DATA_LEN]);
        let mut signature = [0u8; 32];
        signature.copy_from_slice(&bytes[32 + REPORT_DATA_LEN..]);
        Ok(Quote {
            measurement: Measurement::from_raw_digest(digest_bytes),
            report_data,
            signature,
        })
    }
}

/// A simulated attestation service (the role Intel IAS / DCAP plays for
/// real SGX): it endorses reports from platforms it knows and lets remote
/// parties verify the endorsement.
#[derive(Debug)]
pub struct AttestationService {
    signing_key: [u8; 32],
}

impl AttestationService {
    /// Creates a service with a random signing key.
    pub fn new() -> Self {
        let mut rng = SystemRng::new();
        let mut signing_key = [0u8; 32];
        rng.fill(&mut signing_key);
        AttestationService { signing_key }
    }

    /// Creates a deterministic service for tests.
    pub fn with_seed(seed: u64) -> Self {
        let mut rng = SystemRng::seeded(seed);
        let mut signing_key = [0u8; 32];
        rng.fill(&mut signing_key);
        AttestationService { signing_key }
    }

    /// Endorses a (platform-verified) report into a quote.
    ///
    /// # Errors
    ///
    /// Propagates [`EnclaveError::AttestationFailed`] if the report does
    /// not verify on `platform` first.
    pub fn quote(
        &self,
        platform: &Platform,
        report: &Report,
    ) -> Result<Quote, EnclaveError> {
        verify_report(platform, report)?;
        let mut input = Vec::with_capacity(32 + REPORT_DATA_LEN);
        input.extend_from_slice(report.measurement.as_bytes());
        input.extend_from_slice(&report.report_data);
        let signature = HmacSha256::mac(&self.signing_key, &input).into_bytes();
        Ok(Quote {
            measurement: report.measurement,
            report_data: report.report_data,
            signature,
        })
    }

    /// Verifies a quote produced by this service.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::AttestationFailed`] on signature mismatch.
    pub fn verify_quote(&self, quote: &Quote) -> Result<(), EnclaveError> {
        let mut input = Vec::with_capacity(32 + REPORT_DATA_LEN);
        input.extend_from_slice(quote.measurement.as_bytes());
        input.extend_from_slice(&quote.report_data);
        if HmacSha256::verify(&self.signing_key, &input, &quote.signature) {
            Ok(())
        } else {
            Err(EnclaveError::AttestationFailed("quote signature mismatch".into()))
        }
    }
}

impl Default for AttestationService {
    fn default() -> Self {
        AttestationService::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn setup() -> (std::sync::Arc<Platform>, std::sync::Arc<Enclave>) {
        let platform = Platform::new(CostModel::no_sgx());
        let enclave = platform.create_enclave(b"attested-app").unwrap();
        (platform, enclave)
    }

    #[test]
    fn local_report_verifies_on_same_platform() {
        let (platform, enclave) = setup();
        let report = create_report(&platform, &enclave, &[7u8; REPORT_DATA_LEN]);
        assert!(verify_report(&platform, &report).is_ok());
    }

    #[test]
    fn report_fails_on_other_platform() {
        let (platform, enclave) = setup();
        let other = Platform::new(CostModel::no_sgx());
        let report = create_report(&platform, &enclave, &[0u8; REPORT_DATA_LEN]);
        assert!(verify_report(&other, &report).is_err());
    }

    #[test]
    fn tampered_report_data_fails() {
        let (platform, enclave) = setup();
        let mut report = create_report(&platform, &enclave, &[0u8; REPORT_DATA_LEN]);
        report.report_data[0] ^= 1;
        assert!(verify_report(&platform, &report).is_err());
    }

    #[test]
    fn report_wire_roundtrip() {
        let (platform, enclave) = setup();
        let report = create_report(&platform, &enclave, &[9u8; REPORT_DATA_LEN]);
        let parsed = Report::from_bytes(&report.to_bytes()).unwrap();
        assert_eq!(parsed, report);
        assert!(verify_report(&platform, &parsed).is_ok());
        assert!(Report::from_bytes(&[0u8; 10]).is_err());
    }

    #[test]
    fn quote_lifecycle() {
        let (platform, enclave) = setup();
        let service = AttestationService::with_seed(1);
        let report = create_report(&platform, &enclave, &[1u8; REPORT_DATA_LEN]);
        let quote = service.quote(&platform, &report).unwrap();
        assert!(service.verify_quote(&quote).is_ok());
        assert_eq!(quote.measurement, enclave.measurement());
    }

    #[test]
    fn quote_from_wrong_service_fails() {
        let (platform, enclave) = setup();
        let s1 = AttestationService::with_seed(1);
        let s2 = AttestationService::with_seed(2);
        let report = create_report(&platform, &enclave, &[1u8; REPORT_DATA_LEN]);
        let quote = s1.quote(&platform, &report).unwrap();
        assert!(s2.verify_quote(&quote).is_err());
    }

    #[test]
    fn service_refuses_invalid_report() {
        let (platform, enclave) = setup();
        let service = AttestationService::with_seed(1);
        let mut report = create_report(&platform, &enclave, &[1u8; REPORT_DATA_LEN]);
        report.report_data[5] ^= 0xFF;
        assert!(service.quote(&platform, &report).is_err());
    }
}
