use std::error::Error;
use std::fmt;

/// Errors from the enclave simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EnclaveError {
    /// The EPC cannot satisfy an allocation even after paging.
    EpcExhausted {
        /// Bytes requested.
        requested: usize,
        /// Bytes currently available (including pageable headroom).
        available: usize,
    },
    /// An attestation report or quote failed verification.
    AttestationFailed(String),
    /// Unsealing failed: wrong enclave identity or corrupted blob.
    UnsealFailed,
    /// A referenced untrusted blob does not exist (e.g. freed or forged id).
    UnknownBlob(u64),
    /// Attempted to free EPC pages that were not allocated.
    InvalidFree {
        /// Bytes the caller tried to free.
        requested: usize,
        /// Bytes actually allocated.
        allocated: usize,
    },
}

impl fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnclaveError::EpcExhausted { requested, available } => write!(
                f,
                "enclave page cache exhausted: requested {requested} bytes, \
                 {available} available"
            ),
            EnclaveError::AttestationFailed(why) => {
                write!(f, "attestation failed: {why}")
            }
            EnclaveError::UnsealFailed => write!(f, "unsealing failed"),
            EnclaveError::UnknownBlob(id) => {
                write!(f, "unknown untrusted blob id {id}")
            }
            EnclaveError::InvalidFree { requested, allocated } => write!(
                f,
                "invalid epc free: requested {requested} bytes with only \
                 {allocated} allocated"
            ),
        }
    }
}

impl Error for EnclaveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EnclaveError::UnsealFailed.to_string().contains("unsealing"));
        assert!(EnclaveError::UnknownBlob(7).to_string().contains('7'));
        assert!(EnclaveError::EpcExhausted { requested: 10, available: 5 }
            .to_string()
            .contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EnclaveError>();
    }
}
