//! A simulated SGX-capable machine: shared EPC, simulated clock, untrusted
//! memory, and platform secrets for sealing/attestation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use speed_crypto::SystemRng;

use crate::cost::{CostModel, SimClock};
use crate::enclave::Enclave;
use crate::epc::EpcAllocator;
use crate::error::EnclaveError;
use crate::measurement::Measurement;
use crate::untrusted::UntrustedMemory;

/// Initial EPC commit for a freshly created enclave (code + stack + heap
/// floor), roughly matching a minimal SGX SDK enclave footprint.
const INITIAL_ENCLAVE_COMMIT: usize = 2 * 1024 * 1024;

/// A simulated SGX platform (one physical machine).
///
/// Owns the EPC, the simulated clock, an untrusted memory arena, and the
/// per-platform fuse secrets from which sealing and report keys derive.
///
/// # Example
///
/// ```
/// use speed_enclave::{CostModel, Platform};
///
/// let platform = Platform::new(CostModel::default_sgx());
/// let a = platform.create_enclave(b"app-a").unwrap();
/// let b = platform.create_enclave(b"app-a").unwrap();
/// // Same code ⇒ same measurement, even across enclave instances.
/// assert_eq!(a.measurement(), b.measurement());
/// ```
#[derive(Debug)]
pub struct Platform {
    clock: Arc<SimClock>,
    epc: Arc<EpcAllocator>,
    untrusted: Arc<UntrustedMemory>,
    model: CostModel,
    next_enclave_id: AtomicU64,
    fuse_secret: [u8; 32],
}

impl Platform {
    /// Creates a platform with the paper's default EPC sizes and a random
    /// fuse secret.
    pub fn new(model: CostModel) -> Arc<Self> {
        Platform::with_seed(model, None)
    }

    /// Creates a platform whose fuse secret derives from `seed`, for
    /// reproducible sealing tests. `None` uses OS entropy.
    pub fn with_seed(model: CostModel, seed: Option<u64>) -> Arc<Self> {
        Platform::with_epc(
            model,
            seed,
            crate::epc::DEFAULT_EPC_BYTES,
            crate::epc::DEFAULT_USABLE_BYTES,
        )
    }

    /// Creates a platform with explicit EPC sizes — for failure-injection
    /// tests (tiny EPC) or modelling larger-EPC hardware.
    ///
    /// # Panics
    ///
    /// Panics if `usable_bytes > total_bytes` or either is zero.
    pub fn with_epc(
        model: CostModel,
        seed: Option<u64>,
        total_bytes: usize,
        usable_bytes: usize,
    ) -> Arc<Self> {
        let clock = SimClock::new();
        let mut rng = match seed {
            Some(s) => SystemRng::seeded(s),
            None => SystemRng::new(),
        };
        let mut fuse_secret = [0u8; 32];
        rng.fill(&mut fuse_secret);
        Arc::new(Platform {
            epc: Arc::new(EpcAllocator::new(
                total_bytes,
                usable_bytes,
                model,
                Arc::clone(&clock),
            )),
            clock,
            untrusted: Arc::new(UntrustedMemory::new()),
            model,
            next_enclave_id: AtomicU64::new(1),
            fuse_secret,
        })
    }

    /// Loads and measures an enclave from its code identity bytes.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::EpcExhausted`] if the EPC cannot hold another
    /// enclave's initial footprint.
    pub fn create_enclave(&self, code: &[u8]) -> Result<Arc<Enclave>, EnclaveError> {
        let id = self.next_enclave_id.fetch_add(1, Ordering::Relaxed);
        let enclave = Enclave::new(
            id,
            Measurement::of_code(code),
            Arc::clone(&self.clock),
            Arc::clone(&self.epc),
            self.model,
            INITIAL_ENCLAVE_COMMIT,
        )?;
        Ok(Arc::new(enclave))
    }

    /// The platform-wide simulated clock.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The shared EPC allocator.
    pub fn epc(&self) -> &Arc<EpcAllocator> {
        &self.epc
    }

    /// The untrusted host memory arena.
    pub fn untrusted(&self) -> &Arc<UntrustedMemory> {
        &self.untrusted
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> CostModel {
        self.model
    }

    /// Platform fuse secret (never leaves the "hardware"; used by sealing
    /// and attestation key derivation).
    pub(crate) fn fuse_secret(&self) -> &[u8; 32] {
        &self.fuse_secret
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enclave_ids_are_unique() {
        let platform = Platform::new(CostModel::default_sgx());
        let a = platform.create_enclave(b"x").unwrap();
        let b = platform.create_enclave(b"x").unwrap();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn creation_commits_epc() {
        let platform = Platform::new(CostModel::default_sgx());
        let before = platform.epc().stats().committed_pages;
        let _enclave = platform.create_enclave(b"x").unwrap();
        assert!(platform.epc().stats().committed_pages > before);
    }

    #[test]
    fn seeded_platforms_share_fuse_secret() {
        let a = Platform::with_seed(CostModel::no_sgx(), Some(1));
        let b = Platform::with_seed(CostModel::no_sgx(), Some(1));
        assert_eq!(a.fuse_secret(), b.fuse_secret());
        let c = Platform::with_seed(CostModel::no_sgx(), Some(2));
        assert_ne!(a.fuse_secret(), c.fuse_secret());
    }

    #[test]
    fn tiny_epc_exhausts() {
        // 4 MiB EPC cannot host three 2 MiB-footprint enclaves once the
        // thrash ceiling is reached.
        let platform =
            Platform::with_epc(CostModel::default_sgx(), Some(1), 4 << 20, 2 << 20);
        let mut enclaves = Vec::new();
        let mut failed = false;
        for i in 0..8 {
            match platform.create_enclave(format!("app-{i}").as_bytes()) {
                Ok(enclave) => enclaves.push(enclave),
                Err(crate::EnclaveError::EpcExhausted { .. }) => {
                    failed = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(failed, "epc never exhausted");
        assert!(!enclaves.is_empty(), "no enclave fit at all");
    }

    #[test]
    fn untrusted_memory_is_shared() {
        let platform = Platform::new(CostModel::no_sgx());
        let id = platform.untrusted().store(vec![1, 2, 3]);
        assert_eq!(platform.untrusted().load(id), Some(vec![1, 2, 3]));
    }
}
