//! Enclave data sealing.
//!
//! SGX enclaves persist secrets outside the enclave by *sealing* them:
//! encrypting with a key derived inside the CPU from the platform fuse
//! secret and the enclave's identity. Two policies exist; the simulator
//! implements both:
//!
//! - [`SealPolicy::MrEnclave`] — only the *exact same code* on the same
//!   platform can unseal.
//! - [`SealPolicy::MrSigner`] — any enclave from the same "signer" can
//!   unseal (modelled with an explicit signer label).

use speed_crypto::{hkdf, AesGcm128, Key128, Nonce, SystemRng};

use crate::enclave::Enclave;
use crate::error::EnclaveError;
use crate::platform::Platform;

/// Key-derivation policy for sealing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SealPolicy {
    /// Bind to the exact enclave measurement.
    MrEnclave,
    /// Bind to a signer identity shared by a family of enclaves.
    MrSigner(String),
}

/// A sealed blob: nonce plus AES-GCM ciphertext (tag appended).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedData {
    nonce: [u8; 12],
    boxed: Vec<u8>,
}

impl SealedData {
    /// Serialized size in bytes.
    pub fn len(&self) -> usize {
        self.nonce.len() + self.boxed.len()
    }

    /// Whether the sealed payload is empty (tag-only).
    pub fn is_empty(&self) -> bool {
        self.boxed.len() <= speed_crypto::TAG_LEN
    }

    /// Flattens to bytes (`nonce || ciphertext || tag`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.boxed);
        out
    }

    /// Parses from bytes produced by [`to_bytes`](SealedData::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::UnsealFailed`] if `bytes` is too short.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EnclaveError> {
        if bytes.len() < 12 + speed_crypto::TAG_LEN {
            return Err(EnclaveError::UnsealFailed);
        }
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&bytes[..12]);
        Ok(SealedData { nonce, boxed: bytes[12..].to_vec() })
    }
}

fn seal_key(platform: &Platform, enclave: &Enclave, policy: &SealPolicy) -> Key128 {
    let identity: Vec<u8> = match policy {
        SealPolicy::MrEnclave => enclave.measurement().as_bytes().to_vec(),
        SealPolicy::MrSigner(signer) => {
            let mut v = b"signer:".to_vec();
            v.extend_from_slice(signer.as_bytes());
            v
        }
    };
    let okm = hkdf::derive(b"sgx-seal-key", platform.fuse_secret(), &identity, 16);
    Key128::from_slice(&okm).expect("hkdf produced 16 bytes")
}

/// Seals `plaintext` for later recovery under `policy`.
pub fn seal(
    platform: &Platform,
    enclave: &Enclave,
    policy: &SealPolicy,
    aad: &[u8],
    plaintext: &[u8],
) -> SealedData {
    let key = seal_key(platform, enclave, policy);
    let cipher = AesGcm128::new(&key);
    let mut rng = SystemRng::new();
    let nonce = rng.gen_nonce();
    let boxed = cipher.seal(&nonce, aad, plaintext);
    SealedData { nonce: *nonce.as_bytes(), boxed }
}

/// Unseals data previously produced by [`seal`].
///
/// # Errors
///
/// Returns [`EnclaveError::UnsealFailed`] if the calling enclave's identity
/// does not satisfy the policy the data was sealed under, or the blob was
/// tampered with.
pub fn unseal(
    platform: &Platform,
    enclave: &Enclave,
    policy: &SealPolicy,
    aad: &[u8],
    sealed: &SealedData,
) -> Result<Vec<u8>, EnclaveError> {
    let key = seal_key(platform, enclave, policy);
    let cipher = AesGcm128::new(&key);
    let nonce = Nonce::from_bytes(sealed.nonce);
    cipher.open(&nonce, aad, &sealed.boxed).map_err(|_| EnclaveError::UnsealFailed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn seal_unseal_roundtrip_mrenclave() {
        let platform = Platform::new(CostModel::no_sgx());
        let enclave = platform.create_enclave(b"app").unwrap();
        let sealed = seal(&platform, &enclave, &SealPolicy::MrEnclave, b"v1", b"secret");
        let opened =
            unseal(&platform, &enclave, &SealPolicy::MrEnclave, b"v1", &sealed).unwrap();
        assert_eq!(opened, b"secret");
    }

    #[test]
    fn different_code_cannot_unseal_mrenclave() {
        let platform = Platform::new(CostModel::no_sgx());
        let a = platform.create_enclave(b"app-a").unwrap();
        let b = platform.create_enclave(b"app-b").unwrap();
        let sealed = seal(&platform, &a, &SealPolicy::MrEnclave, b"", b"secret");
        assert_eq!(
            unseal(&platform, &b, &SealPolicy::MrEnclave, b"", &sealed),
            Err(EnclaveError::UnsealFailed)
        );
    }

    #[test]
    fn same_signer_can_unseal_mrsigner() {
        let platform = Platform::new(CostModel::no_sgx());
        let a = platform.create_enclave(b"app-a").unwrap();
        let b = platform.create_enclave(b"app-b").unwrap();
        let policy = SealPolicy::MrSigner("vendor".into());
        let sealed = seal(&platform, &a, &policy, b"", b"shared secret");
        assert_eq!(
            unseal(&platform, &b, &policy, b"", &sealed).unwrap(),
            b"shared secret"
        );
    }

    #[test]
    fn different_signer_cannot_unseal() {
        let platform = Platform::new(CostModel::no_sgx());
        let a = platform.create_enclave(b"app").unwrap();
        let sealed = seal(&platform, &a, &SealPolicy::MrSigner("v1".into()), b"", b"s");
        assert!(unseal(&platform, &a, &SealPolicy::MrSigner("v2".into()), b"", &sealed)
            .is_err());
    }

    #[test]
    fn different_platform_cannot_unseal() {
        let p1 = Platform::with_seed(CostModel::no_sgx(), Some(1));
        let p2 = Platform::with_seed(CostModel::no_sgx(), Some(2));
        let e1 = p1.create_enclave(b"app").unwrap();
        let e2 = p2.create_enclave(b"app").unwrap();
        let sealed = seal(&p1, &e1, &SealPolicy::MrEnclave, b"", b"s");
        assert!(unseal(&p2, &e2, &SealPolicy::MrEnclave, b"", &sealed).is_err());
    }

    #[test]
    fn tampered_sealed_blob_is_rejected() {
        let platform = Platform::new(CostModel::no_sgx());
        let enclave = platform.create_enclave(b"app").unwrap();
        let sealed = seal(&platform, &enclave, &SealPolicy::MrEnclave, b"", b"secret");
        let mut bytes = sealed.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        let reparsed = SealedData::from_bytes(&bytes).unwrap();
        assert!(
            unseal(&platform, &enclave, &SealPolicy::MrEnclave, b"", &reparsed).is_err()
        );
    }

    #[test]
    fn serialization_roundtrip() {
        let platform = Platform::new(CostModel::no_sgx());
        let enclave = platform.create_enclave(b"app").unwrap();
        let sealed = seal(&platform, &enclave, &SealPolicy::MrEnclave, b"aad", b"data");
        let parsed = SealedData::from_bytes(&sealed.to_bytes()).unwrap();
        assert_eq!(parsed, sealed);
        assert!(SealedData::from_bytes(&[0u8; 5]).is_err());
    }

    #[test]
    fn wrong_aad_is_rejected() {
        let platform = Platform::new(CostModel::no_sgx());
        let enclave = platform.create_enclave(b"app").unwrap();
        let sealed = seal(&platform, &enclave, &SealPolicy::MrEnclave, b"v1", b"data");
        assert!(
            unseal(&platform, &enclave, &SealPolicy::MrEnclave, b"v2", &sealed).is_err()
        );
    }
}
