//! Enclave Page Cache accounting.
//!
//! SGX1 machines of the paper's era expose a fixed EPC (128 MiB configured,
//! ~90 MiB usable after SGX metadata — §V-A of the paper). When enclaves
//! commit more memory than the usable EPC, the SGX driver pages 4 KiB
//! chunks in and out at significant cost. This module models that with an
//! allocator that tracks resident pages and charges page-fault penalties to
//! the simulated clock once the working set exceeds the usable limit.

use std::sync::Arc;

use std::sync::Mutex;

use crate::cost::{CostModel, SimClock};
use crate::error::EnclaveError;

/// EPC page size in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Default configured EPC size (128 MiB), matching the paper's setup.
pub const DEFAULT_EPC_BYTES: usize = 128 * 1024 * 1024;

/// Default usable EPC after SGX structure overhead (~90 MiB).
pub const DEFAULT_USABLE_BYTES: usize = 90 * 1024 * 1024;

/// Counters describing EPC behaviour so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpcStats {
    /// Pages currently committed across all enclaves.
    pub committed_pages: usize,
    /// High-water mark of committed pages.
    pub peak_pages: usize,
    /// Page faults charged because the working set exceeded usable EPC.
    pub page_faults: u64,
}

#[derive(Debug)]
struct Inner {
    committed_pages: usize,
    peak_pages: usize,
    page_faults: u64,
}

/// A shared EPC allocator for one simulated platform.
#[derive(Debug)]
pub struct EpcAllocator {
    usable_pages: usize,
    total_pages: usize,
    inner: Mutex<Inner>,
    clock: Arc<SimClock>,
    model: CostModel,
}

impl EpcAllocator {
    /// Creates an allocator with explicit sizes.
    ///
    /// # Panics
    ///
    /// Panics if `usable_bytes > total_bytes` or either is zero.
    pub fn new(
        total_bytes: usize,
        usable_bytes: usize,
        model: CostModel,
        clock: Arc<SimClock>,
    ) -> Self {
        assert!(total_bytes > 0 && usable_bytes > 0, "epc sizes must be nonzero");
        assert!(usable_bytes <= total_bytes, "usable epc exceeds total epc");
        EpcAllocator {
            usable_pages: usable_bytes / PAGE_SIZE,
            total_pages: total_bytes / PAGE_SIZE,
            inner: Mutex::new(Inner {
                committed_pages: 0,
                peak_pages: 0,
                page_faults: 0,
            }),
            clock,
            model,
        }
    }

    /// Creates an allocator with the paper's default sizes.
    pub fn with_defaults(model: CostModel, clock: Arc<SimClock>) -> Self {
        EpcAllocator::new(DEFAULT_EPC_BYTES, DEFAULT_USABLE_BYTES, model, clock)
    }

    /// Commits `bytes` of enclave memory, rounding up to whole pages.
    ///
    /// Beyond the usable EPC the commit still succeeds (the SGX driver pages
    /// to untrusted memory), but every page past the limit charges a
    /// page-fault penalty. Commits beyond *four times* the usable EPC fail,
    /// modelling the practical collapse of a thrashing enclave.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::EpcExhausted`] if the commit would exceed the
    /// thrash ceiling.
    pub fn commit(&self, bytes: usize) -> Result<(), EnclaveError> {
        let pages = bytes.div_ceil(PAGE_SIZE);
        let mut inner = self.inner.lock().expect("epc lock poisoned");
        let ceiling = self.usable_pages * 4;
        if inner.committed_pages + pages > ceiling {
            return Err(EnclaveError::EpcExhausted {
                requested: bytes,
                available: (ceiling - inner.committed_pages) * PAGE_SIZE,
            });
        }
        let before = inner.committed_pages;
        inner.committed_pages += pages;
        inner.peak_pages = inner.peak_pages.max(inner.committed_pages);
        // Pages past the usable limit each fault once on first touch.
        let over_before = before.saturating_sub(self.usable_pages);
        let over_after = inner.committed_pages.saturating_sub(self.usable_pages);
        let faults = (over_after - over_before) as u64;
        if faults > 0 {
            inner.page_faults += faults;
            self.clock.charge_ns(faults * self.model.page_fault_ns);
        }
        Ok(())
    }

    /// Releases `bytes` of committed memory (rounded up to pages).
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::InvalidFree`] when freeing more than is
    /// committed.
    pub fn release(&self, bytes: usize) -> Result<(), EnclaveError> {
        let pages = bytes.div_ceil(PAGE_SIZE);
        let mut inner = self.inner.lock().expect("epc lock poisoned");
        if pages > inner.committed_pages {
            return Err(EnclaveError::InvalidFree {
                requested: bytes,
                allocated: inner.committed_pages * PAGE_SIZE,
            });
        }
        inner.committed_pages -= pages;
        Ok(())
    }

    /// Returns a snapshot of the allocator counters.
    pub fn stats(&self) -> EpcStats {
        let inner = self.inner.lock().expect("epc lock poisoned");
        EpcStats {
            committed_pages: inner.committed_pages,
            peak_pages: inner.peak_pages,
            page_faults: inner.page_faults,
        }
    }

    /// Usable EPC in bytes before paging kicks in.
    pub fn usable_bytes(&self) -> usize {
        self.usable_pages * PAGE_SIZE
    }

    /// Total configured EPC in bytes.
    pub fn total_bytes(&self) -> usize {
        self.total_pages * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allocator(total: usize, usable: usize) -> EpcAllocator {
        EpcAllocator::new(total, usable, CostModel::default_sgx(), SimClock::new())
    }

    #[test]
    fn commit_within_usable_has_no_faults() {
        let epc = allocator(1 << 20, 1 << 19);
        epc.commit(100_000).unwrap();
        let stats = epc.stats();
        assert_eq!(stats.page_faults, 0);
        assert_eq!(stats.committed_pages, 100_000usize.div_ceil(PAGE_SIZE));
    }

    #[test]
    fn commit_past_usable_charges_faults() {
        let clock = SimClock::new();
        let epc = EpcAllocator::new(
            1 << 20,
            1 << 19,
            CostModel::default_sgx(),
            Arc::clone(&clock),
        );
        epc.commit(1 << 19).unwrap();
        assert_eq!(epc.stats().page_faults, 0);
        epc.commit(PAGE_SIZE * 3).unwrap();
        assert_eq!(epc.stats().page_faults, 3);
        assert_eq!(clock.total_ns(), 3 * CostModel::default_sgx().page_fault_ns);
    }

    #[test]
    fn commit_past_thrash_ceiling_fails() {
        let epc = allocator(1 << 20, 1 << 19);
        let err = epc.commit((1 << 19) * 5).unwrap_err();
        assert!(matches!(err, EnclaveError::EpcExhausted { .. }));
    }

    #[test]
    fn release_returns_pages() {
        let epc = allocator(1 << 20, 1 << 19);
        epc.commit(PAGE_SIZE * 10).unwrap();
        epc.release(PAGE_SIZE * 4).unwrap();
        assert_eq!(epc.stats().committed_pages, 6);
    }

    #[test]
    fn release_more_than_committed_fails() {
        let epc = allocator(1 << 20, 1 << 19);
        epc.commit(PAGE_SIZE).unwrap();
        assert!(matches!(
            epc.release(PAGE_SIZE * 2),
            Err(EnclaveError::InvalidFree { .. })
        ));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let epc = allocator(1 << 20, 1 << 19);
        epc.commit(PAGE_SIZE * 8).unwrap();
        epc.release(PAGE_SIZE * 8).unwrap();
        epc.commit(PAGE_SIZE * 2).unwrap();
        let stats = epc.stats();
        assert_eq!(stats.peak_pages, 8);
        assert_eq!(stats.committed_pages, 2);
    }

    #[test]
    fn defaults_match_paper_setup() {
        let epc = EpcAllocator::with_defaults(CostModel::default_sgx(), SimClock::new());
        assert_eq!(epc.total_bytes(), 128 * 1024 * 1024);
        assert_eq!(epc.usable_bytes(), 90 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "usable epc exceeds total epc")]
    fn usable_cannot_exceed_total() {
        let _ = allocator(1 << 19, 1 << 20);
    }

    #[test]
    fn zero_byte_commit_is_noop() {
        let epc = allocator(1 << 20, 1 << 19);
        epc.commit(0).unwrap();
        assert_eq!(epc.stats().committed_pages, 0);
    }
}
