use std::fmt;

use speed_crypto::{Digest, Sha256};

/// An enclave measurement — the simulator's `MRENCLAVE`.
///
/// Computed as the SHA-256 digest of the enclave's code identity bytes, so
/// two enclaves built from identical code have identical measurements and
/// any code change yields a different one. SPEED's attestation assumption
/// (§II-B: "the integrity of an application is correctly verified before
/// actually running") reduces to checking this value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Measurement(Digest);

impl Measurement {
    /// Measures `code` (any canonical byte representation of the enclave's
    /// contents).
    pub fn of_code(code: &[u8]) -> Self {
        Measurement(Sha256::digest_parts(&[b"mrenclave", code]))
    }

    /// Returns the 32-byte digest value.
    pub fn as_bytes(&self) -> &[u8; 32] {
        self.0.as_bytes()
    }

    /// Returns the underlying digest.
    pub fn digest(&self) -> Digest {
        self.0
    }

    /// Reconstructs a measurement from raw digest bytes, for wire decoding.
    ///
    /// The value is *not* recomputed from code; verifiers must compare it
    /// against a locally computed [`Measurement::of_code`] before trusting it.
    pub fn from_raw_digest(bytes: [u8; 32]) -> Self {
        Measurement(Digest::from_bytes(bytes))
    }
}

impl fmt::Debug for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Measurement({})", &self.0.to_hex()[..16])
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_code_same_measurement() {
        assert_eq!(Measurement::of_code(b"app v1"), Measurement::of_code(b"app v1"));
    }

    #[test]
    fn different_code_different_measurement() {
        assert_ne!(Measurement::of_code(b"app v1"), Measurement::of_code(b"app v2"));
    }

    #[test]
    fn measurement_differs_from_raw_hash() {
        // Domain separation: MRENCLAVE is not simply SHA-256(code).
        let m = Measurement::of_code(b"code");
        assert_ne!(m.digest(), Sha256::digest(b"code"));
    }

    #[test]
    fn debug_is_abbreviated() {
        let dbg = format!("{:?}", Measurement::of_code(b"x"));
        assert!(dbg.len() < 40);
        assert!(dbg.starts_with("Measurement("));
    }
}
