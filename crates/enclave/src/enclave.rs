//! The simulated enclave: measured code identity, metered world switches,
//! and EPC-accounted memory.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use speed_telemetry::{names, Counter};

use crate::cost::{CostModel, SimClock};
use crate::epc::EpcAllocator;
use crate::error::EnclaveError;
use crate::measurement::Measurement;

thread_local! {
    /// Depth of [`SwitchlessGuard`]s live on this thread. While non-zero,
    /// the thread is a resident in-enclave worker: `ecall`/`ocall` bodies
    /// run without paying (or counting) a world switch.
    static SWITCHLESS_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Counters describing one enclave's boundary traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnclaveStats {
    /// Number of `ECALL`s performed (host → enclave).
    pub ecalls: u64,
    /// Number of `OCALL`s performed (enclave → host).
    pub ocalls: u64,
    /// Calls served switchlessly by a resident worker thread — these pay
    /// boundary-copy costs but no world switch.
    pub switchless_calls: u64,
    /// Bytes copied across the boundary in either direction.
    pub boundary_bytes: u64,
    /// Simulated nanoseconds charged by this enclave's switches/copies.
    pub charged_ns: u64,
}

impl EnclaveStats {
    /// Total world switches (`ECALL`s + `OCALL`s) — the quantity the
    /// batched request pipeline and the switchless call path minimize.
    /// Switchless calls are deliberately excluded: they never leave or
    /// enter the enclave.
    pub fn transitions(&self) -> u64 {
        self.ecalls + self.ocalls
    }
}

/// RAII marker held by a resident in-enclave worker thread (the switchless
/// call pattern: the worker enters the enclave once via a real `ECALL` and
/// then drains a shared-memory request ring without further transitions).
///
/// While the guard is live on a thread, [`Enclave::ecall`] /
/// [`Enclave::ocall`] on *any* enclave run their body without a world
/// switch: no `ecall_ns`/`ocall_ns` charge, no transition count — only the
/// boundary-copy costs of the `_with_bytes` variants, because request and
/// response bytes still travel through untrusted shared memory.
///
/// The guard is `!Send`: it marks the current OS thread, and must be
/// dropped on it.
#[derive(Debug)]
pub struct SwitchlessGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for SwitchlessGuard {
    fn drop(&mut self) {
        SWITCHLESS_DEPTH.with(|depth| depth.set(depth.get().saturating_sub(1)));
    }
}

/// A simulated SGX enclave.
///
/// Created via [`crate::Platform::create_enclave`]. Closures passed to
/// [`ecall`](Enclave::ecall) run "inside" the enclave; closures passed to
/// [`ocall`](Enclave::ocall) model the enclave calling out to the untrusted
/// host. Both charge the platform's [`SimClock`] per the [`CostModel`].
#[derive(Debug)]
pub struct Enclave {
    id: u64,
    measurement: Measurement,
    clock: Arc<SimClock>,
    epc: Arc<EpcAllocator>,
    model: CostModel,
    ecalls: AtomicU64,
    ocalls: AtomicU64,
    switchless_calls: AtomicU64,
    boundary_bytes: AtomicU64,
    charged_ns: AtomicU64,
    epc_committed: AtomicU64,
    telemetry: EnclaveTelemetry,
}

/// Process-wide telemetry handles shared by every enclave; the per-enclave
/// atomics above stay authoritative for [`Enclave::stats`].
#[derive(Debug)]
struct EnclaveTelemetry {
    ecalls: Counter,
    ocalls: Counter,
    switchless_calls: Counter,
    boundary_bytes: Counter,
    charged_ns: Counter,
}

impl EnclaveTelemetry {
    fn from_global() -> Self {
        let registry = speed_telemetry::global();
        const TRANSITIONS_HELP: &str =
            "World switches performed, by kind (ecall = host->enclave entry, \
             ocall = enclave->host exit)";
        EnclaveTelemetry {
            ecalls: registry.counter_with(
                names::ENCLAVE_TRANSITIONS_TOTAL,
                TRANSITIONS_HELP,
                &[("kind", "ecall")],
            ),
            ocalls: registry.counter_with(
                names::ENCLAVE_TRANSITIONS_TOTAL,
                TRANSITIONS_HELP,
                &[("kind", "ocall")],
            ),
            switchless_calls: registry.counter(
                names::ENCLAVE_SWITCHLESS_CALLS_TOTAL,
                "Enclave calls served by a resident switchless worker without \
                 a world switch",
            ),
            boundary_bytes: registry.counter(
                names::ENCLAVE_BOUNDARY_BYTES_TOTAL,
                "Bytes copied across the enclave boundary in either direction",
            ),
            charged_ns: registry.counter(
                names::ENCLAVE_CHARGED_NS_TOTAL,
                "Modeled nanoseconds charged for world switches and boundary copies",
            ),
        }
    }
}

impl Enclave {
    pub(crate) fn new(
        id: u64,
        measurement: Measurement,
        clock: Arc<SimClock>,
        epc: Arc<EpcAllocator>,
        model: CostModel,
        initial_commit: usize,
    ) -> Result<Self, EnclaveError> {
        epc.commit(initial_commit)?;
        Ok(Enclave {
            id,
            measurement,
            clock,
            epc,
            model,
            ecalls: AtomicU64::new(0),
            ocalls: AtomicU64::new(0),
            switchless_calls: AtomicU64::new(0),
            boundary_bytes: AtomicU64::new(0),
            charged_ns: AtomicU64::new(0),
            epc_committed: AtomicU64::new(initial_commit as u64),
            telemetry: EnclaveTelemetry::from_global(),
        })
    }

    /// This enclave's platform-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This enclave's code measurement (`MRENCLAVE`).
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// The cost model in force for this enclave.
    pub fn cost_model(&self) -> CostModel {
        self.model
    }

    /// Enters the enclave (`ECALL`), runs `body` inside, and returns its
    /// result. Charges one world-switch entry plus exit.
    ///
    /// `_name` labels the call for debugging; it mirrors the named ECALL
    /// table of the SGX SDK's EDL files.
    pub fn ecall<R>(&self, _name: &str, body: impl FnOnce() -> R) -> R {
        if switchless_active() {
            self.count_switchless();
            return body();
        }
        self.charge(self.model.ecall_ns);
        self.ecalls.fetch_add(1, Ordering::Relaxed);
        self.telemetry.ecalls.inc();
        body()
    }

    /// Enters the enclave passing `args_len` bytes of marshalled arguments
    /// and returning `ret_len` bytes, charging boundary-copy costs.
    pub fn ecall_with_bytes<R>(
        &self,
        name: &str,
        args_len: usize,
        ret_len: usize,
        body: impl FnOnce() -> R,
    ) -> R {
        self.charge_copy(args_len + ret_len);
        self.ecall(name, body)
    }

    /// Leaves the enclave (`OCALL`) to run `body` in the untrusted host.
    pub fn ocall<R>(&self, _name: &str, body: impl FnOnce() -> R) -> R {
        if switchless_active() {
            self.count_switchless();
            return body();
        }
        self.charge(self.model.ocall_ns);
        self.ocalls.fetch_add(1, Ordering::Relaxed);
        self.telemetry.ocalls.inc();
        body()
    }

    /// Leaves the enclave with `args_len` bytes out and `ret_len` bytes
    /// back, charging boundary-copy costs.
    pub fn ocall_with_bytes<R>(
        &self,
        name: &str,
        args_len: usize,
        ret_len: usize,
        body: impl FnOnce() -> R,
    ) -> R {
        self.charge_copy(args_len + ret_len);
        self.ocall(name, body)
    }

    /// Charges boundary-copy cost for `bytes` bytes without a world switch
    /// (used when a payload's size is only known after an `OCALL` returns).
    pub fn charge_boundary_bytes(&self, bytes: usize) {
        self.charge_copy(bytes);
    }

    /// Commits `bytes` of additional protected memory for this enclave.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::EpcExhausted`] if the platform EPC cannot
    /// satisfy the commit.
    pub fn commit_memory(&self, bytes: usize) -> Result<(), EnclaveError> {
        self.epc.commit(bytes)?;
        self.epc_committed.fetch_add(bytes as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Releases `bytes` of protected memory.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::InvalidFree`] when releasing more than this
    /// enclave committed.
    pub fn release_memory(&self, bytes: usize) -> Result<(), EnclaveError> {
        let committed = self.epc_committed.load(Ordering::Relaxed);
        if bytes as u64 > committed {
            return Err(EnclaveError::InvalidFree {
                requested: bytes,
                allocated: committed as usize,
            });
        }
        self.epc.release(bytes)?;
        self.epc_committed.fetch_sub(bytes as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Protected bytes currently committed by this enclave.
    pub fn committed_bytes(&self) -> u64 {
        self.epc_committed.load(Ordering::Relaxed)
    }

    /// Marks the calling thread as a resident in-enclave worker until the
    /// returned guard drops (the switchless call pattern): every
    /// `ecall`/`ocall` issued on this thread while the guard is live runs
    /// its body without a world switch and is counted in
    /// [`EnclaveStats::switchless_calls`] instead of
    /// [`EnclaveStats::transitions`].
    ///
    /// Call this from *inside* a real [`ecall`](Enclave::ecall) body — the
    /// worker pays one transition to take up residence, then serves ring
    /// requests switchlessly.
    pub fn enter_switchless(&self) -> SwitchlessGuard {
        SWITCHLESS_DEPTH.with(|depth| depth.set(depth.get() + 1));
        SwitchlessGuard { _not_send: PhantomData }
    }

    /// Returns a snapshot of this enclave's counters.
    pub fn stats(&self) -> EnclaveStats {
        EnclaveStats {
            ecalls: self.ecalls.load(Ordering::Relaxed),
            ocalls: self.ocalls.load(Ordering::Relaxed),
            switchless_calls: self.switchless_calls.load(Ordering::Relaxed),
            boundary_bytes: self.boundary_bytes.load(Ordering::Relaxed),
            charged_ns: self.charged_ns.load(Ordering::Relaxed),
        }
    }

    /// The simulated clock shared with the platform.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    fn count_switchless(&self) {
        self.switchless_calls.fetch_add(1, Ordering::Relaxed);
        self.telemetry.switchless_calls.inc();
    }

    fn charge(&self, ns: u64) {
        self.clock.charge_ns(ns);
        self.charged_ns.fetch_add(ns, Ordering::Relaxed);
        self.telemetry.charged_ns.add(ns);
    }

    fn charge_copy(&self, bytes: usize) {
        let ns = self.model.boundary_copy_ns(bytes);
        self.boundary_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.telemetry.boundary_bytes.add(bytes as u64);
        self.charge(ns);
    }
}

/// Whether the current thread holds a live [`SwitchlessGuard`].
fn switchless_active() -> bool {
    SWITCHLESS_DEPTH.with(|depth| depth.get() > 0)
}

impl Drop for Enclave {
    fn drop(&mut self) {
        // Return committed pages to the platform; ignore errors per
        // C-DTOR-FAIL (destructors never fail).
        let committed = self.epc_committed.load(Ordering::Relaxed) as usize;
        let _ = self.epc.release(committed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    #[test]
    fn ecall_runs_body_and_counts() {
        let platform = Platform::new(CostModel::default_sgx());
        let enclave = platform.create_enclave(b"code").unwrap();
        let out = enclave.ecall("double", || 21 * 2);
        assert_eq!(out, 42);
        let stats = enclave.stats();
        assert_eq!(stats.ecalls, 1);
        assert_eq!(stats.ocalls, 0);
        assert_eq!(stats.charged_ns, CostModel::default_sgx().ecall_ns);
    }

    #[test]
    fn ocall_counts_separately() {
        let platform = Platform::new(CostModel::default_sgx());
        let enclave = platform.create_enclave(b"code").unwrap();
        enclave.ocall("send", || ());
        enclave.ocall("recv", || ());
        assert_eq!(enclave.stats().ocalls, 2);
    }

    #[test]
    fn byte_variants_charge_copy_costs() {
        let platform = Platform::new(CostModel::default_sgx());
        let enclave = platform.create_enclave(b"code").unwrap();
        enclave.ecall_with_bytes("put", 1 << 20, 64, || ());
        let stats = enclave.stats();
        assert_eq!(stats.boundary_bytes, (1 << 20) + 64);
        assert!(stats.charged_ns > CostModel::default_sgx().ecall_ns);
    }

    #[test]
    fn no_sgx_model_charges_nothing() {
        let platform = Platform::new(CostModel::no_sgx());
        let enclave = platform.create_enclave(b"code").unwrap();
        enclave.ecall_with_bytes("put", 1 << 20, 1 << 20, || ());
        enclave.ocall("out", || ());
        assert_eq!(enclave.stats().charged_ns, 0);
    }

    #[test]
    fn memory_commit_release_cycle() {
        let platform = Platform::new(CostModel::default_sgx());
        let enclave = platform.create_enclave(b"code").unwrap();
        enclave.commit_memory(1 << 16).unwrap();
        enclave.release_memory(1 << 16).unwrap();
        assert!(matches!(
            enclave.release_memory(1 << 30),
            Err(EnclaveError::InvalidFree { .. })
        ));
    }

    #[test]
    fn drop_returns_pages_to_platform() {
        let platform = Platform::new(CostModel::default_sgx());
        let before = platform.epc().stats().committed_pages;
        {
            let enclave = platform.create_enclave(b"code").unwrap();
            enclave.commit_memory(1 << 20).unwrap();
            assert!(platform.epc().stats().committed_pages > before);
        }
        assert_eq!(platform.epc().stats().committed_pages, before);
    }

    #[test]
    fn switchless_guard_suppresses_world_switches() {
        let platform = Platform::new(CostModel::default_sgx());
        let enclave = platform.create_enclave(b"resident-worker").unwrap();
        // The worker enters the enclave once (a real ECALL), then serves
        // calls switchlessly for the guard's lifetime.
        enclave.ecall("switchless_worker_enter", || {
            let _guard = enclave.enter_switchless();
            enclave.ecall_with_bytes("store_get", 32, 128, || ());
            enclave.ecall_with_bytes("store_put", 64, 1, || ());
            enclave.ocall("wal_append", || ());
        });
        let stats = enclave.stats();
        assert_eq!(stats.ecalls, 1, "only the residence entry is a real ECALL");
        assert_eq!(stats.ocalls, 0);
        assert_eq!(stats.switchless_calls, 3);
        assert_eq!(stats.transitions(), 1);
        // Boundary-copy bytes are still charged: the request/response
        // payloads travel through untrusted shared memory either way.
        assert_eq!(stats.boundary_bytes, 32 + 128 + 64 + 1);
    }

    #[test]
    fn switchless_guard_scopes_to_its_thread_and_lifetime() {
        let platform = Platform::new(CostModel::default_sgx());
        let enclave = platform.create_enclave(b"scoped").unwrap();
        {
            let _guard = enclave.enter_switchless();
            enclave.ecall("inside", || ());
        }
        enclave.ecall("outside", || ());
        let stats = enclave.stats();
        assert_eq!(stats.switchless_calls, 1);
        assert_eq!(stats.ecalls, 1, "calls after the guard drops switch again");
        // Another thread is unaffected by this thread's guard.
        let _guard = enclave.enter_switchless();
        std::thread::scope(|scope| {
            scope.spawn(|| enclave.ecall("other_thread", || ()));
        });
        assert_eq!(enclave.stats().ecalls, 2);
    }

    #[test]
    fn nested_ecall_ocall_pattern() {
        // DedupRuntime's pattern: inside the enclave, OCALL out to the
        // network, then continue inside.
        let platform = Platform::new(CostModel::default_sgx());
        let enclave = platform.create_enclave(b"app").unwrap();
        let result = enclave.ecall("dedup_call", || {
            let response = enclave.ocall("get_request", || 7u32);
            response + 1
        });
        assert_eq!(result, 8);
        let stats = enclave.stats();
        assert_eq!((stats.ecalls, stats.ocalls), (1, 1));
    }
}
