//! From-scratch cryptographic primitives for the SPEED reproduction.
//!
//! The SPEED paper uses the crypto library shipped with the Intel SGX SDK:
//! SHA-256 as the collision-resistant hash and AES-GCM-128 as the
//! authenticated encryption scheme (§II-D, §V-A). This crate reimplements the
//! same algorithms in pure Rust so the whole system is self-contained:
//!
//! - [`Sha256`] — FIPS 180-4 SHA-256 with an incremental API.
//! - [`aes::Aes128`] — FIPS 197 AES-128 block cipher.
//! - [`AesGcm128`] — NIST SP 800-38D AES-GCM-128 AEAD.
//! - [`hmac::HmacSha256`] — RFC 2104 HMAC over SHA-256.
//! - [`hkdf`] — RFC 5869 HKDF for session-key derivation in the secure
//!   channel.
//! - [`ct_eq`] — constant-time comparison for tags and MACs.
//! - [`SystemRng`] — CSPRNG handle used for keys, nonces, and the RCE
//!   challenge message `r`.
//!
//! All primitives are validated against published test vectors (FIPS 180-4,
//! FIPS 197, NIST GCM, RFC 4231, RFC 5869) in the unit tests.
//!
//! # Example
//!
//! ```
//! use speed_crypto::{AesGcm128, Key128, Nonce, Sha256};
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(digest.as_bytes().len(), 32);
//!
//! let key = Key128::from_bytes([0u8; 16]);
//! let cipher = AesGcm128::new(&key);
//! let nonce = Nonce::from_bytes([1u8; 12]);
//! let sealed = cipher.seal(&nonce, b"associated", b"plaintext");
//! let opened = cipher.open(&nonce, b"associated", &sealed).unwrap();
//! assert_eq!(opened, b"plaintext");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
mod ct;
mod error;
mod gcm;
pub mod hkdf;
pub mod hmac;
mod rng;
mod sha256;
mod types;

pub use ct::ct_eq;
pub use error::CryptoError;
pub use gcm::AesGcm128;
pub use rng::{fill_random, random_key, random_nonce, SystemRng};
pub use sha256::{Digest, Sha256, DIGEST_LEN};
pub use types::{AuthTag, Key128, Nonce, KEY_LEN, NONCE_LEN, TAG_LEN};
