/// Compares two byte slices in constant time with respect to their contents.
///
/// Returns `false` immediately if the lengths differ (lengths are public in
/// every use inside this workspace: MACs, GCM tags, and SHA-256 digests all
/// have fixed, known sizes).
///
/// # Example
///
/// ```
/// use speed_crypto::ct_eq;
///
/// assert!(ct_eq(b"tag", b"tag"));
/// assert!(!ct_eq(b"tag", b"tab"));
/// assert!(!ct_eq(b"tag", b"tag-longer"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"a", b"a"));
        assert!(ct_eq(&[0u8; 64], &[0u8; 64]));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"a", b"b"));
        assert!(!ct_eq(b"aa", b"a"));
        let mut v = vec![7u8; 32];
        let w = v.clone();
        v[31] ^= 0x80;
        assert!(!ct_eq(&v, &w));
    }
}
