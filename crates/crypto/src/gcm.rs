//! NIST SP 800-38D AES-GCM-128 authenticated encryption with associated data.

use crate::aes::{ctr_xor, Aes128, BLOCK_LEN};
use crate::ct::ct_eq;
use crate::error::CryptoError;
use crate::types::{AuthTag, Key128, Nonce, TAG_LEN};

/// AES-GCM-128 AEAD cipher, the scheme the paper uses for result
/// encryption (`AES.Enc` / `AES.Dec` in Algorithms 1 and 2).
///
/// Ciphertexts produced by [`seal`](AesGcm128::seal) carry the 16-byte
/// authentication tag appended to the encrypted payload, matching the
/// paper's `[res]` notation which "covers its authentication code and
/// initialization vector" (§III-B) — the IV travels separately as a
/// [`Nonce`].
///
/// # Example
///
/// ```
/// use speed_crypto::{AesGcm128, Key128, Nonce};
///
/// let cipher = AesGcm128::new(&Key128::from_bytes([7u8; 16]));
/// let nonce = Nonce::from_bytes([0u8; 12]);
/// let boxed = cipher.seal(&nonce, b"header", b"secret");
/// assert_eq!(cipher.open(&nonce, b"header", &boxed).unwrap(), b"secret");
/// assert!(cipher.open(&nonce, b"tampered", &boxed).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct AesGcm128 {
    cipher: Aes128,
    h: u128,
}

impl AesGcm128 {
    /// Initialises the cipher and its GHASH subkey `H = E(K, 0¹²⁸)`.
    pub fn new(key: &Key128) -> Self {
        let cipher = Aes128::new(key);
        let mut h_block = [0u8; BLOCK_LEN];
        cipher.encrypt_block(&mut h_block);
        AesGcm128 { cipher, h: u128::from_be_bytes(h_block) }
    }

    /// Encrypts `plaintext`, authenticating it together with `aad`.
    ///
    /// Returns `ciphertext || tag` (the tag is the final [`TAG_LEN`] bytes).
    pub fn seal(&self, nonce: &Nonce, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let j0 = self.j0(nonce);
        let mut out = plaintext.to_vec();
        ctr_xor(&self.cipher, &j0, &mut out);
        let tag = self.compute_tag(&j0, aad, &out);
        out.extend_from_slice(tag.as_bytes());
        out
    }

    /// Decrypts `boxed` (`ciphertext || tag`) and verifies the tag over the
    /// ciphertext and `aad`.
    ///
    /// # Errors
    ///
    /// - [`CryptoError::CiphertextTooShort`] if `boxed` is shorter than the tag.
    /// - [`CryptoError::AuthenticationFailed`] if the tag does not verify
    ///   (the `⊥` outcome of the paper's verification protocol).
    pub fn open(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        boxed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if boxed.len() < TAG_LEN {
            return Err(CryptoError::CiphertextTooShort);
        }
        let (ciphertext, tag_bytes) = boxed.split_at(boxed.len() - TAG_LEN);
        let j0 = self.j0(nonce);
        let expected = self.compute_tag(&j0, aad, ciphertext);
        if !ct_eq(expected.as_bytes(), tag_bytes) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut out = ciphertext.to_vec();
        ctr_xor(&self.cipher, &j0, &mut out);
        Ok(out)
    }

    /// Verifies the tag of `boxed` over `aad` without decrypting.
    ///
    /// # Errors
    ///
    /// Same as [`open`](AesGcm128::open).
    pub fn verify(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        boxed: &[u8],
    ) -> Result<(), CryptoError> {
        if boxed.len() < TAG_LEN {
            return Err(CryptoError::CiphertextTooShort);
        }
        let (ciphertext, tag_bytes) = boxed.split_at(boxed.len() - TAG_LEN);
        let j0 = self.j0(nonce);
        let expected = self.compute_tag(&j0, aad, ciphertext);
        if !ct_eq(expected.as_bytes(), tag_bytes) {
            return Err(CryptoError::AuthenticationFailed);
        }
        Ok(())
    }

    fn j0(&self, nonce: &Nonce) -> [u8; BLOCK_LEN] {
        // 96-bit IV fast path: J0 = IV || 0^31 || 1.
        let mut j0 = [0u8; BLOCK_LEN];
        j0[..12].copy_from_slice(nonce.as_bytes());
        j0[15] = 1;
        j0
    }

    fn compute_tag(
        &self,
        j0: &[u8; BLOCK_LEN],
        aad: &[u8],
        ciphertext: &[u8],
    ) -> AuthTag {
        let s = self.ghash(aad, ciphertext);
        let mut tag_block = *j0;
        self.cipher.encrypt_block(&mut tag_block);
        let mut tag = [0u8; TAG_LEN];
        let s_bytes = s.to_be_bytes();
        for i in 0..TAG_LEN {
            tag[i] = tag_block[i] ^ s_bytes[i];
        }
        AuthTag::from_bytes(tag)
    }

    fn ghash(&self, aad: &[u8], ciphertext: &[u8]) -> u128 {
        let mut y = 0u128;
        for chunk in aad.chunks(BLOCK_LEN) {
            y = gf128_mul(y ^ block_to_u128(chunk), self.h);
        }
        for chunk in ciphertext.chunks(BLOCK_LEN) {
            y = gf128_mul(y ^ block_to_u128(chunk), self.h);
        }
        let lengths = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
        gf128_mul(y ^ lengths, self.h)
    }
}

fn block_to_u128(chunk: &[u8]) -> u128 {
    let mut block = [0u8; BLOCK_LEN];
    block[..chunk.len()].copy_from_slice(chunk);
    u128::from_be_bytes(block)
}

/// Multiplication in GF(2¹²⁸) with the GCM polynomial, MSB-first bit order.
fn gf128_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if (y >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn key_from_hex(s: &str) -> Key128 {
        Key128::from_slice(&from_hex(s)).unwrap()
    }

    fn nonce_from_hex(s: &str) -> Nonce {
        Nonce::from_slice(&from_hex(s)).unwrap()
    }

    // NIST GCM spec, test case 1: all-zero key and IV, empty everything.
    #[test]
    fn nist_test_case_1() {
        let cipher = AesGcm128::new(&key_from_hex("00000000000000000000000000000000"));
        let nonce = nonce_from_hex("000000000000000000000000");
        let boxed = cipher.seal(&nonce, b"", b"");
        assert_eq!(boxed, from_hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    // NIST GCM spec, test case 2: one zero plaintext block.
    #[test]
    fn nist_test_case_2() {
        let cipher = AesGcm128::new(&key_from_hex("00000000000000000000000000000000"));
        let nonce = nonce_from_hex("000000000000000000000000");
        let boxed = cipher.seal(&nonce, b"", &[0u8; 16]);
        assert_eq!(
            boxed,
            from_hex("0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf")
        );
        assert_eq!(cipher.open(&nonce, b"", &boxed).unwrap(), vec![0u8; 16]);
    }

    // NIST GCM spec, test case 3: four plaintext blocks.
    #[test]
    fn nist_test_case_3() {
        let cipher = AesGcm128::new(&key_from_hex("feffe9928665731c6d6a8f9467308308"));
        let nonce = nonce_from_hex("cafebabefacedbaddecaf888");
        let plaintext = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let boxed = cipher.seal(&nonce, b"", &plaintext);
        let expected_ct = from_hex(
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
        );
        assert_eq!(&boxed[..plaintext.len()], &expected_ct[..]);
        assert_eq!(
            &boxed[plaintext.len()..],
            &from_hex("4d5c2af327cd64a62cf35abd2ba6fab4")[..]
        );
    }

    // NIST GCM spec, test case 4: with associated data and a partial block.
    #[test]
    fn nist_test_case_4() {
        let cipher = AesGcm128::new(&key_from_hex("feffe9928665731c6d6a8f9467308308"));
        let nonce = nonce_from_hex("cafebabefacedbaddecaf888");
        let plaintext = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let boxed = cipher.seal(&nonce, &aad, &plaintext);
        let expected_ct = from_hex(
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
        );
        assert_eq!(&boxed[..plaintext.len()], &expected_ct[..]);
        assert_eq!(
            &boxed[plaintext.len()..],
            &from_hex("5bc94fbc3221a5db94fae95ae7121a47")[..]
        );
        assert_eq!(cipher.open(&nonce, &aad, &boxed).unwrap(), plaintext);
    }

    #[test]
    fn tampered_ciphertext_is_rejected() {
        let cipher = AesGcm128::new(&Key128::from_bytes([9u8; 16]));
        let nonce = Nonce::from_bytes([1u8; 12]);
        let boxed = cipher.seal(&nonce, b"aad", b"hello world");
        for i in 0..boxed.len() {
            let mut corrupted = boxed.clone();
            corrupted[i] ^= 0x01;
            assert_eq!(
                cipher.open(&nonce, b"aad", &corrupted),
                Err(CryptoError::AuthenticationFailed),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn wrong_key_is_rejected() {
        let alice = AesGcm128::new(&Key128::from_bytes([1u8; 16]));
        let mallory = AesGcm128::new(&Key128::from_bytes([2u8; 16]));
        let nonce = Nonce::from_bytes([0u8; 12]);
        let boxed = alice.seal(&nonce, b"", b"secret");
        assert_eq!(
            mallory.open(&nonce, b"", &boxed),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn wrong_nonce_is_rejected() {
        let cipher = AesGcm128::new(&Key128::from_bytes([1u8; 16]));
        let boxed = cipher.seal(&Nonce::from_bytes([0u8; 12]), b"", b"secret");
        assert_eq!(
            cipher.open(&Nonce::from_bytes([1u8; 12]), b"", &boxed),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn short_ciphertext_is_rejected() {
        let cipher = AesGcm128::new(&Key128::from_bytes([1u8; 16]));
        let nonce = Nonce::from_bytes([0u8; 12]);
        assert_eq!(
            cipher.open(&nonce, b"", &[0u8; 15]),
            Err(CryptoError::CiphertextTooShort)
        );
    }

    #[test]
    fn verify_without_decrypt() {
        let cipher = AesGcm128::new(&Key128::from_bytes([5u8; 16]));
        let nonce = Nonce::from_bytes([5u8; 12]);
        let boxed = cipher.seal(&nonce, b"meta", b"payload");
        assert!(cipher.verify(&nonce, b"meta", &boxed).is_ok());
        assert!(cipher.verify(&nonce, b"other", &boxed).is_err());
    }

    #[test]
    fn empty_plaintext_roundtrip_with_aad() {
        let cipher = AesGcm128::new(&Key128::from_bytes([3u8; 16]));
        let nonce = Nonce::from_bytes([3u8; 12]);
        let boxed = cipher.seal(&nonce, b"only-aad", b"");
        assert_eq!(boxed.len(), TAG_LEN);
        assert_eq!(cipher.open(&nonce, b"only-aad", &boxed).unwrap(), b"");
    }

    #[test]
    fn large_odd_length_roundtrip() {
        let cipher = AesGcm128::new(&Key128::from_bytes([8u8; 16]));
        let nonce = Nonce::from_bytes([8u8; 12]);
        let plaintext: Vec<u8> = (0..100_003u32).map(|i| (i % 251) as u8).collect();
        let boxed = cipher.seal(&nonce, b"", &plaintext);
        assert_eq!(cipher.open(&nonce, b"", &boxed).unwrap(), plaintext);
    }

    mod proptests {
        use super::*;
        use crate::rng::SystemRng;

        fn arb_bytes(rng: &mut SystemRng, lo: usize, hi: usize) -> Vec<u8> {
            let mut v = vec![0u8; rng.range_usize(lo, hi)];
            rng.fill(&mut v);
            v
        }

        fn arb_key(rng: &mut SystemRng) -> Key128 {
            let mut key = [0u8; 16];
            rng.fill(&mut key);
            Key128::from_bytes(key)
        }

        #[test]
        fn prop_seal_open_roundtrip() {
            let mut rng = SystemRng::seeded(0x6C41);
            for _ in 0..64 {
                let cipher = AesGcm128::new(&arb_key(&mut rng));
                let mut nonce_bytes = [0u8; 12];
                rng.fill(&mut nonce_bytes);
                let nonce = Nonce::from_bytes(nonce_bytes);
                let aad = arb_bytes(&mut rng, 0, 64);
                let plaintext = arb_bytes(&mut rng, 0, 512);
                let boxed = cipher.seal(&nonce, &aad, &plaintext);
                assert_eq!(boxed.len(), plaintext.len() + TAG_LEN);
                assert_eq!(cipher.open(&nonce, &aad, &boxed).unwrap(), plaintext);
            }
        }

        #[test]
        fn prop_different_aad_rejected() {
            let mut rng = SystemRng::seeded(0x6C42);
            for _ in 0..64 {
                let cipher = AesGcm128::new(&arb_key(&mut rng));
                let aad_a = arb_bytes(&mut rng, 0, 32);
                let mut aad_b = arb_bytes(&mut rng, 0, 32);
                if aad_a == aad_b {
                    aad_b.push(0xAA);
                }
                let plaintext = arb_bytes(&mut rng, 0, 128);
                let nonce = Nonce::from_bytes([0u8; 12]);
                let boxed = cipher.seal(&nonce, &aad_a, &plaintext);
                assert!(cipher.open(&nonce, &aad_b, &boxed).is_err());
            }
        }

        #[test]
        fn prop_hostile_boxed_never_panics() {
            let mut rng = SystemRng::seeded(0x6C43);
            for _ in 0..64 {
                let cipher = AesGcm128::new(&arb_key(&mut rng));
                let boxed = arb_bytes(&mut rng, 0, 256);
                let nonce = Nonce::from_bytes([1u8; 12]);
                let _ = cipher.open(&nonce, b"aad", &boxed);
            }
        }

        #[test]
        fn prop_ciphertext_differs_from_plaintext() {
            let mut rng = SystemRng::seeded(0x6C44);
            for _ in 0..64 {
                let plaintext = arb_bytes(&mut rng, 16, 256);
                let cipher = AesGcm128::new(&Key128::from_bytes([5u8; 16]));
                let nonce = Nonce::from_bytes([5u8; 12]);
                let boxed = cipher.seal(&nonce, b"", &plaintext);
                assert_ne!(&boxed[..plaintext.len()], &plaintext[..]);
            }
        }
    }
}
