use std::error::Error;
use std::fmt;

/// Errors produced by cryptographic routines in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// An AEAD ciphertext failed authentication (the `⊥` outcome in the
    /// paper's Fig. 3 verification protocol).
    AuthenticationFailed,
    /// A ciphertext buffer is too short to contain the authentication tag.
    CiphertextTooShort,
    /// A key, nonce, or digest had an unexpected length.
    InvalidLength {
        /// The length the routine expected.
        expected: usize,
        /// The length it was given.
        actual: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => {
                write!(f, "ciphertext failed authentication")
            }
            CryptoError::CiphertextTooShort => {
                write!(f, "ciphertext shorter than the authentication tag")
            }
            CryptoError::InvalidLength { expected, actual } => {
                write!(f, "invalid length: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let msgs = [
            CryptoError::AuthenticationFailed.to_string(),
            CryptoError::CiphertextTooShort.to_string(),
            CryptoError::InvalidLength { expected: 16, actual: 3 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
