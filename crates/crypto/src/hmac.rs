//! RFC 2104 HMAC over SHA-256, used by the enclave simulator for local
//! attestation report MACs and by the secure channel for key confirmation.

use crate::sha256::{Digest, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// An incremental HMAC-SHA256 computation.
///
/// # Example
///
/// ```
/// use speed_crypto::hmac::HmacSha256;
///
/// let mac = HmacSha256::mac(b"key", b"message");
/// assert!(HmacSha256::verify(b"key", b"message", mac.as_bytes()));
/// assert!(!HmacSha256::verify(b"key", b"other", mac.as_bytes()));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            key_block[..DIGEST_LEN].copy_from_slice(Sha256::digest(key).as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, outer_key: opad }
    }

    /// Absorbs more message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes the computation and returns the MAC.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// One-shot convenience: `HMAC(key, message)`.
    pub fn mac(key: &[u8], message: &[u8]) -> Digest {
        let mut h = HmacSha256::new(key);
        h.update(message);
        h.finalize()
    }

    /// Verifies `tag` against `HMAC(key, message)` in constant time.
    pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        crate::ct_eq(HmacSha256::mac(key, message).as_bytes(), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: Digest) -> String {
        d.to_hex()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(HmacSha256::mac(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(HmacSha256::mac(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(HmacSha256::mac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case_6() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(HmacSha256::mac(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"key");
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), HmacSha256::mac(b"key", b"hello world"));
    }

    #[test]
    fn verify_rejects_truncated_tag() {
        let mac = HmacSha256::mac(b"k", b"m");
        assert!(!HmacSha256::verify(b"k", b"m", &mac.as_bytes()[..16]));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(HmacSha256::mac(b"key1", b"msg"), HmacSha256::mac(b"key2", b"msg"));
    }
}
