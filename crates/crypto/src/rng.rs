//! Randomness sources for keys, nonces, and the RCE challenge message.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::types::{Key128, Nonce, KEY_LEN, NONCE_LEN};

/// A cryptographically seeded PRNG handle.
///
/// [`SystemRng::new`] seeds from OS entropy; [`SystemRng::seeded`] creates a
/// deterministic instance for reproducible tests and benchmarks.
///
/// # Example
///
/// ```
/// use speed_crypto::SystemRng;
///
/// let mut rng = SystemRng::seeded(42);
/// let key = rng.gen_key();
/// let nonce = rng.gen_nonce();
/// assert_ne!(key.as_bytes(), &[0u8; 16]);
/// let _ = nonce;
/// ```
#[derive(Debug, Clone)]
pub struct SystemRng {
    inner: StdRng,
}

impl SystemRng {
    /// Creates a generator seeded from operating-system entropy.
    pub fn new() -> Self {
        SystemRng { inner: StdRng::from_entropy() }
    }

    /// Creates a deterministic generator from an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        SystemRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Fills `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// Generates a random AES-128 key (`AES.KeyGen(1^λ)` in Algorithm 1).
    pub fn gen_key(&mut self) -> Key128 {
        let mut bytes = [0u8; KEY_LEN];
        self.inner.fill_bytes(&mut bytes);
        Key128::from_bytes(bytes)
    }

    /// Generates a random GCM nonce.
    pub fn gen_nonce(&mut self) -> Nonce {
        let mut bytes = [0u8; NONCE_LEN];
        self.inner.fill_bytes(&mut bytes);
        Nonce::from_bytes(bytes)
    }

    /// Generates the RCE challenge message `r ←$ {0,1}*` (Algorithm 1,
    /// line 5) as `len` random bytes.
    pub fn gen_challenge(&mut self, len: usize) -> Vec<u8> {
        let mut bytes = vec![0u8; len];
        self.inner.fill_bytes(&mut bytes);
        bytes
    }

    /// Samples a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        self.inner.gen_range(0..bound)
    }
}

impl Default for SystemRng {
    fn default() -> Self {
        SystemRng::new()
    }
}

/// Fills `buf` from a fresh OS-seeded generator.
pub fn fill_random(buf: &mut [u8]) {
    SystemRng::new().fill(buf);
}

/// Generates one random key from OS entropy.
pub fn random_key() -> Key128 {
    SystemRng::new().gen_key()
}

/// Generates one random nonce from OS entropy.
pub fn random_nonce() -> Nonce {
    SystemRng::new().gen_nonce()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = SystemRng::seeded(7);
        let mut b = SystemRng::seeded(7);
        assert_eq!(a.gen_key(), b.gen_key());
        assert_eq!(a.gen_challenge(33), b.gen_challenge(33));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SystemRng::seeded(1);
        let mut b = SystemRng::seeded(2);
        assert_ne!(a.gen_key(), b.gen_key());
    }

    #[test]
    fn consecutive_keys_differ() {
        let mut rng = SystemRng::seeded(3);
        assert_ne!(rng.gen_key(), rng.gen_key());
    }

    #[test]
    fn challenge_has_requested_length() {
        let mut rng = SystemRng::seeded(4);
        assert_eq!(rng.gen_challenge(0).len(), 0);
        assert_eq!(rng.gen_challenge(32).len(), 32);
        assert_eq!(rng.gen_challenge(1000).len(), 1000);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = SystemRng::seeded(5);
        for _ in 0..100 {
            assert!(rng.gen_range(10) < 10);
        }
    }
}
