//! Randomness sources for keys, nonces, and the RCE challenge message.
//!
//! Implemented from scratch on a ChaCha20 keystream (RFC 8439 block
//! function) so the crate — and the whole workspace — builds with no
//! external dependencies. [`SystemRng::new`] seeds from OS entropy
//! (`/dev/urandom`, with a time/address fallback); [`SystemRng::seeded`]
//! expands a 64-bit seed into a ChaCha key via SplitMix64 for reproducible
//! tests, benchmarks, and the resilience layer's deterministic jitter.

use crate::types::{Key128, Nonce, KEY_LEN, NONCE_LEN};

/// Number of 32-bit words in a ChaCha state / output block.
const BLOCK_WORDS: usize = 16;
const BLOCK_BYTES: usize = BLOCK_WORDS * 4;

#[inline]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha20 block function: 10 double rounds over the input state.
fn chacha20_block(input: &[u32; BLOCK_WORDS], out: &mut [u8; BLOCK_BYTES]) {
    let mut state = *input;
    for _ in 0..10 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for i in 0..BLOCK_WORDS {
        let mixed = state[i].wrapping_add(input[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&mixed.to_le_bytes());
    }
}

/// SplitMix64: expands a 64-bit seed into a stream of well-mixed words,
/// used only for key expansion of [`SystemRng::seeded`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Gathers 32 bytes of OS entropy, falling back to clock/address mixing on
/// platforms without `/dev/urandom`.
fn os_entropy() -> [u8; 32] {
    use std::io::Read;
    let mut key = [0u8; 32];
    if let Ok(mut file) = std::fs::File::open("/dev/urandom") {
        if file.read_exact(&mut key).is_ok() {
            return key;
        }
    }
    // Fallback: mix non-deterministic process state through SplitMix64.
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let stack_probe = 0u8;
    let mut state = now
        ^ (std::process::id() as u64).rotate_left(32)
        ^ (&stack_probe as *const u8 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ std::time::Instant::now().elapsed().subsec_nanos() as u64;
    for chunk in key.chunks_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    key
}

/// A cryptographically seeded PRNG handle.
///
/// [`SystemRng::new`] seeds from OS entropy; [`SystemRng::seeded`] creates a
/// deterministic instance for reproducible tests and benchmarks.
///
/// # Example
///
/// ```
/// use speed_crypto::SystemRng;
///
/// let mut rng = SystemRng::seeded(42);
/// let key = rng.gen_key();
/// let nonce = rng.gen_nonce();
/// assert_ne!(key.as_bytes(), &[0u8; 16]);
/// let _ = nonce;
/// ```
#[derive(Debug, Clone)]
pub struct SystemRng {
    /// ChaCha20 input state: constants, key, 64-bit counter, 64-bit nonce.
    state: [u32; BLOCK_WORDS],
    /// Buffered keystream block.
    block: [u8; BLOCK_BYTES],
    /// Next unread byte in `block` (`BLOCK_BYTES` = exhausted).
    cursor: usize,
}

impl SystemRng {
    fn from_key(key: [u8; 32]) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" constants from RFC 8439.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        // words 12..16: block counter + nonce, all zero at start.
        SystemRng { state, block: [0u8; BLOCK_BYTES], cursor: BLOCK_BYTES }
    }

    /// Creates a generator seeded from operating-system entropy.
    pub fn new() -> Self {
        SystemRng::from_key(os_entropy())
    }

    /// Creates a deterministic generator from an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        let mut mix = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut mix).to_le_bytes());
        }
        SystemRng::from_key(key)
    }

    fn refill(&mut self) {
        chacha20_block(&self.state, &mut self.block);
        // 64-bit counter in words 12..14.
        let counter = u64::from(self.state[12]) | (u64::from(self.state[13]) << 32);
        let next = counter.wrapping_add(1);
        self.state[12] = next as u32;
        self.state[13] = (next >> 32) as u32;
        self.cursor = 0;
    }

    /// Fills `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        let mut written = 0;
        while written < buf.len() {
            if self.cursor == BLOCK_BYTES {
                self.refill();
            }
            let take = (buf.len() - written).min(BLOCK_BYTES - self.cursor);
            buf[written..written + take]
                .copy_from_slice(&self.block[self.cursor..self.cursor + take]);
            self.cursor += take;
            written += take;
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill(&mut bytes);
        u64::from_le_bytes(bytes)
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        self.fill(&mut bytes);
        u32::from_le_bytes(bytes)
    }

    /// Generates a random AES-128 key (`AES.KeyGen(1^λ)` in Algorithm 1).
    pub fn gen_key(&mut self) -> Key128 {
        let mut bytes = [0u8; KEY_LEN];
        self.fill(&mut bytes);
        Key128::from_bytes(bytes)
    }

    /// Generates a random GCM nonce.
    pub fn gen_nonce(&mut self) -> Nonce {
        let mut bytes = [0u8; NONCE_LEN];
        self.fill(&mut bytes);
        Nonce::from_bytes(bytes)
    }

    /// Generates the RCE challenge message `r ←$ {0,1}*` (Algorithm 1,
    /// line 5) as `len` random bytes.
    pub fn gen_challenge(&mut self, len: usize) -> Vec<u8> {
        let mut bytes = vec![0u8; len];
        self.fill(&mut bytes);
        bytes
    }

    /// Samples a uniform value in `[0, bound)` via rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be nonzero");
        // Reject the partial final cycle so every residue is equally likely.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            if x >= threshold {
                return x % bound;
            }
        }
    }

    /// Samples a uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range_usize needs lo < hi");
        lo + self.gen_range((hi - lo) as u64) as usize
    }

    /// Samples a uniform `usize` in `[lo, hi]`.
    pub fn range_usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "range_usize_inclusive needs lo <= hi");
        lo + self.gen_range((hi - lo) as u64 + 1) as usize
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.gen_f64() * (hi - lo)
    }

    /// A uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.gen_f32() * (hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl Default for SystemRng {
    fn default() -> Self {
        SystemRng::new()
    }
}

/// Fills `buf` from a fresh OS-seeded generator.
pub fn fill_random(buf: &mut [u8]) {
    SystemRng::new().fill(buf);
}

/// Generates one random key from OS entropy.
pub fn random_key() -> Key128 {
    SystemRng::new().gen_key()
}

/// Generates one random nonce from OS entropy.
pub fn random_nonce() -> Nonce {
    SystemRng::new().gen_nonce()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_block_matches_rfc8439_vector() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter 1,
        // nonce 000000090000004a00000000.
        let mut key = [0u8; 32];
        for (i, byte) in key.iter_mut().enumerate() {
            *byte = i as u8;
        }
        let mut rng = SystemRng::from_key(key);
        rng.state[12] = 1;
        rng.state[13] = 0x0900_0000;
        rng.state[14] = 0x4a00_0000;
        rng.state[15] = 0;
        let mut out = [0u8; BLOCK_BYTES];
        chacha20_block(&rng.state, &mut out);
        assert_eq!(
            &out[..16],
            &[
                0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f,
                0xa3, 0x20, 0x71, 0xc4,
            ]
        );
        assert_eq!(out[63], 0x4e);
    }

    #[test]
    fn seeded_is_deterministic() {
        let mut a = SystemRng::seeded(7);
        let mut b = SystemRng::seeded(7);
        assert_eq!(a.gen_key(), b.gen_key());
        assert_eq!(a.gen_challenge(33), b.gen_challenge(33));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SystemRng::seeded(1);
        let mut b = SystemRng::seeded(2);
        assert_ne!(a.gen_key(), b.gen_key());
    }

    #[test]
    fn consecutive_keys_differ() {
        let mut rng = SystemRng::seeded(3);
        assert_ne!(rng.gen_key(), rng.gen_key());
    }

    #[test]
    fn challenge_has_requested_length() {
        let mut rng = SystemRng::seeded(4);
        assert_eq!(rng.gen_challenge(0).len(), 0);
        assert_eq!(rng.gen_challenge(32).len(), 32);
        assert_eq!(rng.gen_challenge(1000).len(), 1000);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = SystemRng::seeded(5);
        for _ in 0..100 {
            assert!(rng.gen_range(10) < 10);
        }
        assert_eq!(rng.gen_range(1), 0);
    }

    #[test]
    fn unaligned_fills_match_streamed_fill() {
        // Byte stream must be identical regardless of read chunking.
        let mut a = SystemRng::seeded(9);
        let mut b = SystemRng::seeded(9);
        let mut whole = [0u8; 200];
        a.fill(&mut whole);
        let mut pieces = Vec::new();
        for len in [1usize, 7, 64, 65, 63] {
            let mut buf = vec![0u8; len];
            b.fill(&mut buf);
            pieces.extend_from_slice(&buf);
        }
        assert_eq!(&whole[..pieces.len()], &pieces[..]);
    }

    #[test]
    fn float_ranges_are_in_bounds() {
        let mut rng = SystemRng::seeded(6);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
            let g = rng.range_f32(2.0, 3.0);
            assert!((2.0..3.0).contains(&g));
            let u = rng.range_usize_inclusive(4, 6);
            assert!((4..=6).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SystemRng::seeded(8);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&heads), "{heads}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn os_seeded_instances_differ() {
        let mut a = SystemRng::new();
        let mut b = SystemRng::new();
        assert_ne!(a.gen_challenge(32), b.gen_challenge(32));
    }
}
