//! FIPS 197 AES-128 block cipher.
//!
//! The S-box is derived at first use from its algebraic definition
//! (multiplicative inverse in GF(2⁸) followed by the affine transform)
//! rather than transcribed as a literal table, and is then verified by the
//! FIPS 197 known-answer tests.

// hot-path: deny-clone

use std::sync::OnceLock;

use crate::types::{Key128, KEY_LEN};

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

const ROUNDS: usize = 10;

struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

/// Multiplication in GF(2⁸) with the AES reduction polynomial
/// x⁸ + x⁴ + x³ + x + 1 (0x11b).
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        // Multiplicative inverses by exhaustive search (init-time only).
        let mut inv = [0u8; 256];
        for a in 1..=255u8 {
            for b in 1..=255u8 {
                if gf_mul(a, b) == 1 {
                    inv[a as usize] = b;
                    break;
                }
            }
        }
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for x in 0..=255u8 {
            let i = inv[x as usize];
            // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
            let s = i
                ^ i.rotate_left(1)
                ^ i.rotate_left(2)
                ^ i.rotate_left(3)
                ^ i.rotate_left(4)
                ^ 0x63;
            sbox[x as usize] = s;
            inv_sbox[s as usize] = x;
        }
        Tables { sbox, inv_sbox }
    })
}

/// An expanded AES-128 key, ready for encryption and decryption.
///
/// # Example
///
/// ```
/// use speed_crypto::aes::Aes128;
/// use speed_crypto::Key128;
///
/// let cipher = Aes128::new(&Key128::from_bytes([0u8; 16]));
/// let mut block = [0u8; 16];
/// cipher.encrypt_block(&mut block);
/// cipher.decrypt_block(&mut block);
/// assert_eq!(block, [0u8; 16]);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; BLOCK_LEN]; ROUNDS + 1],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Aes128(<key schedule redacted>)")
    }
}

impl Aes128 {
    /// Expands `key` into the full round-key schedule.
    pub fn new(key: &Key128) -> Self {
        let t = tables();
        let mut words = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for (i, w) in words.iter_mut().take(4).enumerate() {
            w.copy_from_slice(&key.as_bytes()[i * 4..i * 4 + 4]);
        }
        let mut rcon = 1u8;
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = words[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = t.sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                words[i][j] = words[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; BLOCK_LEN]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&words[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let t = tables();
        add_round_key(block, &self.round_keys[0]);
        for round in 1..ROUNDS {
            sub_bytes(block, &t.sbox);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block, &t.sbox);
        shift_rows(block);
        add_round_key(block, &self.round_keys[ROUNDS]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let t = tables();
        add_round_key(block, &self.round_keys[ROUNDS]);
        inv_shift_rows(block);
        sub_bytes(block, &t.inv_sbox);
        for round in (1..ROUNDS).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            sub_bytes(block, &t.inv_sbox);
        }
        add_round_key(block, &self.round_keys[0]);
    }
}

fn add_round_key(state: &mut [u8; BLOCK_LEN], rk: &[u8; BLOCK_LEN]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; BLOCK_LEN], sbox: &[u8; 256]) {
    for b in state.iter_mut() {
        *b = sbox[*b as usize];
    }
}

// State is column-major: state[c*4 + r] is row r, column c.
fn shift_rows(state: &mut [u8; BLOCK_LEN]) {
    for r in 1..4 {
        let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
        for c in 0..4 {
            state[c * 4 + r] = row[(c + r) % 4];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; BLOCK_LEN]) {
    for r in 1..4 {
        let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
        for c in 0..4 {
            state[c * 4 + r] = row[(c + 4 - r) % 4];
        }
    }
}

fn mix_columns(state: &mut [u8; BLOCK_LEN]) {
    for c in 0..4 {
        let col = [state[c * 4], state[c * 4 + 1], state[c * 4 + 2], state[c * 4 + 3]];
        state[c * 4] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[c * 4 + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[c * 4 + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[c * 4 + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; BLOCK_LEN]) {
    for c in 0..4 {
        let col = [state[c * 4], state[c * 4 + 1], state[c * 4 + 2], state[c * 4 + 3]];
        state[c * 4] = gf_mul(col[0], 14)
            ^ gf_mul(col[1], 11)
            ^ gf_mul(col[2], 13)
            ^ gf_mul(col[3], 9);
        state[c * 4 + 1] = gf_mul(col[0], 9)
            ^ gf_mul(col[1], 14)
            ^ gf_mul(col[2], 11)
            ^ gf_mul(col[3], 13);
        state[c * 4 + 2] = gf_mul(col[0], 13)
            ^ gf_mul(col[1], 9)
            ^ gf_mul(col[2], 14)
            ^ gf_mul(col[3], 11);
        state[c * 4 + 3] = gf_mul(col[0], 11)
            ^ gf_mul(col[1], 13)
            ^ gf_mul(col[2], 9)
            ^ gf_mul(col[3], 14);
    }
}

/// Encrypts `data` in place with AES-128 in counter mode, starting from the
/// 16-byte counter block `counter0` and incrementing its last 32 bits
/// big-endian per block (GCM's `inc32`).
pub(crate) fn ctr_xor(cipher: &Aes128, counter0: &[u8; BLOCK_LEN], data: &mut [u8]) {
    // Keystream blocks are generated in batches and applied with word-wide
    // XORs; the counter sequence and per-block keystream are bit-identical to
    // the one-block-at-a-time definition (pinned by the NIST GCM vectors).
    const BATCH_BLOCKS: usize = 8;
    const BATCH_LEN: usize = BLOCK_LEN * BATCH_BLOCKS;
    let mut counter = *counter0;
    let mut keystream = [0u8; BATCH_LEN];
    for batch in data.chunks_mut(BATCH_LEN) {
        let blocks = batch.len().div_ceil(BLOCK_LEN);
        for lane in keystream.chunks_exact_mut(BLOCK_LEN).take(blocks) {
            inc32(&mut counter);
            lane.copy_from_slice(&counter);
            let lane: &mut [u8; BLOCK_LEN] = lane.try_into().expect("lane is one block");
            cipher.encrypt_block(lane);
        }
        let used = batch.len();
        xor_in_place(batch, &keystream[..used]);
    }
}

/// XORs `key` into `data` (`data.len() == key.len()`), eight bytes per
/// operation with a byte-wise tail.
fn xor_in_place(data: &mut [u8], key: &[u8]) {
    debug_assert_eq!(data.len(), key.len());
    let mut words = data.chunks_exact_mut(8);
    let mut key_words = key.chunks_exact(8);
    for (d, k) in (&mut words).zip(&mut key_words) {
        let x = u64::from_ne_bytes((&*d).try_into().expect("word chunk"))
            ^ u64::from_ne_bytes(k.try_into().expect("word chunk"));
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, k) in words.into_remainder().iter_mut().zip(key_words.remainder()) {
        *d ^= k;
    }
}

/// Increments the last 32 bits of a counter block, big-endian, wrapping.
pub(crate) fn inc32(counter: &mut [u8; BLOCK_LEN]) {
    let mut v = u32::from_be_bytes([counter[12], counter[13], counter[14], counter[15]]);
    v = v.wrapping_add(1);
    counter[12..16].copy_from_slice(&v.to_be_bytes());
}

#[allow(dead_code)]
pub(crate) fn key_schedule_len() -> usize {
    KEY_LEN * (ROUNDS + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(bytes: [u8; 16]) -> Key128 {
        Key128::from_bytes(bytes)
    }

    #[test]
    fn sbox_known_entries() {
        let t = tables();
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.sbox[0xff], 0x16);
        for x in 0..=255u8 {
            assert_eq!(t.inv_sbox[t.sbox[x as usize] as usize], x);
        }
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let k = key([
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c,
            0x0d, 0x0e, 0x0f,
        ]);
        let cipher = Aes128::new(&k);
        let mut block = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc,
            0xdd, 0xee, 0xff,
        ];
        cipher.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                0x70, 0xb4, 0xc5, 0x5a
            ]
        );
        cipher.decrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
                0xcc, 0xdd, 0xee, 0xff
            ]
        );
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let k = key([
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09,
            0xcf, 0x4f, 0x3c,
        ]);
        let cipher = Aes128::new(&k);
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0,
            0x37, 0x07, 0x34,
        ];
        cipher.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                0x19, 0x6a, 0x0b, 0x32
            ]
        );
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many_blocks() {
        let cipher = Aes128::new(&key([0x42; 16]));
        for i in 0..64u8 {
            let original = [i; 16];
            let mut block = original;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, original);
            cipher.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn inc32_wraps() {
        let mut ctr = [0xffu8; 16];
        inc32(&mut ctr);
        assert_eq!(&ctr[12..16], &[0, 0, 0, 0]);
        assert_eq!(&ctr[..12], &[0xff; 12]);
    }

    #[test]
    fn gf_mul_matches_known_products() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(1, 0xab), 0xab);
        assert_eq!(gf_mul(0, 0xab), 0);
    }
}
