//! RFC 5869 HKDF (extract-and-expand) over HMAC-SHA256.
//!
//! Used to derive enclave sealing keys from measurements and session keys
//! for the secure channel between `DedupRuntime` and `ResultStore`.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: derives a pseudorandom key from `salt` and `ikm`.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    HmacSha256::mac(salt, ikm).into_bytes()
}

/// HKDF-Expand: expands `prk` with `info` into `out_len` bytes.
///
/// # Panics
///
/// Panics if `out_len > 255 * 32`, the RFC 5869 limit.
pub fn expand(prk: &[u8; DIGEST_LEN], info: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * DIGEST_LEN, "hkdf output length exceeds RFC 5869 limit");
    let mut out = Vec::with_capacity(out_len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < out_len {
        let mut h = HmacSha256::new(prk);
        h.update(&previous);
        h.update(info);
        h.update(&[counter]);
        let block = h.finalize();
        previous = block.as_bytes().to_vec();
        let take = (out_len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&block.as_bytes()[..take]);
        counter = counter.wrapping_add(1);
    }
    out
}

/// One-shot HKDF: extract then expand.
///
/// # Example
///
/// ```
/// let key = speed_crypto::hkdf::derive(b"salt", b"secret", b"session", 16);
/// assert_eq!(key.len(), 16);
/// ```
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], out_len: usize) -> Vec<u8> {
    let prk = extract(salt, ikm);
    expand(&prk, info, out_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn to_hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = from_hex("000102030405060708090a0b0c");
        let info = from_hex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3: zero-length salt and info.
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let okm = derive(b"", &ikm, b"", 42);
        assert_eq!(
            to_hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_is_deterministic_and_prefix_consistent() {
        let prk = extract(b"salt", b"ikm");
        let long = expand(&prk, b"info", 64);
        let short = expand(&prk, b"info", 16);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    #[should_panic(expected = "exceeds RFC 5869 limit")]
    fn expand_rejects_oversize() {
        let prk = extract(b"s", b"i");
        let _ = expand(&prk, b"", 255 * 32 + 1);
    }
}
