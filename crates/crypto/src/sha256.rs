//! FIPS 180-4 SHA-256 with an incremental (init/update/finalize) API.

// hot-path: deny-clone

use std::fmt;

/// Length in bytes of a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
    0x5be0cd19,
];

/// A SHA-256 digest value.
///
/// Wraps the 32 output bytes; formats as lowercase hex.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest([u8; DIGEST_LEN]);

impl Digest {
    /// Wraps raw digest bytes.
    pub fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }

    /// Returns the raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Consumes the digest and returns the raw bytes.
    pub fn into_bytes(self) -> [u8; DIGEST_LEN] {
        self.0
    }

    /// Returns the lowercase hex encoding of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Truncates the digest to its first 16 bytes, e.g. for use as a
    /// key-wrapping pad in the RCE construction.
    pub fn truncate16(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out.copy_from_slice(&self.0[..16]);
        out
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// An incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use speed_crypto::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"ab");
/// hasher.update(b"c");
/// assert_eq!(hasher.finalize(), Sha256::digest(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; BLOCK_LEN],
    buffer_len: usize,
    total_len: u64,
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buffer: [0u8; BLOCK_LEN], buffer_len: 0, total_len: 0 }
    }

    /// One-shot convenience: hash `data` in a single call.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Hashes several byte strings with unambiguous (length-prefixed)
    /// concatenation.
    ///
    /// Used for the paper's multi-input hashes `H(func, m)` and
    /// `H(func, m, r)`; the length framing prevents ambiguity between e.g.
    /// `("ab", "c")` and `("a", "bc")`.
    pub fn digest_parts(parts: &[&[u8]]) -> Digest {
        let mut h = Sha256::new();
        for part in parts {
            h.update(&(part.len() as u64).to_be_bytes());
            h.update(part);
        }
        h.finalize()
    }

    /// Absorbs more input.
    ///
    /// Full 64-byte blocks are compressed directly from `data` — the hot
    /// bulk-hash loop never stages input bytes through the internal buffer,
    /// which only holds the sub-block head/tail of a misaligned stream.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (BLOCK_LEN - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take]
                .copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == BLOCK_LEN {
                compress(&mut self.state, &self.buffer);
                self.buffer_len = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            compress(&mut self.state, &data[..BLOCK_LEN]);
            data = &data[BLOCK_LEN..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian message length.
        self.update_padding_byte();
        while self.buffer_len != 56 {
            self.update_zero_byte();
        }
        let len_bytes = bit_len.to_be_bytes();
        self.buffer[56..64].copy_from_slice(&len_bytes);
        compress(&mut self.state, &self.buffer);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn update_padding_byte(&mut self) {
        self.buffer[self.buffer_len] = 0x80;
        self.buffer_len += 1;
        if self.buffer_len == BLOCK_LEN {
            compress(&mut self.state, &self.buffer);
            self.buffer_len = 0;
        }
    }

    fn update_zero_byte(&mut self) {
        self.buffer[self.buffer_len] = 0;
        self.buffer_len += 1;
        if self.buffer_len == BLOCK_LEN {
            compress(&mut self.state, &self.buffer);
            self.buffer_len = 0;
        }
    }
}

/// One FIPS 180-4 compression round over a single 64-byte block.
///
/// Free function over disjoint `state`/`block` borrows so callers can feed
/// blocks straight out of caller-owned input slices (or the hasher's own
/// buffer) without copying them into a staging array first.
fn compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), BLOCK_LEN);
    let mut w = [0u32; 64];
    for i in 0..16 {
        w[i] = u32::from_be_bytes([
            block[i * 4],
            block[i * 4 + 1],
            block[i * 4 + 2],
            block[i * 4 + 3],
        ]);
    }
    for i in 16..64 {
        let s0 =
            w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 =
            h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: Digest) -> String {
        digest.to_hex()
    }

    #[test]
    fn fips_empty_string() {
        assert_eq!(
            hex(Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_abc() {
        assert_eq!(
            hex(Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_two_block_message() {
        assert_eq!(
            hex(Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_for_all_split_points() {
        let data: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let reference = Sha256::digest(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), reference, "split at {split}");
        }
    }

    #[test]
    fn digest_parts_is_unambiguous() {
        let a = Sha256::digest_parts(&[b"ab", b"c"]);
        let b = Sha256::digest_parts(&[b"a", b"bc"]);
        assert_ne!(a, b);
        let c = Sha256::digest_parts(&[b"abc"]);
        assert_ne!(a, c);
    }

    #[test]
    fn digest_display_and_debug() {
        let d = Sha256::digest(b"abc");
        assert_eq!(format!("{d}"), d.to_hex());
        assert!(format!("{d:?}").starts_with("Digest("));
    }

    #[test]
    fn truncate16_is_prefix() {
        let d = Sha256::digest(b"xyz");
        assert_eq!(&d.truncate16()[..], &d.as_bytes()[..16]);
    }

    mod proptests {
        use super::*;
        use crate::rng::SystemRng;

        fn arb_bytes(rng: &mut SystemRng, lo: usize, hi: usize) -> Vec<u8> {
            let mut v = vec![0u8; rng.range_usize(lo, hi)];
            rng.fill(&mut v);
            v
        }

        #[test]
        fn prop_incremental_equals_oneshot() {
            let mut rng = SystemRng::seeded(0x5A2561);
            for _ in 0..64 {
                let data = arb_bytes(&mut rng, 0, 1024);
                let at = rng.range_usize_inclusive(0, data.len());
                let mut h = Sha256::new();
                h.update(&data[..at]);
                h.update(&data[at..]);
                assert_eq!(h.finalize(), Sha256::digest(&data));
            }
        }

        #[test]
        fn prop_parts_differ_from_concat() {
            let mut rng = SystemRng::seeded(0x5A2562);
            for _ in 0..64 {
                let a = arb_bytes(&mut rng, 1, 64);
                let b = arb_bytes(&mut rng, 1, 64);
                // Length framing: parts hashing is not plain concatenation.
                let concat = [a.clone(), b.clone()].concat();
                assert_ne!(Sha256::digest_parts(&[&a, &b]), Sha256::digest(&concat));
            }
        }
    }
}
