use std::fmt;

/// Length in bytes of an AES-128 key.
pub const KEY_LEN: usize = 16;
/// Length in bytes of a GCM nonce (the 96-bit fast path of SP 800-38D).
pub const NONCE_LEN: usize = 12;
/// Length in bytes of a GCM authentication tag.
pub const TAG_LEN: usize = 16;

/// A 128-bit AES key.
///
/// The `Debug` implementation never prints key material.
#[derive(Clone, PartialEq, Eq)]
pub struct Key128([u8; KEY_LEN]);

impl Key128 {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        Key128(bytes)
    }

    /// Parses a key from a slice.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CryptoError::InvalidLength`] if `bytes` is not
    /// exactly [`KEY_LEN`] bytes long.
    pub fn from_slice(bytes: &[u8]) -> Result<Self, crate::CryptoError> {
        let arr: [u8; KEY_LEN] = bytes.try_into().map_err(|_| {
            crate::CryptoError::InvalidLength { expected: KEY_LEN, actual: bytes.len() }
        })?;
        Ok(Key128(arr))
    }

    /// Returns the raw key bytes.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }

    /// XORs this key with a 16-byte pad, returning the result.
    ///
    /// This is the one-time-pad step of the paper's RCE construction:
    /// `[k] ← k ⊕ h` (Algorithm 1, line 9) and its inverse
    /// `k ← [k] ⊕ h` (Algorithm 2, line 5).
    pub fn xor_pad(&self, pad: &[u8; KEY_LEN]) -> Key128 {
        let mut out = [0u8; KEY_LEN];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(pad.iter())) {
            *o = a ^ b;
        }
        Key128(out)
    }
}

impl fmt::Debug for Key128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key128(<redacted>)")
    }
}

/// A 96-bit GCM nonce.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Nonce([u8; NONCE_LEN]);

impl Nonce {
    /// Wraps raw nonce bytes.
    pub fn from_bytes(bytes: [u8; NONCE_LEN]) -> Self {
        Nonce(bytes)
    }

    /// Parses a nonce from a slice.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CryptoError::InvalidLength`] if `bytes` is not
    /// exactly [`NONCE_LEN`] bytes long.
    pub fn from_slice(bytes: &[u8]) -> Result<Self, crate::CryptoError> {
        let arr: [u8; NONCE_LEN] = bytes.try_into().map_err(|_| {
            crate::CryptoError::InvalidLength { expected: NONCE_LEN, actual: bytes.len() }
        })?;
        Ok(Nonce(arr))
    }

    /// Returns the raw nonce bytes.
    pub fn as_bytes(&self) -> &[u8; NONCE_LEN] {
        &self.0
    }
}

/// A 128-bit GCM authentication tag.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AuthTag([u8; TAG_LEN]);

impl AuthTag {
    /// Wraps raw tag bytes.
    pub fn from_bytes(bytes: [u8; TAG_LEN]) -> Self {
        AuthTag(bytes)
    }

    /// Returns the raw tag bytes.
    pub fn as_bytes(&self) -> &[u8; TAG_LEN] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_debug_redacts() {
        let key = Key128::from_bytes([0xAB; 16]);
        let dbg = format!("{key:?}");
        assert!(!dbg.contains("AB"));
        assert!(!dbg.contains("171"));
        assert!(dbg.contains("redacted"));
    }

    #[test]
    fn key_from_slice_rejects_bad_length() {
        let err = Key128::from_slice(&[0u8; 7]).unwrap_err();
        assert_eq!(err, crate::CryptoError::InvalidLength { expected: 16, actual: 7 });
    }

    #[test]
    fn nonce_from_slice_roundtrip() {
        let nonce = Nonce::from_slice(&[3u8; 12]).unwrap();
        assert_eq!(nonce.as_bytes(), &[3u8; 12]);
        assert!(Nonce::from_slice(&[0u8; 11]).is_err());
    }

    #[test]
    fn xor_pad_is_involutive() {
        let key = Key128::from_bytes([0x5A; 16]);
        let pad = [0xC3; 16];
        assert_eq!(key.xor_pad(&pad).xor_pad(&pad), key);
    }

    #[test]
    fn xor_pad_with_zero_is_identity() {
        let key = Key128::from_bytes([0x77; 16]);
        assert_eq!(key.xor_pad(&[0u8; 16]), key);
    }
}
